//! `tardis` — the command-line front end.
//!
//! Operates on a persistent cluster directory so that datasets and
//! indexes survive between invocations:
//!
//! ```sh
//! tardis generate --dir /tmp/demo --dataset rw --family randomwalk --records 50000
//! tardis build    --dir /tmp/demo --dataset rw --index rw-idx --capacity 5000
//! tardis stats    --dir /tmp/demo --index rw-idx
//! tardis knn      --dir /tmp/demo --index rw-idx --rid 123 --k 10 --strategy multi
//! tardis exact    --dir /tmp/demo --index rw-idx --rid 123
//! tardis range    --dir /tmp/demo --index rw-idx --rid 123 --epsilon 5.0
//! tardis profile  --family noaa --records 2000
//! ```
//!
//! Queries take either `--rid <n>` (regenerate a dataset member — the
//! dataset family and seed are recorded in a sidecar) or
//! `--query-file <path>` (one f32 value per line).

use std::collections::HashMap;
use std::io::Write;
use std::path::PathBuf;
use std::process::ExitCode;
use tardis::prelude::*;

/// Track peak heap usage so `build --low-memory` can report the flat
/// memory profile it promises (also exported as the
/// `tardis_build_peak_bytes` gauge by the daemon's metrics endpoint).
#[global_allocator]
static ALLOC: PeakAlloc = PeakAlloc;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, flags)) = parse(&args) else {
        usage();
        return ExitCode::from(2);
    };
    let result = match cmd.as_str() {
        "generate" => cmd_generate(&flags),
        "import" => cmd_import(&flags),
        "build" => cmd_build(&flags),
        "stats" => cmd_stats(&flags),
        "exact" => cmd_exact(&flags),
        "knn" => cmd_knn(&flags),
        "query-batch" => cmd_query_batch(&flags),
        "range" => cmd_range(&flags),
        "ingest" => cmd_ingest(&flags),
        "compact" => cmd_compact(&flags),
        "scrub" => cmd_scrub(&flags),
        "fsck" => cmd_fsck(&flags),
        "profile" => cmd_profile(&flags),
        "serve" => cmd_serve(&flags),
        "client" => cmd_client(&flags),
        "metrics" => cmd_metrics(&flags),
        "help" | "--help" | "-h" => {
            usage();
            Ok(())
        }
        other => Err(format!("unknown command '{other}'")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn usage() {
    eprintln!("tardis — distributed time-series index (TARDIS, ICDE 2019 reproduction)");
    eprintln!();
    eprintln!("commands:");
    eprintln!("  generate --dir D --dataset NAME --family F --records N [--seed S] [--len L]");
    eprintln!("  import   --dir D --dataset NAME --file PATH (one series per line)");
    eprintln!("  build    --dir D --dataset NAME --index NAME [--capacity N] [--leaf N] [--sampling PCT]");
    eprintln!("           [--low-memory] [--run-budget-mb N] (external-sort build: bounded peak");
    eprintln!("           memory, byte-identical output; budget default 32 MiB)");
    eprintln!("  stats    --dir D --index NAME");
    eprintln!("  exact    --dir D --index NAME (--rid N | --query-file PATH) [--no-bloom]");
    eprintln!("           [--profile] [--trace-out PATH]");
    eprintln!("  knn      --dir D --index NAME (--rid N | --query-file PATH) --k N");
    eprintln!("           [--strategy target|one|multi|exact] [--profile] [--trace-out PATH]");
    eprintln!("  query-batch --dir D --index NAME --count N [--seed S] [--k N]");
    eprintln!("           [--mode exact|knn|exact-knn] [--strategy target|one|multi]");
    eprintln!("           [--no-bloom] [--profile] [--trace-out PATH]");
    eprintln!("  range    --dir D --index NAME (--rid N | --query-file PATH) --epsilon E");
    eprintln!("  ingest   --dir D --index NAME --start N --count N [--seed S] (seal a batch of");
    eprintln!("           generated records rid in [start, start+count) into a delta partition;");
    eprintln!("           queries serve base + deltas immediately)");
    eprintln!("  compact  --dir D --index NAME (fold all sealed deltas into the base partitions");
    eprintln!("           and bump the manifest version)");
    eprintln!("  scrub    --dir D (verify every replica, re-replicate from healthy siblings)");
    eprintln!("  fsck     --dir D (startup recovery as a command: resolve manifest replica");
    eprintln!("           versions, delete orphaned generation files, sweep staging tmps,");
    eprintln!("           re-heal replicas; non-zero exit if the store is still inconsistent)");
    eprintln!("  profile  --family F --records N [--seed S]");
    eprintln!("  serve    --dir D --index NAME [--addr HOST:PORT] [--max-in-flight N]");
    eprintln!("           [--queue N] [--deadline-ms N] (resident daemon; port 0 picks a free");
    eprintln!("           port, prints 'listening on ADDR'; SIGTERM shuts down gracefully)");
    eprintln!("           [--hot-replication R] enable adaptive re-replication: partitions in");
    eprintln!("           the hot set (top --hot-top-k by EWMA access rate, needing at least");
    eprintln!("           --hot-min-accesses per interval) are raised to R replicas in the");
    eprintln!("           background every --hot-interval-ms (defaults: top-k 4, min 4,");
    eprintln!("           interval 500)");
    eprintln!("           [--manifest NAME] persist ingests/compactions back to NAME atomically");
    eprintln!("           [--compact-interval-ms N] run the background compactor every N ms,");
    eprintln!("           folding deltas whenever at least --compact-min (default 1) are sealed");
    eprintln!("  client   --addr HOST:PORT --op exact|knn|exact-knn|range|batch|ingest|compact");
    eprintln!("           --dir D --index NAME (--rid N | --query-file PATH) [--k N] [--epsilon E]");
    eprintln!("           [--count N] [--strategy target|one|multi] [--no-bloom] [--priority P]");
    eprintln!("           [--deadline-ms N]; ingest takes --start/--count (generated records)");
    eprintln!("  metrics  --addr HOST:PORT (scrape the daemon's Prometheus text)");
    eprintln!();
    eprintln!("storage flags (any command taking --dir):");
    eprintln!("  --replication N      replicas per block when creating the cluster (default 2)");
    eprintln!("  --degraded POLICY    fail-fast (default) or best-effort; best-effort skips");
    eprintln!("                       partitions with no serveable replica and reports which");
    eprintln!("  --crash-at SITE[:N]  deterministic crash injection: abort (simulated kill -9)");
    eprintln!("                       at the N-th arrival (default 1st) of a named crash point");
    eprintln!("                       inside a multi-step mutation; recover with 'tardis fsck'");
    eprintln!();
    eprintln!("families: randomwalk | texmex | dna | noaa");
}

type Flags = HashMap<String, String>;

/// Prints one line, tolerating a closed stdout (e.g. `tardis … | head`).
/// Returns false once the pipe is gone so bulk output loops can stop.
fn out(line: std::fmt::Arguments<'_>) -> bool {
    let mut stdout = std::io::stdout().lock();
    writeln!(stdout, "{line}").is_ok()
}

macro_rules! say {
    ($($arg:tt)*) => {
        if !out(format_args!($($arg)*)) {
            return Ok(());
        }
    };
}

/// Splits `cmd --key value --key2 value2` argument lists.
fn parse(args: &[String]) -> Option<(String, Flags)> {
    let mut iter = args.iter();
    let cmd = iter.next()?.clone();
    let mut flags = HashMap::new();
    let rest: Vec<&String> = iter.collect();
    let mut i = 0;
    while i < rest.len() {
        let key = rest[i].strip_prefix("--")?;
        // Boolean flags take no value.
        if key == "no-bloom" || key == "profile" || key == "low-memory" {
            flags.insert(key.to_string(), "true".to_string());
            i += 1;
            continue;
        }
        let value = rest.get(i + 1)?;
        flags.insert(key.to_string(), value.to_string());
        i += 2;
    }
    Some((cmd, flags))
}

fn req<'a>(flags: &'a Flags, key: &str) -> Result<&'a str, String> {
    flags
        .get(key)
        .map(String::as_str)
        .ok_or_else(|| format!("missing required flag --{key}"))
}

fn opt_num<T: std::str::FromStr>(flags: &Flags, key: &str, default: T) -> Result<T, String> {
    match flags.get(key) {
        Some(v) => v.parse().map_err(|_| format!("invalid --{key} '{v}'")),
        None => Ok(default),
    }
}

fn open_cluster(flags: &Flags) -> Result<Cluster, String> {
    let dir = PathBuf::from(req(flags, "dir")?);
    let mut config = ClusterConfig::default();
    if let Some(r) = flags.get("replication") {
        let r: u32 = r.parse().map_err(|_| format!("invalid --replication '{r}'"))?;
        if r == 0 {
            return Err("--replication must be at least 1".into());
        }
        config.dfs.replication = r;
        config.dfs.datanodes = config.dfs.datanodes.max(r);
    }
    if let Some(raw) = flags.get("crash-at") {
        let spec = CrashSpec::parse(raw)
            .ok_or_else(|| format!("invalid --crash-at '{raw}' (expected SITE[:HIT])"))?;
        if !CRASH_SITES.contains(&spec.site.as_str()) {
            return Err(format!(
                "unknown crash site '{}'; registered sites: {}",
                spec.site,
                CRASH_SITES.join(", ")
            ));
        }
        let mut plan = config.faults.take().unwrap_or_default();
        plan.crash_point = Some(spec);
        config.faults = Some(plan);
    }
    Cluster::at_dir(&dir, config).map_err(|e| e.to_string())
}

/// Parses `--degraded fail-fast|best-effort` into the query policy.
/// `None` means the flag was absent: queries run the plain (fail-fast)
/// code paths with no completeness report.
fn degraded_policy(flags: &Flags) -> Result<Option<DegradedPolicy>, String> {
    match flags.get("degraded").map(String::as_str) {
        None => Ok(None),
        Some("fail-fast") => Ok(Some(DegradedPolicy::FailFast)),
        Some("best-effort") => Ok(Some(DegradedPolicy::BestEffort)),
        Some(other) => Err(format!("unknown --degraded '{other}' (fail-fast|best-effort)")),
    }
}

fn completeness_line(c: &Completeness) -> String {
    if c.partitions_skipped.is_empty() {
        format!("completeness: exact ({} partition(s) visited, none skipped)", c.partitions_visited)
    } else {
        format!(
            "completeness: {} ({} partition(s) visited, skipped {:?})",
            if c.exact { "exact" } else { "PARTIAL" },
            c.partitions_visited,
            c.partitions_skipped
        )
    }
}

fn family_gen(family: &str, seed: u64, len: Option<usize>) -> Result<Box<dyn SeriesGen>, String> {
    Ok(match family {
        "randomwalk" => Box::new(match len {
            Some(l) => RandomWalk::with_len(seed, l),
            None => RandomWalk::new(seed),
        }),
        "texmex" => Box::new(TexmexLike::new(seed)),
        "dna" => Box::new(DnaLike::new(seed)),
        "noaa" => Box::new(NoaaLike::new(seed)),
        other => return Err(format!("unknown family '{other}'")),
    })
}

/// Sidecar describing a generated dataset (family + seed + size), so
/// `--rid` queries can regenerate members later.
fn write_sidecar(
    cluster: &Cluster,
    dataset: &str,
    family: &str,
    seed: u64,
    len: usize,
    records: u64,
) -> Result<(), String> {
    let body = format!("{family}\n{seed}\n{len}\n{records}\n");
    let name = format!("{dataset}.meta");
    cluster.dfs().delete_file(&name).map_err(|e| e.to_string())?;
    cluster
        .dfs()
        .append_block(&name, body.as_bytes())
        .map_err(|e| e.to_string())?;
    Ok(())
}

fn read_sidecar(cluster: &Cluster, dataset: &str) -> Result<(String, u64, usize, u64), String> {
    let name = format!("{dataset}.meta");
    let blocks = cluster
        .dfs()
        .list_blocks(&name)
        .map_err(|_| format!("dataset '{dataset}' has no metadata (generated elsewhere?)"))?;
    let bytes = cluster
        .dfs()
        .read_block(&blocks[0])
        .map_err(|e| e.to_string())?;
    let text = String::from_utf8(bytes).map_err(|_| "corrupt sidecar".to_string())?;
    let mut lines = text.lines();
    let family = lines.next().ok_or("corrupt sidecar")?.to_string();
    let seed = lines
        .next()
        .and_then(|l| l.parse().ok())
        .ok_or("corrupt sidecar")?;
    let len = lines
        .next()
        .and_then(|l| l.parse().ok())
        .ok_or("corrupt sidecar")?;
    let records = lines
        .next()
        .and_then(|l| l.parse().ok())
        .ok_or("corrupt sidecar")?;
    Ok((family, seed, len, records))
}

fn cmd_generate(flags: &Flags) -> Result<(), String> {
    let cluster = open_cluster(flags)?;
    let dataset = req(flags, "dataset")?;
    let family = req(flags, "family")?;
    let records: u64 = opt_num(flags, "records", 10_000)?;
    let seed: u64 = opt_num(flags, "seed", 42)?;
    let len: Option<usize> = flags
        .get("len")
        .map(|v| v.parse().map_err(|_| format!("invalid --len '{v}'")))
        .transpose()?;
    let gen = family_gen(family, seed, len)?;
    let per_block: usize = opt_num(flags, "block-records", 1_000)?;
    let t0 = std::time::Instant::now();
    if cluster.dfs().file_exists(dataset) {
        cluster.dfs().delete_file(dataset).map_err(|e| e.to_string())?;
    }
    let layout = write_dataset(&cluster, dataset, gen.as_ref(), records, per_block)
        .map_err(|e| e.to_string())?;
    write_sidecar(&cluster, dataset, family, seed, gen.series_len(), records)?;
    println!(
        "generated {} x len-{} {} series into {} blocks in {:?}",
        layout.n_records,
        gen.series_len(),
        family,
        layout.n_blocks,
        t0.elapsed()
    );
    Ok(())
}

fn cmd_import(flags: &Flags) -> Result<(), String> {
    let cluster = open_cluster(flags)?;
    let dataset = req(flags, "dataset")?;
    let file = PathBuf::from(req(flags, "file")?);
    let loaded =
        tardis::data::read_series_file(&file, true).map_err(|e| e.to_string())?;
    let per_block: usize = opt_num(flags, "block-records", 1_000)?;
    if cluster.dfs().file_exists(dataset) {
        cluster.dfs().delete_file(dataset).map_err(|e| e.to_string())?;
    }
    let layout = write_dataset(
        &cluster,
        dataset,
        &loaded,
        loaded.len() as u64,
        per_block,
    )
    .map_err(|e| e.to_string())?;
    // No sidecar: imported datasets answer --query-file queries only.
    println!(
        "imported {} series x {} points from {} into {} blocks",
        layout.n_records,
        loaded.series_len(),
        file.display(),
        layout.n_blocks
    );
    Ok(())
}

fn cmd_build(flags: &Flags) -> Result<(), String> {
    let cluster = open_cluster(flags)?;
    let dataset = req(flags, "dataset")?;
    let index_name = req(flags, "index")?;
    let config = TardisConfig {
        g_max_size: opt_num(flags, "capacity", 10_000)?,
        l_max_size: opt_num(flags, "leaf", 1_000)?,
        sampling_fraction: opt_num::<f64>(flags, "sampling", 10.0)? / 100.0,
        pth: opt_num(flags, "pth", 40)?,
        ..TardisConfig::default()
    };
    let low_memory = flags.contains_key("low-memory");
    let t0 = std::time::Instant::now();
    tardis::cluster::obs::peak::reset_peak();
    let (index, report) = if low_memory {
        let opts = tardis_core_sorted_opts(flags)?;
        TardisIndex::build_sorted(&cluster, dataset, &config, &opts).map_err(|e| e.to_string())?
    } else {
        TardisIndex::build(&cluster, dataset, &config).map_err(|e| e.to_string())?
    };
    let peak_bytes = tardis::cluster::obs::peak::peak_bytes();
    // Atomic swap: a crash mid-save leaves either the old index or the
    // new one (rolled forward by recovery), never a missing manifest.
    index.save_atomic(&cluster, index_name).map_err(|e| e.to_string())?;
    // Remember which dataset this index covers.
    let link = format!("{index_name}.dataset");
    cluster.dfs().delete_file(&link).map_err(|e| e.to_string())?;
    cluster
        .dfs()
        .append_block(&link, dataset.as_bytes())
        .map_err(|e| e.to_string())?;
    println!(
        "built + saved '{index_name}': {} records, {} partitions, {:?} total \
         (global {:?}, shuffle {:?}, local {:?}), peak heap {:.1} MiB{}",
        report.n_records,
        report.n_partitions,
        t0.elapsed(),
        report.global.total(),
        report.shuffle,
        report.local_build,
        peak_bytes as f64 / (1024.0 * 1024.0),
        if low_memory { " [low-memory]" } else { "" }
    );
    Ok(())
}

fn tardis_core_sorted_opts(flags: &Flags) -> Result<tardis::core::SortedBuildOptions, String> {
    let budget_mb: usize = opt_num(flags, "run-budget-mb", 32)?;
    if budget_mb == 0 {
        return Err("--run-budget-mb must be at least 1".into());
    }
    Ok(tardis::core::SortedBuildOptions {
        run_budget_bytes: budget_mb << 20,
    })
}

fn open_index(cluster: &Cluster, flags: &Flags) -> Result<(TardisIndex, String), String> {
    let index_name = req(flags, "index")?;
    // Startup recovery on every directory-backed open (and therefore at
    // daemon boot): resolve manifest generations, GC crash debris,
    // scrub the block store. Silent when there was nothing to repair.
    let (index, report) = TardisIndex::recover(cluster, index_name).map_err(|e| e.to_string())?;
    if !report.is_clean() {
        eprintln!(
            "recovery: {} manifest(s) rolled forward, {} orphan(s) deleted, {} tmp(s) swept, \
             {} replica(s) healed, {} block(s) lost",
            report.manifests_rolled_forward,
            report.orphans_deleted,
            report.tmp_swept,
            report.replicas_healed,
            report.blocks_lost
        );
    }
    let link = format!("{index_name}.dataset");
    let dataset = cluster
        .dfs()
        .list_blocks(&link)
        .ok()
        .and_then(|b| cluster.dfs().read_block(&b[0]).ok())
        .and_then(|bytes| String::from_utf8(bytes).ok())
        .unwrap_or_default();
    Ok((index, dataset))
}

fn load_query(
    cluster: &Cluster,
    dataset: &str,
    flags: &Flags,
) -> Result<TimeSeries, String> {
    if let Some(rid) = flags.get("rid") {
        let rid: u64 = rid.parse().map_err(|_| "invalid --rid".to_string())?;
        let (family, seed, len, records) = read_sidecar(cluster, dataset)?;
        if rid >= records {
            eprintln!("note: rid {rid} is beyond the dataset ({records} records) — an absent query");
        }
        let gen = family_gen(&family, seed, Some(len))?;
        Ok(gen.series(rid))
    } else if let Some(path) = flags.get("query-file") {
        let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
        let values: Result<Vec<f32>, _> = text
            .split_whitespace()
            .map(|tok| tok.parse::<f32>())
            .collect();
        let values = values.map_err(|_| "query file must contain f32 values".to_string())?;
        if values.is_empty() {
            return Err("query file is empty".into());
        }
        Ok(z_normalize(&TimeSeries::new(values)))
    } else {
        Err("provide --rid or --query-file".into())
    }
}

fn cmd_stats(flags: &Flags) -> Result<(), String> {
    let cluster = open_cluster(flags)?;
    let (index, dataset) = open_index(&cluster, flags)?;
    let g = index.global();
    let tree_stats = g.tree().stats();
    say!("index over dataset '{dataset}':");
    say!("  partitions          : {}", index.n_partitions());
    say!("  global tree nodes   : {} ({} leaves)", tree_stats.n_nodes, tree_stats.n_leaves);
    say!("  global tree depth   : avg {:.2}, max {}", tree_stats.avg_leaf_depth, tree_stats.max_leaf_depth);
    say!("  global index size   : {} bytes", g.mem_bytes());
    say!("  sampled records     : {}", g.sampled_records);
    let total: u64 = index.partitions().iter().map(|p| p.n_records).sum();
    let largest = index.partitions().iter().map(|p| p.n_records).max().unwrap_or(0);
    say!("  records indexed     : {total}");
    say!("  largest partition   : {largest}");
    say!(
        "  bloom bytes resident: {}",
        index.resident_bloom_bytes()
    );
    Ok(())
}

/// A tracer that records spans only when `--profile` or `--trace-out`
/// asked for them; otherwise queries run at the disabled-tracer cost.
fn tracer_for(flags: &Flags) -> Tracer {
    if flags.contains_key("profile") || flags.contains_key("trace-out") {
        Tracer::new()
    } else {
        Tracer::disabled()
    }
}

/// Emits the per-query profile (`--profile`) and/or a chrome-trace JSON
/// file (`--trace-out PATH`, loadable in about:tracing / Perfetto).
fn emit_profile(flags: &Flags, tracer: &Tracer, profile: &QueryProfile) -> Result<(), String> {
    if flags.contains_key("profile") {
        out(format_args!("{}", profile.render()));
    }
    if let Some(path) = flags.get("trace-out") {
        let json = chrome_trace_json(&tracer.records());
        std::fs::write(path, json).map_err(|e| e.to_string())?;
        out(format_args!("wrote chrome trace to {path}"));
    }
    Ok(())
}

fn cmd_exact(flags: &Flags) -> Result<(), String> {
    let cluster = open_cluster(flags)?;
    let (index, dataset) = open_index(&cluster, flags)?;
    let query = load_query(&cluster, &dataset, flags)?;
    let use_bloom = !flags.contains_key("no-bloom");
    let tracer = tracer_for(flags);
    let t0 = std::time::Instant::now();
    let (out, profile, completeness) = match degraded_policy(flags)? {
        Some(policy) => {
            let (deg, profile) =
                exact_match_degraded_profiled(&index, &cluster, &query, use_bloom, policy)
                    .map_err(|e| e.to_string())?;
            (deg.answer, profile, Some(deg.completeness))
        }
        None => {
            let (out, profile) = exact_match_profiled(&index, &cluster, &query, use_bloom, &tracer)
                .map_err(|e| e.to_string())?;
            (out, profile, None)
        }
    };
    let elapsed = t0.elapsed();
    if out.matches.is_empty() {
        println!(
            "no exact match ({}; {} partition(s) loaded) in {elapsed:?}",
            if out.bloom_rejected {
                "bloom filter rejected"
            } else {
                "leaf scanned"
            },
            out.partitions_loaded
        );
    } else {
        println!("exact match: record ids {:?} in {elapsed:?}", out.matches);
    }
    if let Some(c) = completeness {
        say!("{}", completeness_line(&c));
    }
    emit_profile(flags, &tracer, &profile)?;
    Ok(())
}

fn cmd_knn(flags: &Flags) -> Result<(), String> {
    let cluster = open_cluster(flags)?;
    let (index, dataset) = open_index(&cluster, flags)?;
    let query = load_query(&cluster, &dataset, flags)?;
    let k: usize = opt_num(flags, "k", 10)?;
    let strategy = flags.get("strategy").map(String::as_str).unwrap_or("multi");
    let policy = degraded_policy(flags)?;
    let tracer = tracer_for(flags);
    type KnnOut = (Vec<(f64, u64)>, QueryProfile, Option<Completeness>);
    let approx = |s: KnnStrategy| -> Result<KnnOut, String> {
        match policy {
            Some(policy) => {
                let (deg, profile) =
                    knn_approximate_degraded_profiled(&index, &cluster, &query, k, s, policy)
                        .map_err(|e| e.to_string())?;
                Ok((deg.answer.neighbors, profile, Some(deg.completeness)))
            }
            None => {
                let (ans, profile) =
                    knn_approximate_profiled(&index, &cluster, &query, k, s, &tracer)
                        .map_err(|e| e.to_string())?;
                Ok((ans.neighbors, profile, None))
            }
        }
    };
    let t0 = std::time::Instant::now();
    let (neighbors, profile, completeness) = match strategy {
        "target" => approx(KnnStrategy::TargetNode)?,
        "one" => approx(KnnStrategy::OnePartition)?,
        "multi" => approx(KnnStrategy::MultiPartition)?,
        "exact" => match policy {
            Some(policy) => {
                let deg = exact_knn_degraded(&index, &cluster, &query, k, policy)
                    .map_err(|e| e.to_string())?;
                (
                    deg.answer
                        .neighbors
                        .into_iter()
                        .map(|nb| (nb.distance, nb.rid))
                        .collect(),
                    QueryProfile::default(),
                    Some(deg.completeness),
                )
            }
            None => {
                let (ans, profile) = exact_knn_profiled(&index, &cluster, &query, k, &tracer)
                    .map_err(|e| e.to_string())?;
                (
                    ans.neighbors
                        .into_iter()
                        .map(|nb| (nb.distance, nb.rid))
                        .collect(),
                    profile,
                    None,
                )
            }
        },
        other => return Err(format!("unknown strategy '{other}' (target|one|multi|exact)")),
    };
    say!("{strategy} {k}-NN in {:?}:", t0.elapsed());
    for (rank, (d, rid)) in neighbors.iter().enumerate() {
        say!("  #{:<3} record {:>10}  distance {:.6}", rank + 1, rid, d);
    }
    if let Some(c) = completeness {
        say!("{}", completeness_line(&c));
    }
    emit_profile(flags, &tracer, &profile)?;
    Ok(())
}

/// Runs a generated workload through the shared-scan batch engine:
/// `--count` queries drawn from the index's dataset (three in four are
/// stored members, one in four is absent), executed partition-major so
/// overlapping queries share one deserialization per partition.
fn cmd_query_batch(flags: &Flags) -> Result<(), String> {
    let cluster = open_cluster(flags)?;
    let (index, dataset) = open_index(&cluster, flags)?;
    let count: usize = opt_num(flags, "count", 16)?;
    let seed: u64 = opt_num(flags, "seed", 0)?;
    let k: usize = opt_num(flags, "k", 10)?;
    let mode = flags.get("mode").map(String::as_str).unwrap_or("knn");

    let (family, gen_seed, len, records) = read_sidecar(&cluster, &dataset)?;
    let gen = family_gen(&family, gen_seed, Some(len))?;
    let queries: Vec<TimeSeries> = (0..count as u64)
        .map(|i| {
            let r = seed.wrapping_add(i.wrapping_mul(131));
            if i % 4 == 3 {
                gen.series(records + r) // absent
            } else {
                gen.series(r % records.max(1))
            }
        })
        .collect();

    if let Some(policy) = degraded_policy(flags)? {
        return run_batch_degraded(&cluster, &index, &queries, k, mode, flags, policy);
    }

    let tracer = tracer_for(flags);
    let t0 = std::time::Instant::now();
    let batch: BatchProfile = match mode {
        "exact" => {
            let use_bloom = !flags.contains_key("no-bloom");
            let (outs, batch) =
                exact_match_batch_profiled(&index, &cluster, &queries, use_bloom, &tracer)
                    .map_err(|e| e.to_string())?;
            let elapsed = t0.elapsed();
            say!("exact-match batch of {count} in {elapsed:?}:");
            for (i, o) in outs.iter().enumerate() {
                if o.bloom_rejected {
                    say!("  #{i:<3} bloom-rejected");
                } else if o.matches.is_empty() {
                    say!("  #{i:<3} no match");
                } else {
                    say!("  #{i:<3} record ids {:?}", o.matches);
                }
            }
            batch
        }
        "knn" => {
            let strategy = match flags.get("strategy").map(String::as_str).unwrap_or("multi") {
                "target" => KnnStrategy::TargetNode,
                "one" => KnnStrategy::OnePartition,
                "multi" => KnnStrategy::MultiPartition,
                other => return Err(format!("unknown strategy '{other}' (target|one|multi)")),
            };
            let (answers, batch) =
                knn_batch_profiled(&index, &cluster, &queries, k, strategy, &tracer)
                    .map_err(|e| e.to_string())?;
            let elapsed = t0.elapsed();
            say!("{k}-NN batch of {count} in {elapsed:?}:");
            for (i, a) in answers.iter().enumerate() {
                let top: Vec<String> = a
                    .neighbors
                    .iter()
                    .take(3)
                    .map(|(d, rid)| format!("{rid}@{d:.4}"))
                    .collect();
                say!("  #{i:<3} [{}{}]", top.join(", "), if a.neighbors.len() > 3 { ", …" } else { "" });
            }
            batch
        }
        "exact-knn" => {
            let (answers, batch) = exact_knn_batch_profiled(&index, &cluster, &queries, k, &tracer)
                .map_err(|e| e.to_string())?;
            let elapsed = t0.elapsed();
            say!("exact {k}-NN batch of {count} in {elapsed:?}:");
            for (i, a) in answers.iter().enumerate() {
                let top: Vec<String> = a
                    .neighbors
                    .iter()
                    .take(3)
                    .map(|nb| format!("{}@{:.4}", nb.rid, nb.distance))
                    .collect();
                say!("  #{i:<3} [{}{}]", top.join(", "), if a.neighbors.len() > 3 { ", …" } else { "" });
            }
            batch
        }
        other => return Err(format!("unknown mode '{other}' (exact|knn|exact-knn)")),
    };
    say!(
        "partitions: {} physical loads served {} logical ({} avoided by sharing)",
        batch.partitions_loaded,
        batch.logical_loads(),
        batch.partitions_shared,
    );
    if flags.contains_key("profile") {
        out(format_args!("{}", batch.render()));
    }
    if let Some(path) = flags.get("trace-out") {
        let json = chrome_trace_json(&tracer.records());
        std::fs::write(path, json).map_err(|e| e.to_string())?;
        out(format_args!("wrote chrome trace to {path}"));
    }
    Ok(())
}

/// The `--degraded` arm of `query-batch`: same workload, but through the
/// degraded batch engines, reporting one batch-wide completeness instead
/// of the shared-scan profile.
fn run_batch_degraded(
    cluster: &Cluster,
    index: &TardisIndex,
    queries: &[TimeSeries],
    k: usize,
    mode: &str,
    flags: &Flags,
    policy: DegradedPolicy,
) -> Result<(), String> {
    let count = queries.len();
    let t0 = std::time::Instant::now();
    let completeness = match mode {
        "exact" => {
            let use_bloom = !flags.contains_key("no-bloom");
            let deg = exact_match_batch_degraded(index, cluster, queries, use_bloom, policy)
                .map_err(|e| e.to_string())?;
            say!("exact-match batch of {count} in {:?}:", t0.elapsed());
            for (i, o) in deg.answer.iter().enumerate() {
                if o.bloom_rejected {
                    say!("  #{i:<3} bloom-rejected");
                } else if o.matches.is_empty() {
                    say!("  #{i:<3} no match");
                } else {
                    say!("  #{i:<3} record ids {:?}", o.matches);
                }
            }
            deg.completeness
        }
        "knn" => {
            let strategy = match flags.get("strategy").map(String::as_str).unwrap_or("multi") {
                "target" => KnnStrategy::TargetNode,
                "one" => KnnStrategy::OnePartition,
                "multi" => KnnStrategy::MultiPartition,
                other => return Err(format!("unknown strategy '{other}' (target|one|multi)")),
            };
            let deg = knn_batch_degraded(index, cluster, queries, k, strategy, policy)
                .map_err(|e| e.to_string())?;
            say!("{k}-NN batch of {count} in {:?}:", t0.elapsed());
            for (i, a) in deg.answer.iter().enumerate() {
                let top: Vec<String> = a
                    .neighbors
                    .iter()
                    .take(3)
                    .map(|(d, rid)| format!("{rid}@{d:.4}"))
                    .collect();
                say!("  #{i:<3} [{}{}]", top.join(", "), if a.neighbors.len() > 3 { ", …" } else { "" });
            }
            deg.completeness
        }
        "exact-knn" => {
            let deg = exact_knn_batch_degraded(index, cluster, queries, k, policy)
                .map_err(|e| e.to_string())?;
            say!("exact {k}-NN batch of {count} in {:?}:", t0.elapsed());
            for (i, a) in deg.answer.iter().enumerate() {
                let top: Vec<String> = a
                    .neighbors
                    .iter()
                    .take(3)
                    .map(|nb| format!("{}@{:.4}", nb.rid, nb.distance))
                    .collect();
                say!("  #{i:<3} [{}{}]", top.join(", "), if a.neighbors.len() > 3 { ", …" } else { "" });
            }
            deg.completeness
        }
        other => return Err(format!("unknown mode '{other}' (exact|knn|exact-knn)")),
    };
    say!("{}", completeness_line(&completeness));
    Ok(())
}

fn cmd_range(flags: &Flags) -> Result<(), String> {
    let cluster = open_cluster(flags)?;
    let (index, dataset) = open_index(&cluster, flags)?;
    let query = load_query(&cluster, &dataset, flags)?;
    let epsilon: f64 = opt_num(flags, "epsilon", 1.0)?;
    let t0 = std::time::Instant::now();
    let (out, completeness) = match degraded_policy(flags)? {
        Some(policy) => {
            let deg = range_query_degraded(&index, &cluster, &query, epsilon, policy)
                .map_err(|e| e.to_string())?;
            (deg.answer, Some(deg.completeness))
        }
        None => (
            range_query(&index, &cluster, &query, epsilon).map_err(|e| e.to_string())?,
            None,
        ),
    };
    say!(
        "{} record(s) within ε = {epsilon} in {:?} ({} partitions loaded, {} pruned):",
        out.matches.len(),
        t0.elapsed(),
        out.partitions_loaded,
        out.partitions_pruned
    );
    for nb in out.matches.iter().take(50) {
        say!("  record {:>10}  distance {:.6}", nb.rid, nb.distance);
    }
    if out.matches.len() > 50 {
        say!("  … and {} more", out.matches.len() - 50);
    }
    if let Some(c) = completeness {
        say!("{}", completeness_line(&c));
    }
    Ok(())
}

/// Generates `--count` records (rid in `[start, start+count)`) from the
/// index's dataset family and seals them into one delta partition. The
/// manifest is rewritten atomically, so queries against the saved index
/// see base + delta immediately — no rebuild.
fn cmd_ingest(flags: &Flags) -> Result<(), String> {
    let cluster = open_cluster(flags)?;
    let index_name = req(flags, "index")?.to_string();
    let (mut index, dataset) = open_index(&cluster, flags)?;
    let start: u64 = opt_num(flags, "start", 0)?;
    let count: u64 = opt_num(flags, "count", 1_000)?;
    if count == 0 {
        return Err("--count must be at least 1".into());
    }
    let (family, seed, len, _records) = read_sidecar(&cluster, &dataset)?;
    let gen = family_gen(&family, seed, Some(len))?;
    let records: Vec<Record> = (start..start + count)
        .map(|rid| Record::new(rid, gen.series(rid)))
        .collect();
    let t0 = std::time::Instant::now();
    let meta = index
        .ingest_batch(&cluster, records)
        .map_err(|e| e.to_string())?;
    index
        .save_atomic(&cluster, &index_name)
        .map_err(|e| e.to_string())?;
    say!(
        "sealed delta {} ({} record(s)) in {:?}; {} delta(s) active, manifest v{}",
        meta.delta_id,
        meta.n_records,
        t0.elapsed(),
        index.n_deltas(),
        index.manifest_version()
    );
    Ok(())
}

/// Folds every sealed delta into the base partitions (rewriting only the
/// partitions that receive records), bumps the manifest version, and
/// swaps the manifest atomically.
fn cmd_compact(flags: &Flags) -> Result<(), String> {
    let cluster = open_cluster(flags)?;
    let index_name = req(flags, "index")?.to_string();
    let (mut index, _dataset) = open_index(&cluster, flags)?;
    if index.n_deltas() == 0 {
        say!("nothing to compact: no sealed deltas");
        return Ok(());
    }
    let t0 = std::time::Instant::now();
    // Commit order matters for crash safety: persist the post-compaction
    // manifest first, and only then delete the files it retired — a
    // crash in between leaves unreferenced (GC-able) debris, never a
    // manifest pointing at deleted data.
    let outcome = index.compact_deferred(&cluster).map_err(|e| e.to_string())?;
    index
        .save_atomic(&cluster, &index_name)
        .map_err(|e| e.to_string())?;
    TardisIndex::retire_files(&cluster, &outcome.retired_files).map_err(|e| e.to_string())?;
    say!(
        "folded {} record(s) from {} delta(s) into {} partition(s) in {:?}; manifest v{}",
        outcome.folded_records,
        outcome.deltas_folded,
        outcome.partitions_rewritten,
        t0.elapsed(),
        index.manifest_version()
    );
    Ok(())
}

/// Verifies every replica of every block and re-replicates from healthy
/// siblings. Run after a datanode loss (or on a schedule) to restore
/// full replication before a second failure can cause data loss.
fn cmd_scrub(flags: &Flags) -> Result<(), String> {
    let cluster = open_cluster(flags)?;
    let t0 = std::time::Instant::now();
    let report = cluster.dfs().scrub().map_err(|e| e.to_string())?;
    say!(
        "scrubbed {} block(s) in {:?}: {} corrupt replica(s) found, {} replica(s) repaired, {} replica(s) added, {} block(s) lost",
        report.blocks_checked,
        t0.elapsed(),
        report.corrupt_replicas,
        report.replicas_repaired,
        report.replicas_added,
        report.blocks_lost
    );
    if report.blocks_lost > 0 {
        return Err(format!(
            "{} block(s) have no healthy replica left",
            report.blocks_lost
        ));
    }
    Ok(())
}

/// Startup recovery as an explicit command: resolves every manifest to
/// its newest checksum-valid replica version, deletes generation files
/// no manifest references, sweeps leftover staging tmps, and re-heals
/// under-replicated blocks. A second verification pass must then find
/// a fully consistent store, or the command exits non-zero.
fn cmd_fsck(flags: &Flags) -> Result<(), String> {
    let cluster = open_cluster(flags)?;
    let t0 = std::time::Instant::now();
    let report = recover_store(&cluster).map_err(|e| e.to_string())?;
    say!(
        "fsck in {:?}: {} manifest(s) rolled forward, {} orphan(s) deleted, {} tmp(s) swept, \
         {} replica(s) healed, {} block(s) lost",
        t0.elapsed(),
        report.manifests_rolled_forward,
        report.orphans_deleted,
        report.tmp_swept,
        report.replicas_healed,
        report.blocks_lost
    );
    let verify = recover_store(&cluster).map_err(|e| e.to_string())?;
    if !verify.is_clean() {
        return Err(format!(
            "store still inconsistent after repair: {} manifest(s) unresolved, {} orphan(s), \
             {} tmp(s), {} replica(s) unhealed, {} block(s) lost",
            verify.manifests_rolled_forward,
            verify.orphans_deleted,
            verify.tmp_swept,
            verify.replicas_healed,
            verify.blocks_lost
        ));
    }
    say!("store is consistent");
    Ok(())
}

fn cmd_profile(flags: &Flags) -> Result<(), String> {
    let family = req(flags, "family")?;
    let records: u64 = opt_num(flags, "records", 1_000)?;
    let seed: u64 = opt_num(flags, "seed", 42)?;
    let gen = family_gen(family, seed, None)?;
    let p = profile_dataset(gen.as_ref(), records);
    say!("{} ({} records x {} points):", p.name, p.n_records, p.series_len);
    say!("  mean {:.4}  std {:.4}", p.stats.mean(), p.stats.std_dev());
    say!("  skewness {:+.4}  peak bin freq {:.4}", p.skewness(), p.peak_frequency());
    // A coarse text histogram.
    let freqs = p.histogram.frequencies();
    let max = freqs.iter().cloned().fold(0.0f64, f64::max).max(1e-9);
    say!("  value distribution over [-4, 4):");
    for (i, chunk) in freqs.chunks(8).enumerate() {
        let f: f64 = chunk.iter().sum();
        let bar = "#".repeat(((f / (max * 8.0)) * 60.0).round() as usize);
        let lo = -4.0 + i as f64;
        say!("    [{:>4.1},{:>4.1}) {bar}", lo, lo + 1.0);
    }
    Ok(())
}

/// Resolves which dataset an index was built over (the `{index}.dataset`
/// link file) without paying the full index open.
fn dataset_of(cluster: &Cluster, flags: &Flags) -> Result<String, String> {
    let index_name = req(flags, "index")?;
    let link = format!("{index_name}.dataset");
    cluster
        .dfs()
        .list_blocks(&link)
        .ok()
        .and_then(|b| cluster.dfs().read_block(&b[0]).ok())
        .and_then(|bytes| String::from_utf8(bytes).ok())
        .ok_or_else(|| format!("index '{index_name}' has no dataset link"))
}

/// Runs the resident query daemon until SIGTERM/SIGINT. The index and
/// its cluster stay in memory across all queries — the point of the
/// daemon versus one CLI invocation per query. Prints
/// `listening on ADDR` (flushed) so scripts binding port 0 can read the
/// real port back.
fn cmd_serve(flags: &Flags) -> Result<(), String> {
    let cluster = std::sync::Arc::new(open_cluster(flags)?);
    let (index, dataset) = open_index(&cluster, flags)?;
    let index = std::sync::Arc::new(index);
    // Hot-set re-replication is opt-in: --hot-replication 2+ turns on the
    // background pass with the remaining --hot-* knobs.
    let hot_set = match flags.get("hot-replication") {
        None => None,
        Some(v) => {
            let target: u32 = v
                .parse()
                .map_err(|_| format!("invalid --hot-replication '{v}'"))?;
            if target < 2 {
                return Err("--hot-replication must be at least 2".into());
            }
            Some(HotSetConfig {
                interval: std::time::Duration::from_millis(opt_num(
                    flags,
                    "hot-interval-ms",
                    500,
                )?),
                top_k: opt_num(flags, "hot-top-k", 4)?,
                min_accesses: opt_num(flags, "hot-min-accesses", 4.0)?,
                target_replication: target,
                ..HotSetConfig::default()
            })
        }
    };
    let config = ServerConfig {
        addr: flags
            .get("addr")
            .cloned()
            .unwrap_or_else(|| "127.0.0.1:0".to_string()),
        max_in_flight: opt_num(flags, "max-in-flight", 8)?,
        queue_capacity: opt_num(flags, "queue", 64)?,
        default_deadline_ms: flags
            .get("deadline-ms")
            .map(|v| v.parse().map_err(|_| format!("invalid --deadline-ms '{v}'")))
            .transpose()?,
        policy: degraded_policy(flags)?,
        hot_set,
        // --manifest makes ingest/compact durable: every mutation is
        // persisted via an atomic manifest swap before queries see it.
        manifest: flags.get("manifest").cloned(),
        compaction: match flags.get("compact-interval-ms") {
            None => None,
            Some(v) => {
                let ms: u64 = v
                    .parse()
                    .map_err(|_| format!("invalid --compact-interval-ms '{v}'"))?;
                Some(CompactorConfig {
                    interval: std::time::Duration::from_millis(ms),
                    min_deltas: opt_num(flags, "compact-min", 1)?,
                })
            }
        },
        ..ServerConfig::default()
    };
    let handle = QueryServer::start(std::sync::Arc::clone(&cluster), index, config)
        .map_err(|e| e.to_string())?;
    println!("serving index '{}' over '{dataset}'", req(flags, "index")?);
    println!("listening on {}", handle.addr());
    std::io::stdout().flush().ok();
    tardis::server::install_signal_handlers();
    let flag = handle.shutdown_flag();
    while !tardis::server::sigterm_flag() && !flag.load(std::sync::atomic::Ordering::SeqCst) {
        std::thread::sleep(std::time::Duration::from_millis(50));
    }
    handle.shutdown();
    let snap = cluster.metrics().snapshot();
    // Closed stdout is fine here — shutdown still completed.
    out(format_args!(
        "shutdown: {} served, {} shed, {} stolen task(s)",
        snap.queries_served, snap.queries_shed, snap.tasks_stolen
    ));
    if snap.rereplications > 0 {
        out(format_args!(
            "hot-set: {} partition(s) re-replicated, {} replica(s) added",
            snap.rereplications, snap.replicas_added
        ));
    }
    Ok(())
}

/// Sends one request to a running daemon and prints the raw response
/// line. Queries resolve exactly like the local query commands: `--rid`
/// regenerates a dataset member from the sidecar, `--query-file` reads
/// values from disk; `--op batch` generates the same workload as
/// `query-batch --count`.
fn cmd_client(flags: &Flags) -> Result<(), String> {
    let addr = req(flags, "addr")?;
    let op = match req(flags, "op")? {
        "exact" => Op::Exact,
        "knn" => Op::Knn,
        "exact-knn" => Op::ExactKnn,
        "range" => Op::Range,
        "batch" => Op::Batch,
        "ingest" => Op::Ingest,
        "compact" => Op::Compact,
        other => {
            return Err(format!(
                "unknown --op '{other}' (exact|knn|exact-knn|range|batch|ingest|compact)"
            ))
        }
    };
    let mut request = Request::new(opt_num(flags, "id", 1)?, op);
    request.k = opt_num(flags, "k", 10)?;
    request.epsilon = opt_num(flags, "epsilon", 1.0)?;
    request.use_bloom = !flags.contains_key("no-bloom");
    request.priority = opt_num(flags, "priority", 0u8)?;
    request.deadline_ms = flags
        .get("deadline-ms")
        .map(|v| v.parse().map_err(|_| format!("invalid --deadline-ms '{v}'")))
        .transpose()?;
    if let Some(s) = flags.get("strategy") {
        request.strategy = match s.as_str() {
            "target" => KnnStrategy::TargetNode,
            "one" => KnnStrategy::OnePartition,
            "multi" => KnnStrategy::MultiPartition,
            other => return Err(format!("unknown strategy '{other}' (target|one|multi)")),
        };
    }
    let cluster = open_cluster(flags)?;
    match op {
        Op::Compact => {}
        Op::Ingest => {
            let dataset = dataset_of(&cluster, flags)?;
            let start: u64 = opt_num(flags, "start", 0)?;
            let count: u64 = opt_num(flags, "count", 1_000)?;
            if count == 0 {
                return Err("--count must be at least 1".into());
            }
            let (family, gen_seed, len, _records) = read_sidecar(&cluster, &dataset)?;
            let gen = family_gen(&family, gen_seed, Some(len))?;
            request.records = (start..start + count)
                .map(|rid| (rid, gen.series(rid).values().to_vec()))
                .collect();
        }
        Op::Batch => {
            let dataset = dataset_of(&cluster, flags)?;
            let count: usize = opt_num(flags, "count", 16)?;
            let seed: u64 = opt_num(flags, "seed", 0)?;
            let (family, gen_seed, len, records) = read_sidecar(&cluster, &dataset)?;
            let gen = family_gen(&family, gen_seed, Some(len))?;
            request.queries = (0..count as u64)
                .map(|i| {
                    let r = seed.wrapping_add(i.wrapping_mul(131));
                    let rid = if i % 4 == 3 {
                        records + r // absent
                    } else {
                        r % records.max(1)
                    };
                    gen.series(rid).values().to_vec()
                })
                .collect();
        }
        _ => {
            let dataset = if flags.contains_key("rid") {
                dataset_of(&cluster, flags)?
            } else {
                String::new()
            };
            let query = load_query(&cluster, &dataset, flags)?;
            request.query = query.values().to_vec();
        }
    }
    let mut client = Client::connect(addr).map_err(|e| e.to_string())?;
    let response = client.send(&request).map_err(|e| e.to_string())?;
    say!("{response}");
    Ok(())
}

/// Scrapes a running daemon's Prometheus metrics text (same bytes as
/// `curl http://ADDR/metrics`).
fn cmd_metrics(flags: &Flags) -> Result<(), String> {
    let addr = req(flags, "addr")?;
    let text = scrape_metrics(addr).map_err(|e| e.to_string())?;
    say!("{}", text.trim_end());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parse_command_and_flags() {
        let (cmd, flags) = parse(&args(&["knn", "--dir", "/d", "--k", "5"])).unwrap();
        assert_eq!(cmd, "knn");
        assert_eq!(flags.get("dir").unwrap(), "/d");
        assert_eq!(flags.get("k").unwrap(), "5");
    }

    #[test]
    fn parse_boolean_flag_takes_no_value() {
        let (_, flags) = parse(&args(&["exact", "--no-bloom", "--rid", "3"])).unwrap();
        assert_eq!(flags.get("no-bloom").unwrap(), "true");
        assert_eq!(flags.get("rid").unwrap(), "3");
    }

    #[test]
    fn parse_rejects_malformed() {
        assert!(parse(&args(&[])).is_none());
        assert!(parse(&args(&["knn", "stray"])).is_none());
        assert!(parse(&args(&["knn", "--dangling"])).is_none());
    }

    #[test]
    fn req_and_opt_num() {
        let (_, flags) = parse(&args(&["x", "--k", "7", "--bad", "zz"])).unwrap();
        assert_eq!(req(&flags, "k").unwrap(), "7");
        assert!(req(&flags, "missing").is_err());
        assert_eq!(opt_num::<u64>(&flags, "k", 1).unwrap(), 7);
        assert_eq!(opt_num::<u64>(&flags, "absent", 9).unwrap(), 9);
        assert!(opt_num::<u64>(&flags, "bad", 0).is_err());
    }

    #[test]
    fn family_gen_resolves_all_families() {
        for f in ["randomwalk", "texmex", "dna", "noaa"] {
            assert!(family_gen(f, 1, None).is_ok(), "{f}");
        }
        assert!(family_gen("nope", 1, None).is_err());
    }
}
