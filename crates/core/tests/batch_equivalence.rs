//! Equivalence properties for the shared-scan batch engine: for every
//! query path — exact match (Bloom and non-Bloom), all three kNN
//! strategies, and exact kNN — a batched workload must return exactly
//! what sequential single-query execution returns, in input order, and
//! the answers must be byte-identical regardless of worker-pool width.

use proptest::prelude::*;
use std::sync::OnceLock;
use tardis_cluster::{encode_records, Cluster, ClusterConfig};
use tardis_core::{
    exact_knn, exact_knn_batch, exact_knn_batch_naive, exact_match, exact_match_batch,
    exact_match_batch_naive, knn_approximate, knn_batch, knn_batch_naive, KnnStrategy,
    TardisConfig, TardisIndex,
};
use tardis_ts::{Record, TimeSeries};

const N_RECORDS: u64 = 900;

fn series(rid: u64) -> TimeSeries {
    let mut x = rid.wrapping_mul(0x9E3779B97F4A7C15) | 1;
    let mut acc = 0.0f32;
    let mut v = Vec::with_capacity(64);
    for _ in 0..64 {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        acc += ((x >> 40) as f32 / (1u32 << 24) as f32) - 0.5;
        v.push(acc);
    }
    tardis_ts::z_normalize_in_place(&mut v);
    TimeSeries::new(v)
}

fn write_data(cluster: &Cluster, n: u64) {
    let blocks: Vec<Vec<u8>> = (0..n)
        .collect::<Vec<u64>>()
        .chunks(100)
        .map(|chunk| {
            encode_records(
                &chunk
                    .iter()
                    .map(|&rid| Record::new(rid, series(rid)))
                    .collect::<Vec<_>>(),
            )
        })
        .collect();
    cluster.dfs().write_blocks("data", blocks).unwrap();
}

fn config() -> TardisConfig {
    TardisConfig {
        g_max_size: 250,
        l_max_size: 50,
        sampling_fraction: 0.5,
        ..TardisConfig::default()
    }
}

struct Fixture {
    cluster: Cluster,
    index: TardisIndex,
}

/// One index shared by every property (building it dominates test time).
fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let cluster = Cluster::new(ClusterConfig {
            n_workers: 4,
            ..ClusterConfig::default()
        })
        .unwrap();
        write_data(&cluster, N_RECORDS);
        let (index, _) = TardisIndex::build(&cluster, "data", &config()).unwrap();
        Fixture { cluster, index }
    })
}

/// Turns proptest-chosen seeds into a workload mixing stored series
/// (even seeds) with absent ones (odd seeds map past the dataset).
fn workload(seeds: &[u64]) -> Vec<TimeSeries> {
    seeds
        .iter()
        .map(|&s| {
            if s % 2 == 0 {
                series(s % N_RECORDS)
            } else {
                series(1_000_000 + s)
            }
        })
        .collect()
}

fn assert_knn_bit_identical(batch: &[tardis_core::KnnAnswer], queries: &[TimeSeries], k: usize, strategy: KnnStrategy) {
    let f = fixture();
    for (q, ans) in queries.iter().zip(batch) {
        let single = knn_approximate(&f.index, &f.cluster, q, k, strategy).unwrap();
        assert_eq!(ans.neighbors.len(), single.neighbors.len());
        for (a, b) in ans.neighbors.iter().zip(&single.neighbors) {
            assert_eq!(a.1, b.1, "rid mismatch");
            assert_eq!(a.0.to_bits(), b.0.to_bits(), "distance bits mismatch");
        }
        assert_eq!(ans.partitions_loaded, single.partitions_loaded);
        assert_eq!(ans.candidates_refined, single.candidates_refined);
        assert_eq!(ans.candidates_abandoned, single.candidates_abandoned);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn exact_match_batch_equals_sequential(
        seeds in prop::collection::vec(0u64..2000, 1..40),
        use_bloom in 0u8..2,
    ) {
        let f = fixture();
        let queries = workload(&seeds);
        let use_bloom = use_bloom == 1;
        let batch = exact_match_batch(&f.index, &f.cluster, &queries, use_bloom).unwrap();
        prop_assert_eq!(batch.len(), queries.len());
        for (q, out) in queries.iter().zip(&batch) {
            let single = exact_match(&f.index, &f.cluster, q, use_bloom).unwrap();
            prop_assert_eq!(out, &single);
        }
        let naive = exact_match_batch_naive(&f.index, &f.cluster, &queries, use_bloom).unwrap();
        prop_assert_eq!(&batch, &naive);
    }

    #[test]
    fn knn_batch_equals_sequential_all_strategies(
        seeds in prop::collection::vec(0u64..2000, 1..25),
        k in 1usize..8,
    ) {
        let f = fixture();
        let queries = workload(&seeds);
        for strategy in [
            KnnStrategy::TargetNode,
            KnnStrategy::OnePartition,
            KnnStrategy::MultiPartition,
        ] {
            let batch = knn_batch(&f.index, &f.cluster, &queries, k, strategy).unwrap();
            prop_assert_eq!(batch.len(), queries.len());
            assert_knn_bit_identical(&batch, &queries, k, strategy);
            let naive = knn_batch_naive(&f.index, &f.cluster, &queries, k, strategy).unwrap();
            for (a, b) in batch.iter().zip(&naive) {
                prop_assert_eq!(&a.neighbors, &b.neighbors);
            }
        }
    }

    #[test]
    fn exact_knn_batch_equals_sequential(
        seeds in prop::collection::vec(0u64..2000, 1..12),
        k in 1usize..7,
    ) {
        let f = fixture();
        let queries = workload(&seeds);
        let batch = exact_knn_batch(&f.index, &f.cluster, &queries, k).unwrap();
        prop_assert_eq!(batch.len(), queries.len());
        for (q, ans) in queries.iter().zip(&batch) {
            let single = exact_knn(&f.index, &f.cluster, q, k).unwrap();
            prop_assert_eq!(ans.neighbors.len(), single.neighbors.len());
            for (a, b) in ans.neighbors.iter().zip(&single.neighbors) {
                prop_assert_eq!(a.rid, b.rid);
                prop_assert_eq!(a.distance.to_bits(), b.distance.to_bits());
            }
            prop_assert_eq!(ans.partitions_loaded, single.partitions_loaded);
            prop_assert_eq!(ans.partitions_pruned, single.partitions_pruned);
        }
        let naive = exact_knn_batch_naive(&f.index, &f.cluster, &queries, k).unwrap();
        for (a, b) in batch.iter().zip(&naive) {
            prop_assert_eq!(a.neighbors.len(), b.neighbors.len());
            for (x, y) in a.neighbors.iter().zip(&b.neighbors) {
                prop_assert_eq!(x.rid, y.rid);
                prop_assert_eq!(x.distance.to_bits(), y.distance.to_bits());
            }
        }
    }
}

/// The same workload on pools of width 1, 4, and 8 must produce
/// byte-identical results — same neighbor sets, same order, same f64
/// bits — for every query path. The index is built once and shared; only
/// the cluster (worker pool + DFS handle over the same directory)
/// varies.
#[test]
fn results_identical_across_pool_widths() {
    let dir = std::env::temp_dir().join(format!("tardis-batch-widths-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let build_cluster = Cluster::at_dir(&dir, ClusterConfig {
        n_workers: 4,
        ..ClusterConfig::default()
    })
    .unwrap();
    write_data(&build_cluster, 600);
    let (index, _) = TardisIndex::build(&build_cluster, "data", &config()).unwrap();

    let queries: Vec<TimeSeries> = (0..30)
        .map(|i| if i % 3 == 0 { series(i * 13 % 600) } else { series(10_000 + i) })
        .collect();
    let k = 5;

    let mut reference: Option<(
        Vec<tardis_core::ExactMatchOutcome>,
        Vec<tardis_core::KnnAnswer>,
        Vec<tardis_core::ExactKnnAnswer>,
    )> = None;
    for width in [1usize, 4, 8] {
        let cluster = Cluster::at_dir(&dir, ClusterConfig {
            n_workers: width,
            ..ClusterConfig::default()
        })
        .unwrap();
        let exact = exact_match_batch(&index, &cluster, &queries, true).unwrap();
        let knn = knn_batch(&index, &cluster, &queries, k, KnnStrategy::MultiPartition).unwrap();
        let eknn = exact_knn_batch(&index, &cluster, &queries, k).unwrap();
        match &reference {
            None => reference = Some((exact, knn, eknn)),
            Some((re, rk, rx)) => {
                assert_eq!(&exact, re, "exact-match differs at width {width}");
                for (a, b) in knn.iter().zip(rk) {
                    assert_eq!(a.neighbors.len(), b.neighbors.len());
                    for (x, y) in a.neighbors.iter().zip(&b.neighbors) {
                        assert_eq!(x.1, y.1, "kNN rid differs at width {width}");
                        assert_eq!(
                            x.0.to_bits(),
                            y.0.to_bits(),
                            "kNN distance bits differ at width {width}"
                        );
                    }
                    assert_eq!(a.partitions_loaded, b.partitions_loaded);
                }
                for (a, b) in eknn.iter().zip(rx) {
                    assert_eq!(a.neighbors.len(), b.neighbors.len());
                    for (x, y) in a.neighbors.iter().zip(&b.neighbors) {
                        assert_eq!(x.rid, y.rid, "exact-kNN rid differs at width {width}");
                        assert_eq!(
                            x.distance.to_bits(),
                            y.distance.to_bits(),
                            "exact-kNN distance bits differ at width {width}"
                        );
                    }
                }
            }
        }
    }
    drop(build_cluster);
    std::fs::remove_dir_all(&dir).ok();
}

/// Regression for the unified task accounting: a batch of one must run
/// exactly as many pool tasks as the equivalent single-query call — one
/// `record_task` per physical partition load, wherever the load happens.
#[test]
fn batch_of_one_runs_same_task_count_as_single() {
    let f = fixture();
    let q = series(11);

    let before = f.cluster.metrics().snapshot();
    exact_match(&f.index, &f.cluster, &q, true).unwrap();
    let single_exact = f.cluster.metrics().snapshot().delta_since(&before).tasks_run;
    let before = f.cluster.metrics().snapshot();
    exact_match_batch(&f.index, &f.cluster, std::slice::from_ref(&q), true).unwrap();
    let batch_exact = f.cluster.metrics().snapshot().delta_since(&before).tasks_run;
    assert_eq!(single_exact, batch_exact, "exact-match task count diverged");

    for strategy in [
        KnnStrategy::TargetNode,
        KnnStrategy::OnePartition,
        KnnStrategy::MultiPartition,
    ] {
        let before = f.cluster.metrics().snapshot();
        knn_approximate(&f.index, &f.cluster, &q, 5, strategy).unwrap();
        let single = f.cluster.metrics().snapshot().delta_since(&before).tasks_run;
        let before = f.cluster.metrics().snapshot();
        knn_batch(&f.index, &f.cluster, std::slice::from_ref(&q), 5, strategy).unwrap();
        let batch = f.cluster.metrics().snapshot().delta_since(&before).tasks_run;
        assert_eq!(single, batch, "kNN task count diverged for {strategy:?}");
    }
}
