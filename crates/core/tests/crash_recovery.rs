//! Crash-consistency chaos suite: for every registered crash point
//! reachable from build / build-sorted / ingest / compact / scrub, the
//! operation is killed mid-flight at that exact point (a seeded
//! [`CrashSpec`] turns the named site into a simulated `kill -9`), the
//! store is reopened by a *fresh* cluster, and startup recovery
//! ([`recover_store`]) must restore a store **byte-identical** to either
//! the pre-operation or the post-operation oracle — never a third
//! state. When the matching oracle holds a manifest, every query path
//! (exact match, the three approximate-kNN strategies, exact kNN,
//! range, and the batch engine) must answer identically on the
//! recovered store and the oracle.
//!
//! Arrival positions are enumerated by a dry run with a counting (but
//! never-firing) injector, then each reachable site is crashed at its
//! first, middle, and last arrival.

use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};
use tardis_cluster::{
    encode_records, Cluster, ClusterConfig, CrashSpec, FaultPlan, CRASH_SITES,
};
use tardis_core::{
    exact_knn, exact_match, exact_match_batch, knn_approximate, range_query, recover_store,
    CoreError, KnnStrategy, SortedBuildOptions, TardisConfig, TardisIndex,
};
use tardis_ts::{Record, TimeSeries};

fn series(rid: u64) -> TimeSeries {
    let mut x = rid.wrapping_mul(0x9E3779B97F4A7C15) | 1;
    let mut acc = 0.0f32;
    let mut v = Vec::with_capacity(64);
    for _ in 0..64 {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        acc += ((x >> 40) as f32 / (1u32 << 24) as f32) - 0.5;
        v.push(acc);
    }
    tardis_ts::z_normalize_in_place(&mut v);
    TimeSeries::new(v)
}

fn config() -> TardisConfig {
    TardisConfig {
        g_max_size: 150,
        l_max_size: 30,
        sampling_fraction: 0.5,
        pth: 4,
        ..TardisConfig::default()
    }
}

fn records(range: std::ops::Range<u64>) -> Vec<Record> {
    range.map(|rid| Record::new(rid, series(rid))).collect()
}

/// Single-worker cluster at `dir`: placement, task order, and therefore
/// every crash-point arrival position are deterministic.
fn cluster_at(dir: &Path, crash: Option<CrashSpec>, counting: bool) -> Cluster {
    let faults = if crash.is_some() || counting {
        Some(FaultPlan {
            crash_point: crash,
            ..FaultPlan::default()
        })
    } else {
        None
    };
    Cluster::at_dir(
        dir,
        ClusterConfig {
            n_workers: 1,
            faults,
            ..ClusterConfig::default()
        },
    )
    .unwrap()
}

/// Recursive tree snapshot: relative path → file bytes (directories
/// appear with an empty marker so leftover empty dirs are caught too).
fn snapshot(root: &Path) -> BTreeMap<PathBuf, Option<Vec<u8>>> {
    let mut out = BTreeMap::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir).unwrap() {
            let path = entry.unwrap().path();
            let rel = path.strip_prefix(root).unwrap().to_path_buf();
            if path.is_dir() {
                out.insert(rel, None);
                stack.push(path);
            } else {
                out.insert(rel, Some(std::fs::read(&path).unwrap()));
            }
        }
    }
    out
}

fn copy_tree(src: &Path, dst: &Path) {
    std::fs::create_dir_all(dst).unwrap();
    for entry in std::fs::read_dir(src).unwrap() {
        let path = entry.unwrap().path();
        let to = dst.join(path.file_name().unwrap());
        if path.is_dir() {
            copy_tree(&path, &to);
        } else {
            std::fs::copy(&path, &to).unwrap();
        }
    }
}

/// Human-readable first difference between two snapshots, for failure
/// messages.
fn diff_summary(
    a: &BTreeMap<PathBuf, Option<Vec<u8>>>,
    b: &BTreeMap<PathBuf, Option<Vec<u8>>>,
) -> String {
    let keys: BTreeSet<&PathBuf> = a.keys().chain(b.keys()).collect();
    for k in keys {
        match (a.get(k), b.get(k)) {
            (None, Some(_)) => return format!("missing {}", k.display()),
            (Some(_), None) => return format!("extra {}", k.display()),
            (Some(x), Some(y)) if x != y => return format!("content differs at {}", k.display()),
            _ => {}
        }
    }
    "identical".into()
}

/// One query's answers across the five query paths. Derived [`PartialEq`]
/// compares floats exactly — the recovered store and the oracle run the
/// same arithmetic in the same order.
#[derive(Debug, PartialEq)]
struct Answers {
    exact: Vec<u64>,
    knn: Vec<Vec<(f64, u64)>>,
    exact_knn: Vec<(f64, u64)>,
    range: Vec<(u64, f64)>,
    batch: Vec<Vec<u64>>,
}

fn answers(index: &TardisIndex, cluster: &Cluster, q: &TimeSeries) -> Answers {
    let exact = exact_match(index, cluster, q, true).unwrap().matches;
    let knn: Vec<Vec<(f64, u64)>> = [
        KnnStrategy::TargetNode,
        KnnStrategy::OnePartition,
        KnnStrategy::MultiPartition,
    ]
    .iter()
    .map(|&s| knn_approximate(index, cluster, q, 5, s).unwrap().neighbors)
    .collect();
    let exact_knn_ans: Vec<(f64, u64)> = exact_knn(index, cluster, q, 5)
        .unwrap()
        .neighbors
        .into_iter()
        .map(|nb| (nb.distance, nb.rid))
        .collect();
    let range: Vec<(u64, f64)> = range_query(index, cluster, q, 2.0)
        .unwrap()
        .matches
        .into_iter()
        .map(|nb| (nb.rid, nb.distance))
        .collect();
    let batch: Vec<Vec<u64>> = exact_match_batch(index, cluster, std::slice::from_ref(q), true)
        .unwrap()
        .into_iter()
        .map(|o| o.matches)
        .collect();
    Answers {
        exact,
        knn,
        exact_knn: exact_knn_ans,
        range,
        batch,
    }
}

/// Writes the 400-record dataset every scenario builds on.
fn write_base_dataset(cluster: &Cluster) {
    let blocks: Vec<Vec<u8>> = (0..400u64)
        .collect::<Vec<u64>>()
        .chunks(100)
        .map(|chunk| {
            encode_records(
                &chunk
                    .iter()
                    .map(|&rid| Record::new(rid, series(rid)))
                    .collect::<Vec<_>>(),
            )
        })
        .collect();
    cluster.dfs().write_blocks("data", blocks).unwrap();
}

/// A crash scenario: a base store, one multi-step operation, and the
/// crash sites that operation is expected to pass through.
struct Scenario {
    name: &'static str,
    setup: fn(&Cluster),
    op: fn(&Cluster) -> Result<(), CoreError>,
    expected_sites: &'static [&'static str],
}

fn op_build(cluster: &Cluster) -> Result<(), CoreError> {
    let (index, _) = TardisIndex::build(cluster, "data", &config())?;
    index.save_atomic(cluster, "idx")?;
    Ok(())
}

fn op_build_sorted(cluster: &Cluster) -> Result<(), CoreError> {
    let opts = SortedBuildOptions {
        run_budget_bytes: 64 << 10,
    };
    let (index, _) = TardisIndex::build_sorted(cluster, "data", &config(), &opts)?;
    index.save_atomic(cluster, "idx")?;
    Ok(())
}

fn op_ingest(cluster: &Cluster) -> Result<(), CoreError> {
    let mut index = TardisIndex::open(cluster, "idx")?;
    index.ingest_batch(cluster, records(400..460))?;
    index.save_atomic(cluster, "idx")?;
    Ok(())
}

fn op_compact(cluster: &Cluster) -> Result<(), CoreError> {
    let mut index = TardisIndex::open(cluster, "idx")?;
    let outcome = index.compact_deferred(cluster)?;
    index.save_atomic(cluster, "idx")?;
    TardisIndex::retire_files(cluster, &outcome.retired_files)?;
    Ok(())
}

fn op_scrub(cluster: &Cluster) -> Result<(), CoreError> {
    cluster.dfs().scrub()?;
    Ok(())
}

fn setup_dataset_only(cluster: &Cluster) {
    write_base_dataset(cluster);
}

fn setup_built(cluster: &Cluster) {
    write_base_dataset(cluster);
    op_build(cluster).unwrap();
}

fn setup_with_deltas(cluster: &Cluster) {
    setup_built(cluster);
    let mut index = TardisIndex::open(cluster, "idx").unwrap();
    index.ingest_batch(cluster, records(400..430)).unwrap();
    index.save_atomic(cluster, "idx").unwrap();
    index.ingest_batch(cluster, records(430..460)).unwrap();
    index.save_atomic(cluster, "idx").unwrap();
}

/// A built store with one replica of one partition block deleted, so
/// scrub has a repair to stage (and crash inside).
fn setup_damaged(cluster: &Cluster) {
    setup_built(cluster);
    let root = cluster.dfs().root().to_path_buf();
    let mut victims: Vec<PathBuf> = snapshot(&root)
        .into_keys()
        .filter(|p| {
            p.to_string_lossy().contains("part-00000") && p.extension().is_some_and(|e| e == "bin")
        })
        .map(|rel| root.join(rel))
        .collect();
    victims.sort();
    let victim = victims.first().expect("a part-00000 replica on disk");
    std::fs::remove_file(victim).unwrap();
}

fn run_scenario(scenario: &Scenario) {
    let root = std::env::temp_dir().join(format!(
        "tardis-crash-{}-{}",
        scenario.name,
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&root);
    std::fs::create_dir_all(&root).unwrap();

    // Base store, then the two oracles: pre (untouched copy) and post
    // (the operation run to completion, no faults).
    let base = root.join("base");
    {
        let cluster = cluster_at(&base, None, false);
        (scenario.setup)(&cluster);
    }
    let pre_dir = root.join("pre");
    copy_tree(&base, &pre_dir);
    let post_dir = root.join("post");
    copy_tree(&base, &post_dir);
    {
        let cluster = cluster_at(&post_dir, None, false);
        (scenario.op)(&cluster).unwrap();
    }
    let pre_snap = snapshot(&pre_dir);
    let post_snap = snapshot(&post_dir);
    assert_ne!(
        diff_summary(&pre_snap, &post_snap),
        "identical",
        "{}: operation must change the store",
        scenario.name
    );

    // Dry run with a counting injector to enumerate arrival positions.
    let dry_dir = root.join("dry");
    copy_tree(&base, &dry_dir);
    let arrivals: Vec<(&'static str, u64)> = {
        let cluster = cluster_at(&dry_dir, None, true);
        (scenario.op)(&cluster).unwrap();
        cluster.fault_injector().unwrap().crash_site_arrivals()
    };
    let observed: BTreeSet<&str> = arrivals.iter().map(|&(s, _)| s).collect();
    let expected: BTreeSet<&str> = scenario.expected_sites.iter().copied().collect();
    assert_eq!(
        observed, expected,
        "{}: crash sites passed through by the operation",
        scenario.name
    );

    let mut checked_metrics = false;
    for &(site, total) in &arrivals {
        // First, middle, and last arrival at each site.
        let hits: BTreeSet<u64> = [1, total.div_ceil(2), total].into_iter().collect();
        for hit in hits {
            let work = root.join(format!("work-{}-{hit}", site.replace('.', "_")));
            copy_tree(&base, &work);
            {
                let cluster = cluster_at(
                    &work,
                    Some(CrashSpec::parse(&format!("{site}:{hit}")).unwrap()),
                    false,
                );
                let err = (scenario.op)(&cluster)
                    .expect_err("armed crash point must abort the operation");
                let msg = err.to_string();
                assert!(
                    msg.contains("injected crash at") && msg.contains(site),
                    "{}: unexpected error at {site}:{hit}: {msg}",
                    scenario.name
                );
            }
            // Reopen with a fresh cluster (the "restarted process") and
            // run startup recovery.
            let cluster = cluster_at(&work, None, false);
            let report = recover_store(&cluster).unwrap();
            assert_eq!(report.blocks_lost, 0, "{}: {site}:{hit}", scenario.name);
            if !checked_metrics {
                let text = cluster.metrics().snapshot().prometheus_text(None);
                for counter in [
                    "tardis_recovery_runs 1",
                    "tardis_recovery_manifests_rolled",
                    "tardis_recovery_tmp_swept",
                    "tardis_recovery_orphans_deleted",
                    "tardis_recovery_replicas_healed",
                ] {
                    assert!(text.contains(counter), "missing {counter} in:\n{text}");
                }
                checked_metrics = true;
            }
            let got = snapshot(&work);
            let matches_pre = got == pre_snap;
            let matches_post = got == post_snap;
            assert!(
                matches_pre || matches_post,
                "{}: crash at {site}:{hit} recovered to a third state \
                 (vs pre: {}; vs post: {})",
                scenario.name,
                diff_summary(&got, &pre_snap),
                diff_summary(&got, &post_snap)
            );
            // Query equivalence against the matching oracle, when it
            // holds an index to open.
            let oracle_dir = if matches_pre { &pre_dir } else { &post_dir };
            if cluster.dfs().file_exists("idx") {
                let oracle = cluster_at(oracle_dir, None, false);
                let got_index = TardisIndex::open(&cluster, "idx").unwrap();
                let want_index = TardisIndex::open(&oracle, "idx").unwrap();
                for rid in [7u64, 455, 40_000] {
                    let q = series(rid);
                    assert_eq!(
                        answers(&got_index, &cluster, &q),
                        answers(&want_index, &oracle, &q),
                        "{}: answers diverged after {site}:{hit} (rid {rid})",
                        scenario.name
                    );
                }
            }
            std::fs::remove_dir_all(&work).unwrap();
        }
    }
    std::fs::remove_dir_all(&root).unwrap();
}

const BUILD_SITES: &[&str] = &[
    "dfs.write_block.replica",
    "dfs.replace.stage",
    "dfs.replace.rename",
];

#[test]
fn crash_recovery_build() {
    run_scenario(&Scenario {
        name: "build",
        setup: setup_dataset_only,
        op: op_build,
        expected_sites: BUILD_SITES,
    });
}

#[test]
fn crash_recovery_build_sorted() {
    run_scenario(&Scenario {
        name: "build-sorted",
        setup: setup_dataset_only,
        op: op_build_sorted,
        expected_sites: BUILD_SITES,
    });
}

#[test]
fn crash_recovery_ingest() {
    run_scenario(&Scenario {
        name: "ingest",
        setup: setup_built,
        op: op_ingest,
        expected_sites: &[
            "dfs.write_block.replica",
            "dfs.replace.stage",
            "dfs.replace.rename",
            "core.ingest.seal",
        ],
    });
}

#[test]
fn crash_recovery_compact() {
    run_scenario(&Scenario {
        name: "compact",
        setup: setup_with_deltas,
        op: op_compact,
        expected_sites: &[
            "dfs.write_block.replica",
            "dfs.replace.stage",
            "dfs.replace.rename",
            "core.compact.swap",
            "core.compact.retire",
        ],
    });
}

#[test]
fn crash_recovery_scrub() {
    run_scenario(&Scenario {
        name: "scrub",
        setup: setup_damaged,
        op: op_scrub,
        expected_sites: &["dfs.scrub.repair"],
    });
}

/// The five scenarios together must exercise the full registered
/// catalogue — a new crash site cannot be added without chaos coverage.
#[test]
fn scenarios_cover_every_registered_crash_site() {
    let covered: BTreeSet<&str> = BUILD_SITES
        .iter()
        .chain(&["core.ingest.seal", "core.compact.swap", "core.compact.retire", "dfs.scrub.repair"])
        .copied()
        .collect();
    let registered: BTreeSet<&str> = CRASH_SITES.iter().copied().collect();
    assert_eq!(covered, registered);
}
