//! The sorted build under seeded fault injection.
//!
//! Every byte the external sort moves — dataset reads, run-file writes,
//! run-file reads during the merge, partition/bloom writes — goes
//! through the replicated DFS, so injected transient faults must be
//! absorbed by the normal retry machinery without changing a single
//! output byte. These tests run the sorted build on a cluster whose
//! fault plan fails reads, writes, and tasks, then compare the result
//! against a clean build: answers identical, retries actually happened,
//! and no run files left behind.

use std::time::Duration;
use tardis_cluster::{
    encode_records, BackoffClock, Cluster, ClusterConfig, FaultPlan, RetryPolicy,
};
use tardis_core::{
    exact_knn, exact_match, knn_approximate, range_query, KnnStrategy, SortedBuildOptions,
    TardisConfig, TardisIndex,
};
use tardis_ts::{Record, TimeSeries};

const N_RECORDS: u64 = 360;

fn series(rid: u64) -> TimeSeries {
    let mut x = rid.wrapping_mul(0x9E3779B97F4A7C15) | 1;
    let mut acc = 0.0f32;
    let mut v = Vec::with_capacity(64);
    for _ in 0..64 {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        acc += ((x >> 40) as f32 / (1u32 << 24) as f32) - 0.5;
        v.push(acc);
    }
    tardis_ts::z_normalize_in_place(&mut v);
    TimeSeries::new(v)
}

fn config() -> TardisConfig {
    TardisConfig {
        g_max_size: 120,
        l_max_size: 40,
        sampling_fraction: 0.5,
        ..TardisConfig::default()
    }
}

fn faulty_cluster(seed: u64) -> Cluster {
    Cluster::new(ClusterConfig {
        n_workers: 4,
        faults: Some(FaultPlan {
            seed,
            block_read_fail_p: 0.10,
            block_write_fail_p: 0.10,
            task_fail_p: 0.05,
            ..FaultPlan::default()
        }),
        retry: RetryPolicy {
            max_attempts: 64,
            backoff_base: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(8),
            clock: BackoffClock::Virtual(Default::default()),
        },
        ..ClusterConfig::default()
    })
    .unwrap()
}

fn clean_cluster() -> Cluster {
    Cluster::new(ClusterConfig {
        n_workers: 4,
        ..ClusterConfig::default()
    })
    .unwrap()
}

fn write_data(cluster: &Cluster) {
    let blocks: Vec<Vec<u8>> = (0..N_RECORDS)
        .collect::<Vec<u64>>()
        .chunks(60)
        .map(|chunk| {
            encode_records(
                &chunk
                    .iter()
                    .map(|&rid| Record::new(rid, series(rid)))
                    .collect::<Vec<_>>(),
            )
        })
        .collect();
    cluster.dfs().write_blocks("data", blocks).unwrap();
}

/// Faults are injected throughout the spill/merge/stream pipeline, the
/// build still succeeds, and its answers are bit-identical to a clean
/// build's on every query path.
#[test]
fn sorted_build_survives_fault_injection_with_identical_answers() {
    let clean = clean_cluster();
    write_data(&clean);
    let cfg = config();
    let (oracle, oracle_report) = TardisIndex::build(&clean, "data", &cfg).unwrap();

    let faulty = faulty_cluster(0x7A8D_15B3);
    write_data(&faulty);
    let opts = SortedBuildOptions {
        run_budget_bytes: 16 << 10,
    };
    let (index, report) = TardisIndex::build_sorted(&faulty, "data", &cfg, &opts).unwrap();

    // The plan really fired, and the retries absorbed every fault.
    let m = faulty.metrics().snapshot();
    assert!(m.faults_injected > 0, "fault plan never fired");
    assert!(
        m.block_read_retries + m.block_write_retries + m.task_retries > 0,
        "no retries recorded despite injected faults"
    );
    assert_eq!(m.tasks_failed_permanently, 0, "a task exhausted its retries");

    // Same logical index as the clean oracle.
    assert_eq!(report.n_records, oracle_report.n_records);
    assert_eq!(report.n_partitions, oracle_report.n_partitions);
    assert_eq!(report.local_index_bytes, oracle_report.local_index_bytes);
    assert_eq!(report.bloom_bytes, oracle_report.bloom_bytes);

    // Run files are cleaned up even on the fault-injected path.
    assert!(
        !faulty
            .dfs()
            .list_files()
            .iter()
            .any(|n| n.starts_with("extsort-run-")),
        "leftover run files after a fault-injected sorted build"
    );

    // Answers bit-identical to the clean in-memory oracle. Queries run
    // against the faulty cluster too — reads keep being injected, which
    // is fine: retried reads return the same bytes.
    for &rid in &[5u64, 111, 222, 333] {
        let q = series(rid);
        let ea = exact_match(&oracle, &clean, &q, true).unwrap();
        let eb = exact_match(&index, &faulty, &q, true).unwrap();
        assert_eq!(ea.matches, eb.matches, "exact rid {rid}");

        for strategy in KnnStrategy::ALL {
            let ka = knn_approximate(&oracle, &clean, &q, 5, strategy).unwrap();
            let kb = knn_approximate(&index, &faulty, &q, 5, strategy).unwrap();
            let na: Vec<(u64, u64)> = ka.neighbors.iter().map(|&(d, r)| (d.to_bits(), r)).collect();
            let nb: Vec<(u64, u64)> = kb.neighbors.iter().map(|&(d, r)| (d.to_bits(), r)).collect();
            assert_eq!(na, nb, "knn {strategy:?} rid {rid}");
        }

        let xa = exact_knn(&oracle, &clean, &q, 5).unwrap();
        let xb = exact_knn(&index, &faulty, &q, 5).unwrap();
        let ex_a: Vec<(u64, u64)> =
            xa.neighbors.iter().map(|n| (n.distance.to_bits(), n.rid)).collect();
        let ex_b: Vec<(u64, u64)> =
            xb.neighbors.iter().map(|n| (n.distance.to_bits(), n.rid)).collect();
        assert_eq!(ex_a, ex_b, "exact-knn rid {rid}");

        let ra = range_query(&oracle, &clean, &q, 4.0).unwrap();
        let rb = range_query(&index, &faulty, &q, 4.0).unwrap();
        let rm_a: Vec<(u64, u64)> =
            ra.matches.iter().map(|n| (n.distance.to_bits(), n.rid)).collect();
        let rm_b: Vec<(u64, u64)> =
            rb.matches.iter().map(|n| (n.distance.to_bits(), n.rid)).collect();
        assert_eq!(rm_a, rm_b, "range rid {rid}");
    }
}

/// Stale run files from a crashed predecessor build must not leak into
/// (or corrupt) a fresh sorted build.
#[test]
fn sorted_build_sweeps_stale_run_files() {
    let cluster = clean_cluster();
    write_data(&cluster);
    // Simulate an aborted earlier attempt: a well-formed-looking but
    // bogus run file that a correct build must delete, not merge.
    cluster
        .dfs()
        .append_block("extsort-run-00000", b"stale garbage from a dead build")
        .unwrap();
    let cfg = config();
    let opts = SortedBuildOptions {
        run_budget_bytes: 16 << 10,
    };
    let (index, report) = TardisIndex::build_sorted(&cluster, "data", &cfg, &opts).unwrap();
    assert_eq!(report.n_records, N_RECORDS);
    assert!(
        !cluster
            .dfs()
            .list_files()
            .iter()
            .any(|n| n.starts_with("extsort-run-")),
        "stale or new run files left behind"
    );
    let q = series(42);
    let outcome = exact_match(&index, &cluster, &q, true).unwrap();
    assert_eq!(outcome.matches, vec![42]);
}
