//! Index persistence: a saved index reopens with identical routing and
//! query behaviour, without rebuilding.

use tardis_cluster::{encode_records, Cluster, ClusterConfig};
use tardis_core::{exact_match, knn_approximate, KnnStrategy, TardisConfig, TardisG, TardisIndex};
use tardis_ts::{Record, TimeSeries};

fn series(rid: u64) -> TimeSeries {
    let mut x = rid.wrapping_mul(0x9E3779B97F4A7C15) | 1;
    let mut acc = 0.0f32;
    let mut v = Vec::with_capacity(64);
    for _ in 0..64 {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        acc += ((x >> 40) as f32 / (1u32 << 24) as f32) - 0.5;
        v.push(acc);
    }
    tardis_ts::z_normalize_in_place(&mut v);
    TimeSeries::new(v)
}

fn setup(n: u64, config: &TardisConfig) -> (Cluster, TardisIndex) {
    let cluster = Cluster::new(ClusterConfig {
        n_workers: 4,
        ..ClusterConfig::default()
    })
    .unwrap();
    let blocks: Vec<Vec<u8>> = (0..n)
        .collect::<Vec<u64>>()
        .chunks(100)
        .map(|chunk| {
            encode_records(
                &chunk
                    .iter()
                    .map(|&rid| Record::new(rid, series(rid)))
                    .collect::<Vec<_>>(),
            )
        })
        .collect();
    cluster.dfs().write_blocks("data", blocks).unwrap();
    let (index, _) = TardisIndex::build(&cluster, "data", config).unwrap();
    (cluster, index)
}

fn test_config() -> TardisConfig {
    TardisConfig {
        g_max_size: 300,
        l_max_size: 50,
        sampling_fraction: 0.5,
        pth: 5,
        ..TardisConfig::default()
    }
}

#[test]
fn global_index_roundtrips_through_bytes() {
    let (_cluster, index) = setup(1_000, &test_config());
    let original = index.global();
    let restored = TardisG::from_bytes(&original.to_bytes()).unwrap();
    assert_eq!(restored.n_partitions(), original.n_partitions());
    assert_eq!(restored.sampled_records, original.sampled_records);
    assert_eq!(restored.tree().n_nodes(), original.tree().n_nodes());
    // Routing identical for members and strangers.
    for rid in (0..1_000).step_by(37).chain([50_000, 99_999]) {
        let ts = series(rid);
        assert_eq!(
            restored.partition_of_series(&ts).unwrap(),
            original.partition_of_series(&ts).unwrap(),
            "rid {rid}"
        );
    }
    // Sibling partition lists identical.
    for rid in [1u64, 500, 999] {
        let sig = original.converter().sig_of(&series(rid)).unwrap();
        assert_eq!(
            restored.sibling_partitions(&sig),
            original.sibling_partitions(&sig)
        );
    }
}

#[test]
fn global_from_bytes_rejects_corruption() {
    let (_cluster, index) = setup(500, &test_config());
    let bytes = index.global().to_bytes();
    assert!(TardisG::from_bytes(&bytes[..bytes.len() / 2]).is_err());
    assert!(TardisG::from_bytes(&bytes[..3]).is_err());
    let mut trailing = bytes.clone();
    trailing.push(0);
    assert!(TardisG::from_bytes(&trailing).is_err());
}

#[test]
fn saved_index_reopens_with_identical_answers() {
    let (cluster, index) = setup(1_200, &test_config());
    index.save(&cluster, "manifest").unwrap();
    let reopened = TardisIndex::open(&cluster, "manifest").unwrap();

    assert_eq!(reopened.n_partitions(), index.n_partitions());
    assert_eq!(reopened.config(), index.config());
    assert!(reopened.resident_bloom_bytes() > 0, "blooms reloaded");

    for rid in [0u64, 321, 1_199, 77_000] {
        let q = series(rid);
        let a = exact_match(&index, &cluster, &q, true).unwrap();
        let b = exact_match(&reopened, &cluster, &q, true).unwrap();
        assert_eq!(a.matches, b.matches, "rid {rid}");
    }
    for strategy in KnnStrategy::ALL {
        let q = series(42);
        let a = knn_approximate(&index, &cluster, &q, 10, strategy).unwrap();
        let b = knn_approximate(&reopened, &cluster, &q, 10, strategy).unwrap();
        assert_eq!(a.neighbors, b.neighbors, "{strategy:?}");
    }
}

#[test]
fn saved_unclustered_index_reopens() {
    let config = TardisConfig {
        clustered: false,
        ..test_config()
    };
    let (cluster, index) = setup(800, &config);
    index.save(&cluster, "manifest").unwrap();
    let reopened = TardisIndex::open(&cluster, "manifest").unwrap();
    assert!(!reopened.config().clustered);
    let q = series(100);
    let a = exact_match(&index, &cluster, &q, true).unwrap();
    let b = exact_match(&reopened, &cluster, &q, true).unwrap();
    assert_eq!(a.matches, b.matches);
    assert_eq!(a.matches, vec![100]);
}

#[test]
fn open_missing_or_corrupt_manifest_errors() {
    let (cluster, index) = setup(300, &test_config());
    assert!(TardisIndex::open(&cluster, "nope").is_err());
    // Corrupt manifest.
    index.save(&cluster, "manifest").unwrap();
    let blocks = cluster.dfs().list_blocks("manifest").unwrap();
    let bytes = cluster.dfs().read_block(&blocks[0]).unwrap();
    cluster.dfs().delete_file("manifest").unwrap();
    cluster
        .dfs()
        .append_block("manifest", &bytes[..bytes.len() / 3])
        .unwrap();
    assert!(TardisIndex::open(&cluster, "manifest").is_err());
}

#[test]
fn save_overwrites_previous_manifest() {
    let (cluster, index) = setup(400, &test_config());
    index.save(&cluster, "manifest").unwrap();
    index.save(&cluster, "manifest").unwrap();
    assert_eq!(cluster.dfs().list_blocks("manifest").unwrap().len(), 1);
    assert!(TardisIndex::open(&cluster, "manifest").is_ok());
}
