//! Compaction cache-coherence: compaction retires the pre-compaction
//! partition and delta files, and deleting a retired file must both
//! evict its blocks from the shared [`BlockCache`] and release any pins
//! still held on it — a leaked pin would exempt dead blocks from the
//! cache budget forever. Also pins the invariant that the shared-scan
//! batch engines leave zero pins behind when serving base ∪ deltas.
//!
//! [`BlockCache`]: tardis_cluster::BlockCache

use std::time::Duration;
use tardis_cluster::{encode_records, Cluster, ClusterConfig, DfsConfig};
use tardis_core::{
    exact_knn_batch, exact_match, exact_match_batch, knn_batch, range_query, KnnStrategy,
    TardisConfig, TardisIndex,
};
use tardis_ts::{Record, TimeSeries};

fn series(rid: u64) -> TimeSeries {
    let mut x = rid.wrapping_mul(0x9E3779B97F4A7C15) | 1;
    let mut acc = 0.0f32;
    let mut v = Vec::with_capacity(64);
    for _ in 0..64 {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        acc += ((x >> 40) as f32 / (1u32 << 24) as f32) - 0.5;
        v.push(acc);
    }
    tardis_ts::z_normalize_in_place(&mut v);
    TimeSeries::new(v)
}

fn setup(n: u64) -> (Cluster, TardisIndex) {
    let cluster = Cluster::new(ClusterConfig {
        n_workers: 4,
        dfs: DfsConfig {
            cache_bytes: 64 << 20,
            read_latency: Duration::ZERO,
            ..DfsConfig::default()
        },
        ..ClusterConfig::default()
    })
    .unwrap();
    let blocks: Vec<Vec<u8>> = (0..n)
        .collect::<Vec<u64>>()
        .chunks(100)
        .map(|chunk| {
            encode_records(
                &chunk
                    .iter()
                    .map(|&rid| Record::new(rid, series(rid)))
                    .collect::<Vec<_>>(),
            )
        })
        .collect();
    cluster.dfs().write_blocks("data", blocks).unwrap();
    let config = TardisConfig {
        g_max_size: 300,
        l_max_size: 50,
        sampling_fraction: 0.5,
        ..TardisConfig::default()
    };
    let (index, _) = TardisIndex::build(&cluster, "data", &config).unwrap();
    (cluster, index)
}

fn records(range: std::ops::Range<u64>) -> Vec<Record> {
    range.map(|rid| Record::new(rid, series(rid))).collect()
}

#[test]
fn compaction_evicts_retired_blocks_and_releases_pins() {
    let (cluster, mut index) = setup(700);
    index.ingest_batch(&cluster, records(10_000..10_040)).unwrap();
    index.ingest_batch(&cluster, records(10_040..10_070)).unwrap();

    // Warm the cache through real query traffic over base ∪ deltas,
    // including the pin-using batch engines.
    let queries: Vec<TimeSeries> = [5u64, 333, 699, 10_000, 10_069]
        .iter()
        .map(|&rid| series(rid))
        .collect();
    exact_match_batch(&index, &cluster, &queries, true).unwrap();
    knn_batch(&index, &cluster, &queries, 5, KnnStrategy::MultiPartition).unwrap();
    exact_knn_batch(&index, &cluster, &queries, 5).unwrap();
    for q in &queries {
        range_query(&index, &cluster, q, 2.0).unwrap();
    }
    assert_eq!(
        cluster.dfs().total_pins(),
        0,
        "batch engines leaked pins over base ∪ deltas"
    );
    let warm_bytes = cluster.dfs().cache_used_bytes();
    assert!(warm_bytes > 0, "query traffic did not populate the cache");

    // Compact with deferred deletion so the retired set is observable.
    let outcome = index.compact_deferred(&cluster).unwrap();
    assert!(!outcome.retired_files.is_empty());
    assert_eq!(outcome.deltas_folded, 2);

    // Simulate a straggling reader still pinning a retired file: the
    // delete must evict the blocks AND drop the pin, not strand it.
    cluster.dfs().pin_file(&outcome.retired_files[0]);
    assert_eq!(cluster.dfs().total_pins(), 1);
    for file in &outcome.retired_files {
        cluster.dfs().delete_file(file).unwrap();
    }
    assert_eq!(
        cluster.dfs().total_pins(),
        0,
        "deleting a retired file must release its pins"
    );
    let after_bytes = cluster.dfs().cache_used_bytes();
    assert!(
        after_bytes < warm_bytes,
        "retired blocks were not evicted ({after_bytes} >= {warm_bytes} bytes cached)"
    );

    // The post-compaction index answers from the new versioned files.
    for rid in [5u64, 699, 10_000, 10_069] {
        let out = exact_match(&index, &cluster, &series(rid), true).unwrap();
        assert_eq!(out.matches, vec![rid], "rid {rid} lost after compaction");
    }
    exact_match_batch(&index, &cluster, &queries, true).unwrap();
    knn_batch(&index, &cluster, &queries, 5, KnnStrategy::MultiPartition).unwrap();
    assert_eq!(cluster.dfs().total_pins(), 0, "post-compaction batch leaked pins");
}

#[test]
fn repeated_ingest_compact_cycles_do_not_leak_cache() {
    let (cluster, mut index) = setup(400);
    let mut next = 20_000u64;
    let mut peak = 0usize;
    for cycle in 0..4 {
        index.ingest_batch(&cluster, records(next..next + 30)).unwrap();
        next += 30;
        let q = series(next - 1);
        exact_match(&index, &cluster, &q, true).unwrap();
        index.compact(&cluster).unwrap();
        assert_eq!(index.n_deltas(), 0);
        assert_eq!(cluster.dfs().total_pins(), 0, "cycle {cycle} leaked pins");
        // Steady state: the cache holds one generation of files, so its
        // footprint must plateau instead of growing with every cycle.
        let used = cluster.dfs().cache_used_bytes();
        if cycle == 1 {
            peak = used;
        } else if cycle > 1 {
            assert!(
                used <= peak.saturating_mul(2),
                "cache grows across cycles: {used} bytes after cycle {cycle}, {peak} at cycle 1"
            );
        }
    }
    // Everything ingested across all cycles is still exact-matchable.
    for rid in (20_000..next).step_by(17) {
        let out = exact_match(&index, &cluster, &series(rid), true).unwrap();
        assert_eq!(out.matches, vec![rid]);
    }
}
