//! Property-based tests for the TARDIS core building blocks that don't
//! need a full cluster: FFD packing, evaluation metrics, and the
//! converter.

use proptest::prelude::*;
use std::collections::HashSet;
use tardis_core::eval::{error_ratio, recall, Neighbor};
use tardis_core::packing::{bin_lower_bound, ffd_pack};
use tardis_core::Converter;
use tardis_ts::TimeSeries;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn ffd_places_every_item_once(
        sizes in prop::collection::vec(1u64..500, 0..100),
        capacity in 1u64..1000,
    ) {
        let items: Vec<(usize, u64)> = sizes.iter().copied().enumerate().collect();
        let packing = ffd_pack(items, capacity);
        let mut seen = HashSet::new();
        for bin in &packing {
            for &key in bin {
                prop_assert!(seen.insert(key), "item {} placed twice", key);
            }
        }
        prop_assert_eq!(seen.len(), sizes.len());
    }

    #[test]
    fn ffd_respects_capacity_for_fitting_items(
        sizes in prop::collection::vec(1u64..100, 1..80),
        capacity in 100u64..400,
    ) {
        let items: Vec<(usize, u64)> = sizes.iter().copied().enumerate().collect();
        let packing = ffd_pack(items, capacity);
        for bin in &packing {
            let total: u64 = bin.iter().map(|&k| sizes[k]).sum();
            // All items < capacity here, so every bin obeys it.
            prop_assert!(total <= capacity, "bin total {} > {}", total, capacity);
        }
    }

    #[test]
    fn ffd_bin_count_bounded(
        sizes in prop::collection::vec(1u64..100, 1..120),
        capacity in 100u64..300,
    ) {
        let total: u64 = sizes.iter().sum();
        let items: Vec<(usize, u64)> = sizes.iter().copied().enumerate().collect();
        let bins = ffd_pack(items, capacity).len() as u64;
        let lb = bin_lower_bound(total, capacity);
        prop_assert!(bins >= lb);
        // FFD ≤ (3/2)·OPT + 1 and OPT ≥ LB.
        prop_assert!(bins <= lb * 2 + 1, "bins {} vs lb {}", bins, lb);
    }

    #[test]
    fn recall_bounded_and_monotone(
        truth_ids in prop::collection::hash_set(0u64..100, 1..20),
        result_ids in prop::collection::vec(0u64..100, 0..30),
    ) {
        let truth: Vec<Neighbor> = truth_ids
            .iter()
            .enumerate()
            .map(|(i, &rid)| Neighbor { distance: i as f64, rid })
            .collect();
        let result: Vec<(f64, u64)> =
            result_ids.iter().map(|&rid| (0.0, rid)).collect();
        let r = recall(&result, &truth);
        prop_assert!((0.0..=1.0).contains(&r));
        // Adding a guaranteed-hit raises (or keeps) recall.
        let mut better = result.clone();
        better.push((0.0, *truth_ids.iter().next().unwrap()));
        prop_assert!(recall(&better, &truth) >= r - 1e-12);
    }

    #[test]
    fn error_ratio_at_least_one_when_result_worse(
        base in prop::collection::vec(0.1f64..50.0, 1..20),
        inflation in 1.0f64..3.0,
    ) {
        let mut sorted = base.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let truth: Vec<Neighbor> = sorted
            .iter()
            .enumerate()
            .map(|(i, &d)| Neighbor { distance: d, rid: i as u64 })
            .collect();
        let result: Vec<(f64, u64)> = sorted
            .iter()
            .enumerate()
            .map(|(i, &d)| (d * inflation, 1000 + i as u64))
            .collect();
        let er = error_ratio(&result, &truth);
        prop_assert!(er >= 1.0 - 1e-9);
        prop_assert!((er - inflation).abs() < 1e-9);
    }

    #[test]
    fn converter_is_stable_under_tiny_noise_sometimes_and_always_valid(
        values in prop::collection::vec(-3.0f32..3.0, 64),
    ) {
        let mut v = values;
        tardis_ts::z_normalize_in_place(&mut v);
        let conv = Converter::with_params(8, 6);
        let ts = TimeSeries::new(v);
        let sig = conv.sig_of(&ts).unwrap();
        prop_assert_eq!(sig.word_len(), 8);
        prop_assert_eq!(sig.bits(), 6);
        // PAA and signature agree: bucketizing the PAA reproduces the sig.
        let paa = conv.paa_of(&ts).unwrap();
        let word = tardis_isax::SaxWord::from_paa(&paa, 6).unwrap();
        prop_assert_eq!(tardis_isax::SigT::from_sax(&word), sig);
    }
}
