//! End-to-end observability: build + query under one live tracer on a
//! fault-injected cluster, then validate the exported artifacts — the
//! chrome-trace JSON (well-formed, events nested inside their parents)
//! and the merged Prometheus dump (span aggregates next to the cluster's
//! fault/retry counters).

use std::collections::HashMap;
use std::time::Duration;
use tardis_cluster::{
    chrome_trace_json, encode_records, Cluster, ClusterConfig, FaultPlan, RetryPolicy, SpanRecord,
    Tracer,
};
use tardis_core::{
    exact_match_profiled, knn_approximate_profiled, KnnStrategy, TardisConfig, TardisIndex,
};
use tardis_ts::{Record, TimeSeries};

fn series(rid: u64) -> TimeSeries {
    let mut x = rid.wrapping_mul(0x9E3779B97F4A7C15) | 1;
    let mut acc = 0.0f32;
    let mut v = Vec::with_capacity(64);
    for _ in 0..64 {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        acc += ((x >> 40) as f32 / (1u32 << 24) as f32) - 0.5;
        v.push(acc);
    }
    tardis_ts::z_normalize_in_place(&mut v);
    TimeSeries::new(v)
}

/// A faulty-but-recoverable cluster: every operation succeeds after
/// retries, and the injected faults are visible in the metrics.
fn faulty_cluster() -> Cluster {
    Cluster::new(ClusterConfig {
        n_workers: 4,
        faults: Some(FaultPlan {
            seed: 0x0B5E_11A8,
            block_read_fail_p: 0.3,
            task_fail_p: 0.1,
            ..FaultPlan::default()
        }),
        retry: RetryPolicy {
            max_attempts: 64,
            backoff_base: Duration::ZERO,
            backoff_cap: Duration::ZERO,
            ..RetryPolicy::default()
        },
        ..ClusterConfig::default()
    })
    .unwrap()
}

fn write_data(cluster: &Cluster, n: u64) {
    let blocks: Vec<Vec<u8>> = (0..n)
        .collect::<Vec<u64>>()
        .chunks(100)
        .map(|chunk| {
            encode_records(
                &chunk
                    .iter()
                    .map(|&rid| Record::new(rid, series(rid)))
                    .collect::<Vec<_>>(),
            )
        })
        .collect();
    cluster.dfs().write_blocks("data", blocks).unwrap();
}

/// Builds and queries under one tracer; returns the cluster and tracer
/// with a full workload recorded.
fn traced_workload() -> (Cluster, Tracer) {
    let cluster = faulty_cluster();
    write_data(&cluster, 1_000);
    let config = TardisConfig {
        g_max_size: 200,
        l_max_size: 50,
        sampling_fraction: 0.5,
        ..TardisConfig::default()
    };
    let tracer = Tracer::new();
    let (index, _) = TardisIndex::build_profiled(&cluster, "data", &config, &tracer).unwrap();
    let (out, _) = exact_match_profiled(&index, &cluster, &series(42), true, &tracer).unwrap();
    assert_eq!(out.matches, vec![42]);
    for strategy in KnnStrategy::ALL {
        let (ans, _) =
            knn_approximate_profiled(&index, &cluster, &series(7), 5, strategy, &tracer).unwrap();
        assert_eq!(ans.neighbors[0].1, 7, "{strategy:?}");
    }
    (cluster, tracer)
}

// ---- A minimal hand-rolled JSON validator (no serde in the tree). ----

struct Json<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Json<'a> {
    fn new(text: &'a str) -> Json<'a> {
        Json {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, c: u8) -> Result<(), String> {
        self.skip_ws();
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", c as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<(), String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string(),
            Some(b't') => self.literal("true"),
            Some(b'f') => self.literal("false"),
            Some(b'n') => self.literal("null"),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!("unexpected {other:?} at byte {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<(), String> {
        self.eat(b'{')?;
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.string()?;
            self.eat(b':')?;
            self.value()?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(());
                }
                other => return Err(format!("bad object at {other:?}, byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<(), String> {
        self.eat(b'[')?;
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.value()?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(());
                }
                other => return Err(format!("bad array at {other:?}, byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<(), String> {
        self.eat(b'"')?;
        while let Some(c) = self.peek() {
            self.pos += 1;
            match c {
                b'"' => return Ok(()),
                b'\\' => self.pos += 1, // skip the escaped byte
                _ => {}
            }
        }
        Err("unterminated string".into())
    }

    fn number(&mut self) -> Result<(), String> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
        ) {
            self.pos += 1;
        }
        if self.pos == start {
            Err(format!("empty number at byte {start}"))
        } else {
            Ok(())
        }
    }

    /// Validates the whole input as one JSON value with no trailing junk.
    fn validate(mut self) -> Result<(), String> {
        self.literal_check()?;
        Ok(())
    }

    fn literal_check(&mut self) -> Result<(), String> {
        self.value()?;
        self.skip_ws();
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            Err(format!("trailing bytes after value at {}", self.pos))
        }
    }

    fn literal(&mut self, lit: &str) -> Result<(), String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(format!("expected literal {lit} at byte {}", self.pos))
        }
    }
}

#[test]
fn chrome_trace_is_wellformed_json_with_expected_events() {
    let (_cluster, tracer) = traced_workload();
    let json = chrome_trace_json(&tracer.records());
    Json::new(&json).validate().expect("well-formed JSON");
    // The workload's phases all appear as "X" complete events.
    for name in [
        "\"name\":\"build\"",
        "\"name\":\"sample\"",
        "\"name\":\"skeleton\"",
        "\"name\":\"pack\"",
        "\"name\":\"read-convert\"",
        "\"name\":\"shuffle\"",
        "\"name\":\"local-build\"",
        "\"name\":\"partition\"",
        "\"name\":\"exact-match\"",
        "\"name\":\"knn\"",
        "\"name\":\"route\"",
        "\"name\":\"load\"",
        "\"name\":\"refine\"",
        "\"ph\":\"X\"",
    ] {
        assert!(json.contains(name), "missing {name} in trace");
    }
}

#[test]
fn span_records_nest_inside_their_parents() {
    let (_cluster, tracer) = traced_workload();
    let records = tracer.records();
    assert!(records.len() > 20, "expected a rich trace");
    let by_id: HashMap<u32, &SpanRecord> = records.iter().map(|r| (r.id, r)).collect();
    let mut nested = 0usize;
    for r in &records {
        let Some(pid) = r.parent else { continue };
        let parent = by_id
            .get(&pid)
            .unwrap_or_else(|| panic!("span {} has unknown parent {pid}", r.id));
        assert!(
            r.start_us >= parent.start_us
                && r.start_us + r.dur_us <= parent.start_us + parent.dur_us,
            "span {} [{}, {}] escapes parent {} [{}, {}]",
            r.name,
            r.start_us,
            r.start_us + r.dur_us,
            parent.name,
            parent.start_us,
            parent.start_us + parent.dur_us,
        );
        nested += 1;
    }
    assert!(nested > 10, "expected many nested spans, got {nested}");
    // Per-partition local-build spans ran on worker threads, distinct
    // from the thread that opened the build root.
    let root_thread = records.iter().find(|r| r.name == "build").unwrap().thread;
    assert!(
        records
            .iter()
            .any(|r| r.name == "partition" && r.thread != root_thread),
        "partition spans should run on pool workers"
    );
}

#[test]
fn prometheus_dump_merges_cluster_and_span_counters() {
    let (cluster, tracer) = traced_workload();
    let aggregates = tracer.aggregates();
    let text = cluster.metrics().snapshot().prometheus_text(Some(&aggregates));
    // The fault/retry counters from the chaos substrate are present and
    // nonzero: the seeded plan injected faults that retries masked.
    let counter = |name: &str| -> u64 {
        text.lines()
            .find(|l| l.starts_with(name) && !l.starts_with('#'))
            .and_then(|l| l.rsplit(' ').next())
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| panic!("missing counter {name} in:\n{text}"))
    };
    assert!(counter("tardis_faults_injected") > 0, "no faults injected");
    assert!(
        counter("tardis_task_retries") + counter("tardis_block_read_retries") > 0,
        "no retries recorded"
    );
    // Span aggregates appear with both count and total-time series.
    assert!(text.contains("tardis_span_count{span=\"build\"} 1"));
    assert!(text.contains("tardis_span_count{span=\"knn\"}"));
    assert!(text.contains("tardis_span_total_us{span=\"load\"}"));
    // Each metric family is typed exactly once.
    let headers = text
        .lines()
        .filter(|l| *l == "# TYPE tardis_span_count counter")
        .count();
    assert_eq!(headers, 1);
}
