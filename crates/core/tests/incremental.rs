//! Incremental insert: appended records become queryable, counts stay
//! consistent, Bloom filters keep their no-false-negative guarantee, and
//! a saved-then-reopened index still sees the appends.

use tardis_cluster::{encode_records, Cluster, ClusterConfig};
use tardis_core::{exact_match, knn_approximate, KnnStrategy, TardisConfig, TardisIndex};
use tardis_ts::{Record, TimeSeries};

fn series(rid: u64) -> TimeSeries {
    let mut x = rid.wrapping_mul(0x9E3779B97F4A7C15) | 1;
    let mut acc = 0.0f32;
    let mut v = Vec::with_capacity(64);
    for _ in 0..64 {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        acc += ((x >> 40) as f32 / (1u32 << 24) as f32) - 0.5;
        v.push(acc);
    }
    tardis_ts::z_normalize_in_place(&mut v);
    TimeSeries::new(v)
}

fn setup(n: u64) -> (Cluster, TardisIndex) {
    let cluster = Cluster::new(ClusterConfig {
        n_workers: 4,
        ..ClusterConfig::default()
    })
    .unwrap();
    let blocks: Vec<Vec<u8>> = (0..n)
        .collect::<Vec<u64>>()
        .chunks(100)
        .map(|chunk| {
            encode_records(
                &chunk
                    .iter()
                    .map(|&rid| Record::new(rid, series(rid)))
                    .collect::<Vec<_>>(),
            )
        })
        .collect();
    cluster.dfs().write_blocks("data", blocks).unwrap();
    let config = TardisConfig {
        g_max_size: 300,
        l_max_size: 50,
        sampling_fraction: 0.5,
        ..TardisConfig::default()
    };
    let (index, _) = TardisIndex::build(&cluster, "data", &config).unwrap();
    (cluster, index)
}

#[test]
fn inserted_records_become_exact_matchable() {
    let (cluster, mut index) = setup(800);
    // New records with fresh ids beyond the original dataset.
    let fresh: Vec<Record> = (10_000..10_040)
        .map(|rid| Record::new(rid, series(rid)))
        .collect();
    // Before: absent.
    for r in &fresh {
        let out = exact_match(&index, &cluster, &r.ts, true).unwrap();
        assert!(out.matches.is_empty(), "rid {} present early", r.rid);
    }
    index.insert_batch(&cluster, fresh.clone()).unwrap();
    // After: every insert found, Bloom filters included them.
    for r in &fresh {
        let out = exact_match(&index, &cluster, &r.ts, true).unwrap();
        assert_eq!(out.matches, vec![r.rid]);
        assert!(!out.bloom_rejected, "bloom false negative after insert");
    }
    // Old records unaffected.
    for rid in [0u64, 400, 799] {
        let out = exact_match(&index, &cluster, &series(rid), true).unwrap();
        assert_eq!(out.matches, vec![rid]);
    }
}

#[test]
fn counts_and_knn_reflect_inserts() {
    let (cluster, mut index) = setup(600);
    let before: u64 = index.partitions().iter().map(|p| p.n_records).sum();
    let fresh: Vec<Record> = (20_000..20_025)
        .map(|rid| Record::new(rid, series(rid)))
        .collect();
    index.insert_batch(&cluster, fresh).unwrap();
    let after: u64 = index.partitions().iter().map(|p| p.n_records).sum();
    assert_eq!(after, before + 25);
    // A kNN query for an inserted record finds it first.
    let q = series(20_010);
    let ans = knn_approximate(&index, &cluster, &q, 5, KnnStrategy::OnePartition).unwrap();
    assert_eq!(ans.neighbors[0].1, 20_010);
    assert!(ans.neighbors[0].0 < 1e-6);
}

#[test]
fn inserts_survive_save_and_reopen() {
    let (cluster, mut index) = setup(500);
    index
        .insert_batch(
            &cluster,
            vec![Record::new(30_000, series(30_000))],
        )
        .unwrap();
    index.save(&cluster, "manifest").unwrap();
    let reopened = TardisIndex::open(&cluster, "manifest").unwrap();
    let out = exact_match(&reopened, &cluster, &series(30_000), true).unwrap();
    assert_eq!(out.matches, vec![30_000]);
}

#[test]
fn unclustered_index_rejects_inserts() {
    let cluster = Cluster::new(ClusterConfig {
        n_workers: 2,
        ..ClusterConfig::default()
    })
    .unwrap();
    let blocks: Vec<Vec<u8>> = (0..300u64)
        .collect::<Vec<u64>>()
        .chunks(100)
        .map(|chunk| {
            encode_records(
                &chunk
                    .iter()
                    .map(|&rid| Record::new(rid, series(rid)))
                    .collect::<Vec<_>>(),
            )
        })
        .collect();
    cluster.dfs().write_blocks("data", blocks).unwrap();
    let config = TardisConfig {
        clustered: false,
        g_max_size: 150,
        l_max_size: 40,
        sampling_fraction: 0.5,
        ..TardisConfig::default()
    };
    let (mut index, _) = TardisIndex::build(&cluster, "data", &config).unwrap();
    assert!(index
        .insert_batch(&cluster, vec![Record::new(1_000, series(1_000))])
        .is_err());
}

#[test]
fn empty_insert_is_a_noop() {
    let (cluster, mut index) = setup(300);
    let before: u64 = index.partitions().iter().map(|p| p.n_records).sum();
    index.insert_batch(&cluster, Vec::new()).unwrap();
    let after: u64 = index.partitions().iter().map(|p| p.n_records).sum();
    assert_eq!(before, after);
}
