//! Incremental insert: appended records become queryable, counts stay
//! consistent, Bloom filters keep their no-false-negative guarantee, and
//! a saved-then-reopened index still sees the appends. The second half
//! covers the continuous-ingest path: sealed delta partitions served
//! alongside the base by every query path, compaction, and the
//! save → reopen → ingest-more round trip.

use tardis_cluster::{encode_records, Cluster, ClusterConfig};
use tardis_core::{
    exact_knn, exact_match, knn_approximate, range_query, KnnStrategy, TardisConfig, TardisIndex,
};
use tardis_ts::{Record, TimeSeries};

fn series(rid: u64) -> TimeSeries {
    let mut x = rid.wrapping_mul(0x9E3779B97F4A7C15) | 1;
    let mut acc = 0.0f32;
    let mut v = Vec::with_capacity(64);
    for _ in 0..64 {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        acc += ((x >> 40) as f32 / (1u32 << 24) as f32) - 0.5;
        v.push(acc);
    }
    tardis_ts::z_normalize_in_place(&mut v);
    TimeSeries::new(v)
}

fn setup(n: u64) -> (Cluster, TardisIndex) {
    let cluster = Cluster::new(ClusterConfig {
        n_workers: 4,
        ..ClusterConfig::default()
    })
    .unwrap();
    let blocks: Vec<Vec<u8>> = (0..n)
        .collect::<Vec<u64>>()
        .chunks(100)
        .map(|chunk| {
            encode_records(
                &chunk
                    .iter()
                    .map(|&rid| Record::new(rid, series(rid)))
                    .collect::<Vec<_>>(),
            )
        })
        .collect();
    cluster.dfs().write_blocks("data", blocks).unwrap();
    let config = TardisConfig {
        g_max_size: 300,
        l_max_size: 50,
        sampling_fraction: 0.5,
        ..TardisConfig::default()
    };
    let (index, _) = TardisIndex::build(&cluster, "data", &config).unwrap();
    (cluster, index)
}

#[test]
fn inserted_records_become_exact_matchable() {
    let (cluster, mut index) = setup(800);
    // New records with fresh ids beyond the original dataset.
    let fresh: Vec<Record> = (10_000..10_040)
        .map(|rid| Record::new(rid, series(rid)))
        .collect();
    // Before: absent.
    for r in &fresh {
        let out = exact_match(&index, &cluster, &r.ts, true).unwrap();
        assert!(out.matches.is_empty(), "rid {} present early", r.rid);
    }
    index.insert_batch(&cluster, fresh.clone()).unwrap();
    // After: every insert found, Bloom filters included them.
    for r in &fresh {
        let out = exact_match(&index, &cluster, &r.ts, true).unwrap();
        assert_eq!(out.matches, vec![r.rid]);
        assert!(!out.bloom_rejected, "bloom false negative after insert");
    }
    // Old records unaffected.
    for rid in [0u64, 400, 799] {
        let out = exact_match(&index, &cluster, &series(rid), true).unwrap();
        assert_eq!(out.matches, vec![rid]);
    }
}

#[test]
fn counts_and_knn_reflect_inserts() {
    let (cluster, mut index) = setup(600);
    let before: u64 = index.partitions().iter().map(|p| p.n_records).sum();
    let fresh: Vec<Record> = (20_000..20_025)
        .map(|rid| Record::new(rid, series(rid)))
        .collect();
    index.insert_batch(&cluster, fresh).unwrap();
    let after: u64 = index.partitions().iter().map(|p| p.n_records).sum();
    assert_eq!(after, before + 25);
    // A kNN query for an inserted record finds it first.
    let q = series(20_010);
    let ans = knn_approximate(&index, &cluster, &q, 5, KnnStrategy::OnePartition).unwrap();
    assert_eq!(ans.neighbors[0].1, 20_010);
    assert!(ans.neighbors[0].0 < 1e-6);
}

#[test]
fn inserts_survive_save_and_reopen() {
    let (cluster, mut index) = setup(500);
    index
        .insert_batch(
            &cluster,
            vec![Record::new(30_000, series(30_000))],
        )
        .unwrap();
    index.save(&cluster, "manifest").unwrap();
    let reopened = TardisIndex::open(&cluster, "manifest").unwrap();
    let out = exact_match(&reopened, &cluster, &series(30_000), true).unwrap();
    assert_eq!(out.matches, vec![30_000]);
}

#[test]
fn unclustered_index_rejects_inserts() {
    let cluster = Cluster::new(ClusterConfig {
        n_workers: 2,
        ..ClusterConfig::default()
    })
    .unwrap();
    let blocks: Vec<Vec<u8>> = (0..300u64)
        .collect::<Vec<u64>>()
        .chunks(100)
        .map(|chunk| {
            encode_records(
                &chunk
                    .iter()
                    .map(|&rid| Record::new(rid, series(rid)))
                    .collect::<Vec<_>>(),
            )
        })
        .collect();
    cluster.dfs().write_blocks("data", blocks).unwrap();
    let config = TardisConfig {
        clustered: false,
        g_max_size: 150,
        l_max_size: 40,
        sampling_fraction: 0.5,
        ..TardisConfig::default()
    };
    let (mut index, _) = TardisIndex::build(&cluster, "data", &config).unwrap();
    assert!(index
        .insert_batch(&cluster, vec![Record::new(1_000, series(1_000))])
        .is_err());
}

#[test]
fn empty_insert_is_a_noop() {
    let (cluster, mut index) = setup(300);
    let before: u64 = index.partitions().iter().map(|p| p.n_records).sum();
    index.insert_batch(&cluster, Vec::new()).unwrap();
    let after: u64 = index.partitions().iter().map(|p| p.n_records).sum();
    assert_eq!(before, after);
}

// ---------------------------------------------------------------------
// Continuous ingest: sealed delta partitions.
// ---------------------------------------------------------------------

fn records(range: std::ops::Range<u64>) -> Vec<Record> {
    range.map(|rid| Record::new(rid, series(rid))).collect()
}

/// An oracle index rebuilt from scratch over base + ingested rids: the
/// exact query paths (exact match, range, exact kNN) must answer
/// identically whether the records live in the base or in deltas.
fn oracle(base: u64, extra: &[std::ops::Range<u64>]) -> (Cluster, TardisIndex) {
    let cluster = Cluster::new(ClusterConfig {
        n_workers: 4,
        ..ClusterConfig::default()
    })
    .unwrap();
    let mut rids: Vec<u64> = (0..base).collect();
    for r in extra {
        rids.extend(r.clone());
    }
    let blocks: Vec<Vec<u8>> = rids
        .chunks(100)
        .map(|chunk| {
            encode_records(
                &chunk
                    .iter()
                    .map(|&rid| Record::new(rid, series(rid)))
                    .collect::<Vec<_>>(),
            )
        })
        .collect();
    cluster.dfs().write_blocks("data", blocks).unwrap();
    let config = TardisConfig {
        g_max_size: 300,
        l_max_size: 50,
        sampling_fraction: 0.5,
        ..TardisConfig::default()
    };
    let (index, _) = TardisIndex::build(&cluster, "data", &config).unwrap();
    (cluster, index)
}

#[test]
fn ingested_deltas_serve_every_query_path() {
    let (cluster, mut index) = setup(800);
    index.ingest_batch(&cluster, records(10_000..10_030)).unwrap();
    index.ingest_batch(&cluster, records(10_030..10_060)).unwrap();
    assert_eq!(index.n_deltas(), 2);
    let all_ingested = 10_000..10_060;
    let (o_cluster, o_index) = oracle(800, std::slice::from_ref(&all_ingested));

    for rid in [0u64, 421, 799, 10_000, 10_029, 10_030, 10_059] {
        let q = series(rid);
        // Exact match: present in exactly one of base / deltas.
        let out = exact_match(&index, &cluster, &q, true).unwrap();
        assert_eq!(out.matches, vec![rid], "exact rid {rid}");
        assert!(!out.bloom_rejected, "bloom false negative on delta rid {rid}");
        // Approximate kNN: every strategy must surface the stored record
        // itself (distance 0) regardless of which layer holds it.
        for strategy in [
            KnnStrategy::TargetNode,
            KnnStrategy::OnePartition,
            KnnStrategy::MultiPartition,
        ] {
            let ans = knn_approximate(&index, &cluster, &q, 5, strategy).unwrap();
            assert_eq!(ans.neighbors[0].1, rid, "{strategy:?} rid {rid}");
            assert!(ans.neighbors[0].0 < 1e-6);
        }
        // Range and exact kNN: byte-identical to the rebuilt oracle —
        // these answers are a pure function of the stored data.
        let got = range_query(&index, &cluster, &q, 2.0).unwrap();
        let want = range_query(&o_index, &o_cluster, &q, 2.0).unwrap();
        assert_eq!(got.matches, want.matches, "range rid {rid}");
        let got = exact_knn(&index, &cluster, &q, 7).unwrap();
        let want = exact_knn(&o_index, &o_cluster, &q, 7).unwrap();
        assert_eq!(got.neighbors, want.neighbors, "exact-knn rid {rid}");
    }
    // Absent queries stay absent (deltas widen, never pollute, answers).
    let absent = series(77_777);
    assert!(exact_match(&index, &cluster, &absent, true)
        .unwrap()
        .matches
        .is_empty());
}

#[test]
fn compaction_folds_deltas_and_preserves_exact_answers() {
    let (cluster, mut index) = setup(600);
    index.ingest_batch(&cluster, records(40_000..40_025)).unwrap();
    index.ingest_batch(&cluster, records(40_025..40_045)).unwrap();
    let version_before = index.manifest_version();
    let probes: Vec<TimeSeries> = [3u64, 599, 40_000, 40_024, 40_044]
        .iter()
        .map(|&rid| series(rid))
        .collect();
    let before: Vec<_> = probes
        .iter()
        .map(|q| {
            (
                exact_match(&index, &cluster, q, true).unwrap().matches,
                range_query(&index, &cluster, q, 2.5).unwrap().matches,
                exact_knn(&index, &cluster, q, 5).unwrap().neighbors,
            )
        })
        .collect();

    let outcome = index.compact(&cluster).unwrap();
    assert_eq!(outcome.deltas_folded, 2);
    assert_eq!(outcome.folded_records, 45);
    assert!(outcome.partitions_rewritten >= 1);
    assert_eq!(index.n_deltas(), 0);
    assert_eq!(index.manifest_version(), version_before + 1);

    let after: Vec<_> = probes
        .iter()
        .map(|q| {
            (
                exact_match(&index, &cluster, q, true).unwrap().matches,
                range_query(&index, &cluster, q, 2.5).unwrap().matches,
                exact_knn(&index, &cluster, q, 5).unwrap().neighbors,
            )
        })
        .collect();
    assert_eq!(before, after, "exact answers changed across compaction");

    // Compacting again is a no-op.
    let outcome = index.compact(&cluster).unwrap();
    assert_eq!(outcome.deltas_folded, 0);
    assert_eq!(index.manifest_version(), version_before + 1);
}

#[test]
fn ingest_survives_save_reopen_ingest_more() {
    let (cluster, mut index) = setup(500);
    index.ingest_batch(&cluster, records(50_000..50_020)).unwrap();
    index.save_atomic(&cluster, "manifest").unwrap();

    let mut reopened = TardisIndex::open(&cluster, "manifest").unwrap();
    assert_eq!(reopened.n_deltas(), 1);
    assert_eq!(reopened.deltas(), index.deltas());
    // Ingest more on the reopened index: delta ids keep increasing.
    let meta = reopened
        .ingest_batch(&cluster, records(50_020..50_035))
        .unwrap();
    assert!(meta.delta_id > reopened.deltas()[0].delta_id);
    reopened.save_atomic(&cluster, "manifest").unwrap();

    let third = TardisIndex::open(&cluster, "manifest").unwrap();
    assert_eq!(third.n_deltas(), 2);
    for rid in [50_000u64, 50_019, 50_020, 50_034, 7] {
        let q = series(rid);
        let out = exact_match(&third, &cluster, &q, true).unwrap();
        assert_eq!(out.matches, vec![rid], "rid {rid} after reopen");
        let ans = knn_approximate(&third, &cluster, &q, 3, KnnStrategy::MultiPartition).unwrap();
        assert_eq!(ans.neighbors[0].1, rid);
        let rng = range_query(&third, &cluster, &q, 0.1).unwrap();
        assert!(rng.matches.iter().any(|nb| nb.rid == rid));
        let ek = exact_knn(&third, &cluster, &q, 3).unwrap();
        assert_eq!(ek.neighbors[0].rid, rid);
    }
}

#[test]
fn ingest_rejects_empty_and_unclustered() {
    let (cluster, mut index) = setup(300);
    assert!(index.ingest_batch(&cluster, Vec::new()).is_err());

    let cluster2 = Cluster::new(ClusterConfig {
        n_workers: 2,
        ..ClusterConfig::default()
    })
    .unwrap();
    let blocks: Vec<Vec<u8>> = (0..200u64)
        .collect::<Vec<u64>>()
        .chunks(100)
        .map(|chunk| {
            encode_records(
                &chunk
                    .iter()
                    .map(|&rid| Record::new(rid, series(rid)))
                    .collect::<Vec<_>>(),
            )
        })
        .collect();
    cluster2.dfs().write_blocks("data", blocks).unwrap();
    let config = TardisConfig {
        clustered: false,
        g_max_size: 150,
        l_max_size: 40,
        sampling_fraction: 0.5,
        ..TardisConfig::default()
    };
    let (mut unclustered, _) = TardisIndex::build(&cluster2, "data", &config).unwrap();
    assert!(unclustered
        .ingest_batch(&cluster2, records(1_000..1_001))
        .is_err());
}
