//! Integration tests for the ground-truth engines (§VI-C2): the parallel
//! brute-force scan and the paper's threshold-filter shortcut must agree.

use tardis_cluster::{encode_records, Cluster, ClusterConfig};
use tardis_core::eval::{ground_truth_knn, ground_truth_knn_filtered};
use tardis_core::{TardisConfig, TardisIndex};
use tardis_ts::{squared_euclidean, Record, TimeSeries};

fn series(rid: u64) -> TimeSeries {
    let mut x = rid.wrapping_mul(0x9E3779B97F4A7C15) | 1;
    let mut acc = 0.0f32;
    let mut v = Vec::with_capacity(64);
    for _ in 0..64 {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        acc += ((x >> 40) as f32 / (1u32 << 24) as f32) - 0.5;
        v.push(acc);
    }
    tardis_ts::z_normalize_in_place(&mut v);
    TimeSeries::new(v)
}

fn setup(n: u64) -> (Cluster, TardisIndex) {
    let cluster = Cluster::new(ClusterConfig {
        n_workers: 4,
        ..ClusterConfig::default()
    })
    .unwrap();
    let blocks: Vec<Vec<u8>> = (0..n)
        .collect::<Vec<u64>>()
        .chunks(100)
        .map(|chunk| {
            encode_records(
                &chunk
                    .iter()
                    .map(|&rid| Record::new(rid, series(rid)))
                    .collect::<Vec<_>>(),
            )
        })
        .collect();
    cluster.dfs().write_blocks("data", blocks).unwrap();
    let config = TardisConfig {
        g_max_size: 300,
        l_max_size: 50,
        sampling_fraction: 0.5,
        ..TardisConfig::default()
    };
    let (index, _) = TardisIndex::build(&cluster, "data", &config).unwrap();
    (cluster, index)
}

#[test]
fn brute_force_matches_reference() {
    let (cluster, _) = setup(500);
    let q = series(42);
    let got = ground_truth_knn(&cluster, "data", &q, 10).unwrap();
    // Sequential reference.
    let mut want: Vec<(f64, u64)> = (0..500)
        .map(|rid| {
            (
                squared_euclidean(q.values(), series(rid).values()).sqrt(),
                rid,
            )
        })
        .collect();
    want.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
    want.truncate(10);
    assert_eq!(got.len(), 10);
    for (g, (d, rid)) in got.iter().zip(&want) {
        assert_eq!(g.rid, *rid);
        assert!((g.distance - d).abs() < 1e-9);
    }
}

#[test]
fn filtered_matches_brute_force_with_generous_threshold() {
    let (cluster, index) = setup(800);
    for qrid in [3u64, 400, 799] {
        let q = series(qrid);
        let brute = ground_truth_knn(&cluster, "data", &q, 8).unwrap();
        // The paper's threshold (7.5) is generous for z-normalized
        // length-64 walks.
        let filtered =
            ground_truth_knn_filtered(&index, &cluster, "data", &q, 8, 7.5).unwrap();
        assert_eq!(brute.len(), filtered.len(), "qrid {qrid}");
        for (a, b) in brute.iter().zip(&filtered) {
            assert_eq!(a.rid, b.rid, "qrid {qrid}");
            assert!((a.distance - b.distance).abs() < 1e-9);
        }
    }
}

#[test]
fn filtered_falls_back_when_threshold_too_tight() {
    let (cluster, index) = setup(400);
    let q = series(7);
    // Threshold so tight almost nothing survives → fallback to brute
    // force, still correct.
    let filtered = ground_truth_knn_filtered(&index, &cluster, "data", &q, 12, 1e-6).unwrap();
    let brute = ground_truth_knn(&cluster, "data", &q, 12).unwrap();
    assert_eq!(filtered.len(), 12);
    for (a, b) in brute.iter().zip(&filtered) {
        assert_eq!(a.rid, b.rid);
    }
}

#[test]
fn k_zero_and_k_over_dataset() {
    let (cluster, index) = setup(200);
    let q = series(0);
    assert!(ground_truth_knn(&cluster, "data", &q, 0).unwrap().is_empty());
    let all = ground_truth_knn(&cluster, "data", &q, 500).unwrap();
    assert_eq!(all.len(), 200, "k beyond dataset returns everything");
    let filtered = ground_truth_knn_filtered(&index, &cluster, "data", &q, 0, 7.5).unwrap();
    assert!(filtered.is_empty());
}

#[test]
fn ground_truth_is_sorted_ascending() {
    let (cluster, _) = setup(300);
    let got = ground_truth_knn(&cluster, "data", &series(9), 25).unwrap();
    for w in got.windows(2) {
        assert!(w[0].distance <= w[1].distance);
    }
    // Self first at distance 0.
    assert_eq!(got[0].rid, 9);
    assert!(got[0].distance < 1e-9);
}
