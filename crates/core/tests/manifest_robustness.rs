//! Robustness of the persistence parsers: truncating or corrupting a
//! manifest / global-index image at *any* offset must produce an error,
//! never a panic or a silently wrong index.

use tardis_cluster::{encode_records, Cluster, ClusterConfig};
use tardis_core::{TardisConfig, TardisG, TardisIndex};
use tardis_ts::{Record, TimeSeries};

fn series(rid: u64) -> TimeSeries {
    let mut x = rid.wrapping_mul(0x9E3779B97F4A7C15) | 1;
    let mut acc = 0.0f32;
    let mut v = Vec::with_capacity(64);
    for _ in 0..64 {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        acc += ((x >> 40) as f32 / (1u32 << 24) as f32) - 0.5;
        v.push(acc);
    }
    tardis_ts::z_normalize_in_place(&mut v);
    TimeSeries::new(v)
}

fn setup() -> (Cluster, TardisIndex) {
    let cluster = Cluster::new(ClusterConfig {
        n_workers: 2,
        ..ClusterConfig::default()
    })
    .unwrap();
    let blocks: Vec<Vec<u8>> = (0..400u64)
        .collect::<Vec<u64>>()
        .chunks(100)
        .map(|chunk| {
            encode_records(
                &chunk
                    .iter()
                    .map(|&rid| Record::new(rid, series(rid)))
                    .collect::<Vec<_>>(),
            )
        })
        .collect();
    cluster.dfs().write_blocks("data", blocks).unwrap();
    let config = TardisConfig {
        g_max_size: 150,
        l_max_size: 30,
        sampling_fraction: 0.5,
        ..TardisConfig::default()
    };
    let (index, _) = TardisIndex::build(&cluster, "data", &config).unwrap();
    (cluster, index)
}

#[test]
fn global_from_bytes_never_panics_on_any_truncation() {
    let (_cluster, index) = setup();
    let bytes = index.global().to_bytes();
    // Every strict prefix must be rejected as an error (not panic, and
    // not silently accepted).
    for cut in 0..bytes.len() {
        let result = std::panic::catch_unwind(|| TardisG::from_bytes(&bytes[..cut]));
        let outcome = result.unwrap_or_else(|_| panic!("panicked at cut {cut}"));
        assert!(outcome.is_err(), "truncation at {cut} accepted");
    }
    // The full image still parses.
    assert!(TardisG::from_bytes(&bytes).is_ok());
}

#[test]
fn global_from_bytes_detects_every_single_byte_flip() {
    let (_cluster, index) = setup();
    let bytes = index.global().to_bytes();
    // The image carries an FNV checksum: any single-byte corruption must
    // be rejected, never panic and never parse.
    for pos in (0..bytes.len()).step_by(3) {
        let mut corrupted = bytes.clone();
        corrupted[pos] ^= 0x5A;
        let result = std::panic::catch_unwind(|| TardisG::from_bytes(&corrupted));
        let outcome = result.unwrap_or_else(|_| panic!("panicked at byte {pos}"));
        assert!(outcome.is_err(), "corruption at byte {pos} accepted");
    }
}

#[test]
fn open_never_panics_on_truncated_manifest() {
    let (cluster, index) = setup();
    index.save(&cluster, "m").unwrap();
    let blocks = cluster.dfs().list_blocks("m").unwrap();
    let bytes = cluster.dfs().read_block(&blocks[0]).unwrap();
    for cut in (0..bytes.len()).step_by(11) {
        cluster.dfs().delete_file("m").unwrap();
        cluster.dfs().append_block("m", &bytes[..cut]).unwrap();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            TardisIndex::open(&cluster, "m")
        }));
        let outcome = result.unwrap_or_else(|_| panic!("panicked at cut {cut}"));
        assert!(outcome.is_err(), "truncation at {cut} accepted");
    }
}
