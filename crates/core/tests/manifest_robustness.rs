//! Robustness of the persistence parsers: truncating or corrupting a
//! manifest / global-index image at *any* offset must produce an error,
//! never a panic or a silently wrong index.

use tardis_cluster::{encode_records, Cluster, ClusterConfig};
use tardis_core::{TardisConfig, TardisG, TardisIndex};
use tardis_ts::{Record, TimeSeries};

fn series(rid: u64) -> TimeSeries {
    let mut x = rid.wrapping_mul(0x9E3779B97F4A7C15) | 1;
    let mut acc = 0.0f32;
    let mut v = Vec::with_capacity(64);
    for _ in 0..64 {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        acc += ((x >> 40) as f32 / (1u32 << 24) as f32) - 0.5;
        v.push(acc);
    }
    tardis_ts::z_normalize_in_place(&mut v);
    TimeSeries::new(v)
}

fn setup() -> (Cluster, TardisIndex) {
    let cluster = Cluster::new(ClusterConfig {
        n_workers: 2,
        ..ClusterConfig::default()
    })
    .unwrap();
    let blocks: Vec<Vec<u8>> = (0..400u64)
        .collect::<Vec<u64>>()
        .chunks(100)
        .map(|chunk| {
            encode_records(
                &chunk
                    .iter()
                    .map(|&rid| Record::new(rid, series(rid)))
                    .collect::<Vec<_>>(),
            )
        })
        .collect();
    cluster.dfs().write_blocks("data", blocks).unwrap();
    let config = TardisConfig {
        g_max_size: 150,
        l_max_size: 30,
        sampling_fraction: 0.5,
        ..TardisConfig::default()
    };
    let (index, _) = TardisIndex::build(&cluster, "data", &config).unwrap();
    (cluster, index)
}

#[test]
fn global_from_bytes_never_panics_on_any_truncation() {
    let (_cluster, index) = setup();
    let bytes = index.global().to_bytes();
    // Every strict prefix must be rejected as an error (not panic, and
    // not silently accepted).
    for cut in 0..bytes.len() {
        let result = std::panic::catch_unwind(|| TardisG::from_bytes(&bytes[..cut]));
        let outcome = result.unwrap_or_else(|_| panic!("panicked at cut {cut}"));
        assert!(outcome.is_err(), "truncation at {cut} accepted");
    }
    // The full image still parses.
    assert!(TardisG::from_bytes(&bytes).is_ok());
}

#[test]
fn global_from_bytes_detects_every_single_byte_flip() {
    let (_cluster, index) = setup();
    let bytes = index.global().to_bytes();
    // The image carries an FNV checksum: any single-byte corruption must
    // be rejected, never panic and never parse.
    for pos in (0..bytes.len()).step_by(3) {
        let mut corrupted = bytes.clone();
        corrupted[pos] ^= 0x5A;
        let result = std::panic::catch_unwind(|| TardisG::from_bytes(&corrupted));
        let outcome = result.unwrap_or_else(|_| panic!("panicked at byte {pos}"));
        assert!(outcome.is_err(), "corruption at byte {pos} accepted");
    }
}

// ---------------------------------------------------------------------------
// Adversarial manifest decoding (proptest): any byte-level damage —
// truncation, bit flips, stale magic, wholesale garbage — must yield a
// codec error. Never a panic, never an OOM-sized allocation, never a
// silently misparsed index. Both the legacy (magic-less) and the `TDM2`
// layouts are covered.
// ---------------------------------------------------------------------------

use proptest::prelude::*;
use std::sync::OnceLock;

/// Built once: (saved `TDM2` manifest bytes, serialized global image).
fn canonical_images() -> &'static (Vec<u8>, Vec<u8>) {
    static IMAGES: OnceLock<(Vec<u8>, Vec<u8>)> = OnceLock::new();
    IMAGES.get_or_init(|| {
        let (cluster, index) = setup();
        index.save(&cluster, "m").unwrap();
        let blocks = cluster.dfs().list_blocks("m").unwrap();
        let manifest = cluster.dfs().read_block(&blocks[0]).unwrap();
        (manifest, index.global().to_bytes())
    })
}

/// Writes `bytes` as the single manifest block of a fresh store and
/// opens it, returning the result (panics propagate to the caller —
/// that *is* the failure mode under test).
fn open_bytes(bytes: &[u8]) -> Result<TardisIndex, tardis_core::CoreError> {
    let cluster = Cluster::new(ClusterConfig {
        n_workers: 1,
        ..ClusterConfig::default()
    })
    .unwrap();
    cluster.dfs().append_block("m", bytes).unwrap();
    TardisIndex::open(&cluster, "m")
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    buf.extend_from_slice(&(s.len() as u16).to_le_bytes());
    buf.extend_from_slice(s.as_bytes());
}

/// Hand-serialized legacy (pre-`TDM2`, magic-less) manifest: config,
/// dataset linkage, global image, empty partition table, checksum.
fn legacy_manifest() -> Vec<u8> {
    let (_, global) = canonical_images();
    let config = TardisConfig {
        g_max_size: 150,
        l_max_size: 30,
        sampling_fraction: 0.5,
        ..TardisConfig::default()
    };
    let mut buf = Vec::new();
    buf.extend_from_slice(&(config.word_len as u16).to_le_bytes());
    buf.push(config.initial_card_bits);
    buf.extend_from_slice(&(config.g_max_size as u64).to_le_bytes());
    buf.extend_from_slice(&(config.l_max_size as u64).to_le_bytes());
    buf.extend_from_slice(&config.sampling_fraction.to_le_bytes());
    buf.extend_from_slice(&(config.pth as u32).to_le_bytes());
    buf.extend_from_slice(&config.bloom_fpp.to_le_bytes());
    buf.push(config.bloom_enabled as u8);
    buf.push(config.bloom_in_memory as u8);
    buf.push(config.clustered as u8);
    buf.extend_from_slice(&config.seed.to_le_bytes());
    put_str(&mut buf, "data");
    buf.extend_from_slice(&100u64.to_le_bytes());
    buf.extend_from_slice(&(global.len() as u32).to_le_bytes());
    buf.extend_from_slice(global);
    buf.extend_from_slice(&0u32.to_le_bytes()); // no partitions
    let checksum = tardis_bloom::fnv1a_64(&buf);
    buf.extend_from_slice(&checksum.to_le_bytes());
    buf
}

/// Walks the `TDM2` layout up to the partition-table count, returning
/// its byte offset. Mirrors the writer's layout on purpose: the test
/// must be able to aim corruption at the count fields precisely.
fn v2_n_parts_offset(bytes: &[u8]) -> usize {
    let mut at = 4 + 8 + 8; // magic, manifest_version, next_delta_id
    at += 2 + 1 + 8 + 8 + 8 + 4 + 8 + 1 + 1 + 1 + 8; // config
    let dlen = u16::from_le_bytes(bytes[at..at + 2].try_into().unwrap()) as usize;
    at += 2 + dlen; // dataset file
    at += 8; // dataset_block_records
    let glen = u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap()) as usize;
    at + 4 + glen
}

/// Continues the walk past the partition entries to the delta count.
fn v2_n_deltas_offset(bytes: &[u8]) -> usize {
    let mut at = v2_n_parts_offset(bytes);
    let n_parts = u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap()) as usize;
    at += 4;
    for _ in 0..n_parts {
        at += 4 + 8; // pid, n_records
        for _ in 0..2 {
            let slen = u16::from_le_bytes(bytes[at..at + 2].try_into().unwrap()) as usize;
            at += 2 + slen;
        }
        at += 8 + 8; // index_bytes, bloom_bytes
    }
    at
}

/// Patches `bytes[at..at + N]` and restamps the trailing checksum, so
/// the damage reaches the structural decoder instead of being absorbed
/// by the checksum gate.
fn patch_and_restamp(bytes: &[u8], at: usize, patch: &[u8]) -> Vec<u8> {
    let mut out = bytes.to_vec();
    out[at..at + patch.len()].copy_from_slice(patch);
    let payload_len = out.len() - 8;
    let checksum = tardis_bloom::fnv1a_64(&out[..payload_len]);
    out[payload_len..].copy_from_slice(&checksum.to_le_bytes());
    out
}

#[test]
fn legacy_manifest_still_opens() {
    let index = open_bytes(&legacy_manifest()).unwrap();
    assert_eq!(index.deltas().len(), 0);
}

#[test]
fn oversized_partition_count_rejected_without_allocation() {
    let (v2, _) = canonical_images();
    let at = v2_n_parts_offset(v2);
    let bomb = patch_and_restamp(v2, at, &u32::MAX.to_le_bytes());
    // A count claiming ~4 billion entries in a few-KB payload must be
    // rejected by the structural sanity cap — before any `Vec` reserve
    // could turn it into an OOM — not by an entry-parse error.
    let Err(err) = open_bytes(&bomb) else {
        panic!("partition-count bomb accepted")
    };
    assert!(err.to_string().contains("partition count"), "got: {err}");
}

#[test]
fn oversized_delta_count_rejected_without_allocation() {
    let (v2, _) = canonical_images();
    let at = v2_n_deltas_offset(v2);
    let bomb = patch_and_restamp(v2, at, &u32::MAX.to_le_bytes());
    let Err(err) = open_bytes(&bomb) else {
        panic!("delta-count bomb accepted")
    };
    assert!(err.to_string().contains("delta count"), "got: {err}");
}

#[test]
fn stale_magic_versions_rejected() {
    let (v2, _) = canonical_images();
    // A manifest stamped with a magic this build doesn't know falls back
    // to the legacy interpretation, whose config decode must reject the
    // alien bytes — a downgrade must fail loudly, never half-parse.
    for magic in [b"TDM1", b"TDM3", b"TDM9", b"XXXX"] {
        let stale = patch_and_restamp(v2, 0, magic);
        assert!(open_bytes(&stale).is_err(), "magic {magic:?} accepted");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn arbitrary_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..2048)) {
        prop_assert!(open_bytes(&bytes).is_err());
    }

    #[test]
    fn v2_truncation_always_errors(pos in any::<usize>()) {
        let (v2, _) = canonical_images();
        let cut = pos % v2.len();
        prop_assert!(open_bytes(&v2[..cut]).is_err(), "cut {} accepted", cut);
    }

    #[test]
    fn v2_bit_flips_always_error(pos in any::<usize>(), bit in 0u8..8) {
        let (v2, _) = canonical_images();
        let mut bytes = v2.clone();
        let at = pos % bytes.len();
        bytes[at] ^= 1 << bit;
        prop_assert!(open_bytes(&bytes).is_err(), "flip at {} bit {} accepted", at, bit);
    }

    #[test]
    fn legacy_truncation_always_errors(pos in any::<usize>()) {
        let legacy = legacy_manifest();
        let cut = pos % legacy.len();
        prop_assert!(open_bytes(&legacy[..cut]).is_err(), "cut {} accepted", cut);
    }

    #[test]
    fn legacy_bit_flips_always_error(pos in any::<usize>(), bit in 0u8..8) {
        let legacy = legacy_manifest();
        let mut bytes = legacy.clone();
        let at = pos % bytes.len();
        bytes[at] ^= 1 << bit;
        prop_assert!(open_bytes(&bytes).is_err(), "flip at {} bit {} accepted", at, bit);
    }
}

#[test]
fn open_never_panics_on_truncated_manifest() {
    let (cluster, index) = setup();
    index.save(&cluster, "m").unwrap();
    let blocks = cluster.dfs().list_blocks("m").unwrap();
    let bytes = cluster.dfs().read_block(&blocks[0]).unwrap();
    for cut in (0..bytes.len()).step_by(11) {
        cluster.dfs().delete_file("m").unwrap();
        cluster.dfs().append_block("m", &bytes[..cut]).unwrap();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            TardisIndex::open(&cluster, "m")
        }));
        let outcome = result.unwrap_or_else(|_| panic!("panicked at cut {cut}"));
        assert!(outcome.is_err(), "truncation at {cut} accepted");
    }
}
