//! Replica-aware routing must never change an answer.
//!
//! Reads are routed to the least-loaded replica, so *which copy* serves
//! each block depends on live load counters — but every copy holds the
//! same bytes, so every query engine must return bit-identical results
//! no matter how the counters are skewed, how wide the worker pool is,
//! or how the two interleave. These properties pin that contract: the
//! same workload runs against clusters whose per-node counters were
//! pre-heated to arbitrary (proptest-chosen) values, across pool widths
//! 1 / 4 / 8, and every engine's answers are compared bit-for-bit
//! against a sequential single-query oracle on an untouched cluster.

use proptest::prelude::*;
use std::path::{Path, PathBuf};
use std::sync::OnceLock;
use tardis_cluster::{encode_records, Cluster, ClusterConfig, MAX_TRACKED_NODES};
use tardis_core::{
    exact_knn, exact_knn_batch, exact_match, exact_match_batch, knn_approximate, knn_batch,
    range_query, ExactKnnAnswer, ExactMatchOutcome, KnnAnswer, KnnStrategy, RangeAnswer,
    TardisConfig, TardisIndex,
};
use tardis_ts::{Record, TimeSeries};

const N_RECORDS: u64 = 700;

fn series(rid: u64) -> TimeSeries {
    let mut x = rid.wrapping_mul(0x9E3779B97F4A7C15) | 1;
    let mut acc = 0.0f32;
    let mut v = Vec::with_capacity(64);
    for _ in 0..64 {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        acc += ((x >> 40) as f32 / (1u32 << 24) as f32) - 0.5;
        v.push(acc);
    }
    tardis_ts::z_normalize_in_place(&mut v);
    TimeSeries::new(v)
}

/// Replication 2 over 3 datanodes (the defaults) — every partition block
/// has two routable copies, and a third node keeps placement non-trivial.
fn cluster_at(dir: &Path, n_workers: usize) -> Cluster {
    Cluster::at_dir(
        dir,
        ClusterConfig {
            n_workers,
            ..ClusterConfig::default()
        },
    )
    .unwrap()
}

struct Fixture {
    dir: PathBuf,
    index: TardisIndex,
    /// Oracle cluster: untouched counters, width 1 — reads here take the
    /// quiescent routing order.
    oracle: Cluster,
}

fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let dir =
            std::env::temp_dir().join(format!("tardis-balance-routing-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let build = cluster_at(&dir, 4);
        let blocks: Vec<Vec<u8>> = (0..N_RECORDS)
            .collect::<Vec<u64>>()
            .chunks(100)
            .map(|chunk| {
                encode_records(
                    &chunk
                        .iter()
                        .map(|&rid| Record::new(rid, series(rid)))
                        .collect::<Vec<_>>(),
                )
            })
            .collect();
        build.dfs().write_blocks("data", blocks).unwrap();
        let config = TardisConfig {
            g_max_size: 200,
            l_max_size: 50,
            sampling_fraction: 0.5,
            ..TardisConfig::default()
        };
        let (index, _) = TardisIndex::build(&build, "data", &config).unwrap();
        drop(build);
        let oracle = cluster_at(&dir, 1);
        Fixture { dir, index, oracle }
    })
}

/// Skews a cluster's per-node load counters to arbitrary values, so its
/// routing probe order differs from the quiescent (oracle) order.
fn preheat(cluster: &Cluster, served: &[u64]) {
    for (node, &count) in served.iter().enumerate().take(MAX_TRACKED_NODES) {
        for _ in 0..count {
            cluster.metrics().node_read_begin(node as u32);
            cluster.metrics().node_read_end(node as u32, true);
        }
    }
}

fn workload(seeds: &[u64]) -> Vec<TimeSeries> {
    seeds
        .iter()
        .map(|&s| {
            if s % 2 == 0 {
                series(s % N_RECORDS)
            } else {
                series(1_000_000 + s)
            }
        })
        .collect()
}

fn assert_knn_eq(a: &KnnAnswer, b: &KnnAnswer, what: &str) {
    assert_eq!(a.neighbors.len(), b.neighbors.len(), "{what}: length");
    for (x, y) in a.neighbors.iter().zip(&b.neighbors) {
        assert_eq!(x.1, y.1, "{what}: rid");
        assert_eq!(x.0.to_bits(), y.0.to_bits(), "{what}: distance bits");
    }
    assert_eq!(a.partitions_loaded, b.partitions_loaded, "{what}: loads");
}

fn assert_exact_knn_eq(a: &ExactKnnAnswer, b: &ExactKnnAnswer, what: &str) {
    assert_eq!(a.neighbors.len(), b.neighbors.len(), "{what}: length");
    for (x, y) in a.neighbors.iter().zip(&b.neighbors) {
        assert_eq!(x.rid, y.rid, "{what}: rid");
        assert_eq!(x.distance.to_bits(), y.distance.to_bits(), "{what}: distance bits");
    }
}

fn assert_range_eq(a: &RangeAnswer, b: &RangeAnswer, what: &str) {
    assert_eq!(a.matches.len(), b.matches.len(), "{what}: length");
    for (x, y) in a.matches.iter().zip(&b.matches) {
        assert_eq!(x.rid, y.rid, "{what}: rid");
        assert_eq!(x.distance.to_bits(), y.distance.to_bits(), "{what}: distance bits");
    }
    assert_eq!(a.partitions_loaded, b.partitions_loaded, "{what}: loads");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Single-query engines: a load-skewed cluster must answer exactly
    /// like the quiescent oracle for every query path.
    #[test]
    fn skewed_routing_preserves_single_query_answers(
        seeds in prop::collection::vec(0u64..2000, 1..10),
        served in prop::collection::vec(0u64..40, 3),
        width_idx in 0usize..3,
        k in 1usize..6,
        epsilon in 1.0f64..8.0,
    ) {
        let f = fixture();
        let width = [1usize, 4, 8][width_idx];
        let skewed = cluster_at(&f.dir, width);
        preheat(&skewed, &served);
        for q in workload(&seeds) {
            let e0 = exact_match(&f.index, &f.oracle, &q, true).unwrap();
            let e1 = exact_match(&f.index, &skewed, &q, true).unwrap();
            prop_assert_eq!(&e0, &e1, "exact (bloom)");
            let e0 = exact_match(&f.index, &f.oracle, &q, false).unwrap();
            let e1 = exact_match(&f.index, &skewed, &q, false).unwrap();
            prop_assert_eq!(&e0, &e1, "exact (no bloom)");
            for strategy in [
                KnnStrategy::TargetNode,
                KnnStrategy::OnePartition,
                KnnStrategy::MultiPartition,
            ] {
                let a0 = knn_approximate(&f.index, &f.oracle, &q, k, strategy).unwrap();
                let a1 = knn_approximate(&f.index, &skewed, &q, k, strategy).unwrap();
                assert_knn_eq(&a0, &a1, &format!("knn {strategy:?}"));
            }
            let x0 = exact_knn(&f.index, &f.oracle, &q, k).unwrap();
            let x1 = exact_knn(&f.index, &skewed, &q, k).unwrap();
            assert_exact_knn_eq(&x0, &x1, "exact-knn");
            let r0 = range_query(&f.index, &f.oracle, &q, epsilon).unwrap();
            let r1 = range_query(&f.index, &skewed, &q, epsilon).unwrap();
            assert_range_eq(&r0, &r1, "range");
        }
    }

    /// Batch engines: concurrent partition tasks race the routing
    /// counters against each other, so which replica serves which block
    /// is genuinely nondeterministic — the answers still must not be.
    #[test]
    fn skewed_routing_preserves_batch_answers(
        seeds in prop::collection::vec(0u64..2000, 1..20),
        served in prop::collection::vec(0u64..40, 3),
        k in 1usize..6,
    ) {
        let f = fixture();
        let queries = workload(&seeds);
        let oracle_exact: Vec<ExactMatchOutcome> = queries
            .iter()
            .map(|q| exact_match(&f.index, &f.oracle, q, true).unwrap())
            .collect();
        let oracle_knn: Vec<KnnAnswer> = queries
            .iter()
            .map(|q| knn_approximate(&f.index, &f.oracle, q, k, KnnStrategy::MultiPartition).unwrap())
            .collect();
        let oracle_eknn: Vec<ExactKnnAnswer> = queries
            .iter()
            .map(|q| exact_knn(&f.index, &f.oracle, q, k).unwrap())
            .collect();
        for width in [1usize, 4, 8] {
            let skewed = cluster_at(&f.dir, width);
            preheat(&skewed, &served);
            let exact = exact_match_batch(&f.index, &skewed, &queries, true).unwrap();
            prop_assert_eq!(&exact, &oracle_exact, "exact batch at width {}", width);
            let knn = knn_batch(&f.index, &skewed, &queries, k, KnnStrategy::MultiPartition).unwrap();
            for (a, b) in knn.iter().zip(&oracle_knn) {
                assert_knn_eq(a, b, &format!("knn batch at width {width}"));
            }
            let eknn = exact_knn_batch(&f.index, &skewed, &queries, k).unwrap();
            for (a, b) in eknn.iter().zip(&oracle_eknn) {
                assert_exact_knn_eq(a, b, &format!("exact-knn batch at width {width}"));
            }
        }
    }
}

/// Routing really does move load around under skew: after heavily biasing
/// one node, fresh reads prefer the others, and the serving spread is
/// visible in the per-node counters.
#[test]
fn preheat_actually_changes_which_node_serves() {
    let f = fixture();
    let pid_file = f.index.partitions()[0].file.clone();

    // Quiescent cluster: note which node serves the first block.
    let quiet = cluster_at(&f.dir, 1);
    let blocks = quiet.dfs().list_blocks(&pid_file).unwrap();
    let first = quiet.dfs().probe_order(&blocks[0])[0];

    // Bias that node sky-high: the same read must route elsewhere.
    let skewed = cluster_at(&f.dir, 1);
    for _ in 0..1000 {
        skewed.metrics().node_read_begin(first);
        skewed.metrics().node_read_end(first, true);
    }
    let rerouted = skewed.dfs().probe_order(&blocks[0])[0];
    assert_ne!(first, rerouted, "biasing a node must deflect routing");

    // And the bytes are identical either way.
    let a = quiet.dfs().read_block(&blocks[0]).unwrap();
    let b = skewed.dfs().read_block(&blocks[0]).unwrap();
    assert_eq!(a, b);
}
