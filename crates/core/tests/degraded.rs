//! Degraded-serving equivalence: on *healthy* storage every `_degraded`
//! query path must produce answers bit-identical to its fail-fast
//! counterpart under both policies, with a complete (`exact`) report and
//! no skips. Dead-partition behaviour is exercised end-to-end in the
//! workspace durability/chaos suites; these tests pin the invariant that
//! the degraded machinery is a pure pass-through when nothing is broken.

use tardis_cluster::{encode_records, Cluster, ClusterConfig};
use tardis_core::{
    exact_knn, exact_knn_batch, exact_knn_batch_degraded, exact_knn_degraded, exact_match,
    exact_match_batch, exact_match_batch_degraded, exact_match_degraded, knn_approximate,
    knn_batch, knn_batch_degraded, knn_approximate_degraded, range_query, range_query_degraded,
    DegradedPolicy, KnnStrategy, TardisConfig, TardisIndex,
};
use tardis_ts::{Record, TimeSeries};

fn series(rid: u64) -> TimeSeries {
    let mut x = rid.wrapping_mul(0x9E3779B97F4A7C15) | 1;
    let mut acc = 0.0f32;
    let mut v = Vec::with_capacity(64);
    for _ in 0..64 {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        acc += ((x >> 40) as f32 / (1u32 << 24) as f32) - 0.5;
        v.push(acc);
    }
    tardis_ts::z_normalize_in_place(&mut v);
    TimeSeries::new(v)
}

fn setup(n: u64) -> (Cluster, TardisIndex) {
    let cluster = Cluster::new(ClusterConfig {
        n_workers: 4,
        ..ClusterConfig::default()
    })
    .unwrap();
    let blocks: Vec<Vec<u8>> = (0..n)
        .collect::<Vec<u64>>()
        .chunks(100)
        .map(|chunk| {
            encode_records(
                &chunk
                    .iter()
                    .map(|&rid| Record::new(rid, series(rid)))
                    .collect::<Vec<_>>(),
            )
        })
        .collect();
    cluster.dfs().write_blocks("data", blocks).unwrap();
    let config = TardisConfig {
        g_max_size: 200,
        l_max_size: 40,
        sampling_fraction: 0.5,
        pth: 4,
        ..TardisConfig::default()
    };
    let (index, _) = TardisIndex::build(&cluster, "data", &config).unwrap();
    (cluster, index)
}

const POLICIES: [DegradedPolicy; 2] = [DegradedPolicy::FailFast, DegradedPolicy::BestEffort];

#[test]
fn healthy_exact_match_is_a_pass_through() {
    let (cluster, index) = setup(600);
    for rid in [0u64, 7, 599, 700_000] {
        let q = series(rid);
        for use_bloom in [true, false] {
            let plain = exact_match(&index, &cluster, &q, use_bloom).unwrap();
            for policy in POLICIES {
                let deg = exact_match_degraded(&index, &cluster, &q, use_bloom, policy).unwrap();
                assert_eq!(deg.answer, plain, "rid {rid} bloom {use_bloom}");
                assert!(deg.completeness.exact);
                assert!(deg.completeness.partitions_skipped.is_empty());
            }
        }
    }
}

#[test]
fn healthy_knn_is_a_pass_through_for_every_strategy() {
    let (cluster, index) = setup(700);
    for rid in [3u64, 350, 695] {
        let q = series(rid);
        for strategy in KnnStrategy::ALL {
            let plain = knn_approximate(&index, &cluster, &q, 10, strategy).unwrap();
            for policy in POLICIES {
                let deg =
                    knn_approximate_degraded(&index, &cluster, &q, 10, strategy, policy).unwrap();
                assert_eq!(deg.answer.neighbors, plain.neighbors, "rid {rid} {strategy:?}");
                assert_eq!(deg.answer.partitions_loaded, plain.partitions_loaded);
                assert!(deg.completeness.exact);
                assert_eq!(
                    deg.completeness.partitions_visited,
                    plain.partitions_loaded
                );
            }
        }
    }
}

#[test]
fn healthy_exact_knn_and_range_are_pass_throughs() {
    let (cluster, index) = setup(600);
    let q = series(123);
    let plain = exact_knn(&index, &cluster, &q, 8).unwrap();
    for policy in POLICIES {
        let deg = exact_knn_degraded(&index, &cluster, &q, 8, policy).unwrap();
        assert_eq!(deg.answer.neighbors.len(), plain.neighbors.len());
        for (a, b) in deg.answer.neighbors.iter().zip(&plain.neighbors) {
            assert_eq!(a.rid, b.rid);
            assert_eq!(a.distance.to_bits(), b.distance.to_bits());
        }
        assert_eq!(deg.answer.partitions_loaded, plain.partitions_loaded);
        assert_eq!(deg.answer.partitions_pruned, plain.partitions_pruned);
        assert!(deg.completeness.exact);
    }

    let plain = range_query(&index, &cluster, &q, 7.0).unwrap();
    for policy in POLICIES {
        let deg = range_query_degraded(&index, &cluster, &q, 7.0, policy).unwrap();
        assert_eq!(deg.answer.matches.len(), plain.matches.len());
        for (a, b) in deg.answer.matches.iter().zip(&plain.matches) {
            assert_eq!(a.rid, b.rid);
            assert_eq!(a.distance.to_bits(), b.distance.to_bits());
        }
        assert!(deg.completeness.exact);
    }
}

#[test]
fn healthy_batches_are_pass_throughs() {
    let (cluster, index) = setup(600);
    let queries: Vec<TimeSeries> = (0..16).map(|i| series(i * 37)).collect();

    let plain = exact_match_batch(&index, &cluster, &queries, true).unwrap();
    for policy in POLICIES {
        let deg = exact_match_batch_degraded(&index, &cluster, &queries, true, policy).unwrap();
        assert_eq!(deg.answer, plain);
        assert!(deg.completeness.exact);
        assert!(deg.completeness.partitions_visited > 0);
    }

    let plain = knn_batch(&index, &cluster, &queries, 6, KnnStrategy::MultiPartition).unwrap();
    for policy in POLICIES {
        let deg =
            knn_batch_degraded(&index, &cluster, &queries, 6, KnnStrategy::MultiPartition, policy)
                .unwrap();
        for (a, b) in deg.answer.iter().zip(&plain) {
            assert_eq!(a.neighbors, b.neighbors);
            assert_eq!(a.partitions_loaded, b.partitions_loaded);
        }
        assert!(deg.completeness.exact);
    }

    let plain = exact_knn_batch(&index, &cluster, &queries[..6], 5).unwrap();
    for policy in POLICIES {
        let deg = exact_knn_batch_degraded(&index, &cluster, &queries[..6], 5, policy).unwrap();
        for (a, b) in deg.answer.iter().zip(&plain) {
            assert_eq!(a.neighbors.len(), b.neighbors.len());
            for (x, y) in a.neighbors.iter().zip(&b.neighbors) {
                assert_eq!(x.rid, y.rid);
                assert_eq!(x.distance.to_bits(), y.distance.to_bits());
            }
        }
        assert!(deg.completeness.exact);
    }
}

#[test]
fn k_zero_degraded_is_empty_and_complete() {
    let (cluster, index) = setup(200);
    let q = series(1);
    for policy in POLICIES {
        let deg =
            knn_approximate_degraded(&index, &cluster, &q, 0, KnnStrategy::MultiPartition, policy)
                .unwrap();
        assert!(deg.answer.neighbors.is_empty());
        assert!(deg.completeness.exact);
        let deg = exact_knn_degraded(&index, &cluster, &q, 0, policy).unwrap();
        assert!(deg.answer.neighbors.is_empty());
        let deg = range_query_degraded(&index, &cluster, &q, -1.0, policy).unwrap();
        assert!(deg.answer.matches.is_empty());
        assert!(deg.completeness.is_complete());
    }
}
