//! The continuous-ingest determinism contract: answers are a pure
//! function of the logical index state (base ∪ sealed deltas), never of
//! the worker-pool width, the degraded policy (on a healthy cluster), or
//! — for the exact paths — of whether records live in the base or in
//! deltas.
//!
//! A seeded interleaving of ingest batches and compactions is replayed
//! on several fixtures: a quiesced single-worker oracle plus pool widths
//! 4 and 8. After every mutation, every query path (exact match, the
//! three approximate-kNN strategies, exact kNN, range) must answer
//! byte-identically across all fixtures and both [`DegradedPolicy`]
//! values. The exact paths are additionally compared against an index
//! rebuilt from scratch over the union of all records.

use tardis_cluster::{encode_records, Cluster, ClusterConfig};
use tardis_core::{
    exact_knn, exact_knn_degraded, exact_match, exact_match_degraded, knn_approximate,
    knn_approximate_degraded, range_query, range_query_degraded, DegradedPolicy, KnnStrategy,
    TardisConfig, TardisIndex,
};
use tardis_ts::{Record, TimeSeries};

fn series(rid: u64) -> TimeSeries {
    let mut x = rid.wrapping_mul(0x9E3779B97F4A7C15) | 1;
    let mut acc = 0.0f32;
    let mut v = Vec::with_capacity(64);
    for _ in 0..64 {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        acc += ((x >> 40) as f32 / (1u32 << 24) as f32) - 0.5;
        v.push(acc);
    }
    tardis_ts::z_normalize_in_place(&mut v);
    TimeSeries::new(v)
}

fn config() -> TardisConfig {
    TardisConfig {
        g_max_size: 250,
        l_max_size: 40,
        sampling_fraction: 0.5,
        pth: 4,
        ..TardisConfig::default()
    }
}

fn build(n_workers: usize, rids: &[u64]) -> (Cluster, TardisIndex) {
    let cluster = Cluster::new(ClusterConfig {
        n_workers,
        ..ClusterConfig::default()
    })
    .unwrap();
    let blocks: Vec<Vec<u8>> = rids
        .chunks(100)
        .map(|chunk| {
            encode_records(
                &chunk
                    .iter()
                    .map(|&rid| Record::new(rid, series(rid)))
                    .collect::<Vec<_>>(),
            )
        })
        .collect();
    cluster.dfs().write_blocks("data", blocks).unwrap();
    let (index, _) = TardisIndex::build(&cluster, "data", &config()).unwrap();
    (cluster, index)
}

fn records(range: std::ops::Range<u64>) -> Vec<Record> {
    range.map(|rid| Record::new(rid, series(rid))).collect()
}

/// One fixture's full answer sheet for a probe query, over every query
/// path and both degraded policies. Compared for exact equality across
/// fixtures — floats included, since every fixture runs the same
/// arithmetic in the same order.
#[derive(Debug, PartialEq)]
struct Answers {
    exact: Vec<u64>,
    knn: Vec<Vec<(f64, u64)>>,
    exact_knn: Vec<(f64, u64)>,
    range: Vec<(u64, f64)>,
}

fn answers(index: &TardisIndex, cluster: &Cluster, q: &TimeSeries) -> Answers {
    let exact = exact_match(index, cluster, q, true).unwrap().matches;
    let knn: Vec<Vec<(f64, u64)>> = [
        KnnStrategy::TargetNode,
        KnnStrategy::OnePartition,
        KnnStrategy::MultiPartition,
    ]
    .iter()
    .map(|&s| knn_approximate(index, cluster, q, 5, s).unwrap().neighbors)
    .collect();
    let exact_knn_ans = exact_knn(index, cluster, q, 5)
        .unwrap()
        .neighbors
        .into_iter()
        .map(|nb| (nb.distance, nb.rid))
        .collect();
    let range: Vec<(u64, f64)> = range_query(index, cluster, q, 2.0)
        .unwrap()
        .matches
        .into_iter()
        .map(|nb| (nb.rid, nb.distance))
        .collect();

    // The degraded variants on a healthy cluster must agree with the
    // plain paths under both policies and report exact completeness.
    for policy in [DegradedPolicy::FailFast, DegradedPolicy::BestEffort] {
        let d = exact_match_degraded(index, cluster, q, true, policy).unwrap();
        assert!(d.completeness.exact);
        assert_eq!(d.answer.matches, exact, "degraded exact diverged ({policy:?})");
        for (i, &s) in [
            KnnStrategy::TargetNode,
            KnnStrategy::OnePartition,
            KnnStrategy::MultiPartition,
        ]
        .iter()
        .enumerate()
        {
            let d = knn_approximate_degraded(index, cluster, q, 5, s, policy).unwrap();
            assert!(d.completeness.exact);
            assert_eq!(d.answer.neighbors, knn[i], "degraded knn diverged ({s:?}, {policy:?})");
        }
        let d = exact_knn_degraded(index, cluster, q, 5, policy).unwrap();
        assert!(d.completeness.exact);
        let got: Vec<(f64, u64)> = d
            .answer
            .neighbors
            .into_iter()
            .map(|nb| (nb.distance, nb.rid))
            .collect();
        assert_eq!(got, exact_knn_ans, "degraded exact-knn diverged ({policy:?})");
        let d = range_query_degraded(index, cluster, q, 2.0, policy).unwrap();
        assert!(d.completeness.exact);
        let got: Vec<(u64, f64)> = d
            .answer
            .matches
            .into_iter()
            .map(|nb| (nb.rid, nb.distance))
            .collect();
        assert_eq!(got, range, "degraded range diverged ({policy:?})");
    }

    Answers {
        exact,
        knn,
        exact_knn: exact_knn_ans,
        range,
    }
}

struct Rng(u64);
impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }
}

#[test]
fn interleaved_ingest_matches_quiesced_oracle() {
    const BASE: u64 = 600;
    let base_rids: Vec<u64> = (0..BASE).collect();

    // The interleaving plan: seeded ingest batches of varying size with
    // compactions mixed in. Precomputed so every fixture replays the
    // identical sequence.
    let mut rng = Rng(0x5EED_CAFE);
    let mut next_rid = 10_000u64;
    let mut plan: Vec<Option<std::ops::Range<u64>>> = Vec::new(); // None = compact
    for step in 0..8 {
        if step == 3 || step == 6 {
            plan.push(None);
        } else {
            let size = 8 + rng.next() % 25;
            plan.push(Some(next_rid..next_rid + size));
            next_rid += size;
        }
    }

    // Fixture 0 is the quiesced single-worker oracle; widths 4 and 8
    // must reproduce its answers bit-for-bit at every step.
    let mut fixtures: Vec<(Cluster, TardisIndex)> = [1usize, 4, 8]
        .iter()
        .map(|&w| build(w, &base_rids))
        .collect();

    let mut ingested: Vec<u64> = Vec::new();
    for (step, op) in plan.iter().enumerate() {
        for (cluster, index) in &mut fixtures {
            match op {
                Some(batch) => {
                    index.ingest_batch(cluster, records(batch.clone())).unwrap();
                }
                None => {
                    index.compact(cluster).unwrap();
                }
            }
        }
        if let Some(batch) = op {
            ingested.extend(batch.clone());
        }

        // Probes: a base member, the most recent ingests, an earlier
        // ingest (possibly already compacted), and an absent series.
        let mut probe_rids = vec![step as u64 * 83 % BASE];
        probe_rids.extend(ingested.last().copied());
        probe_rids.extend(ingested.first().copied());
        probe_rids.extend(ingested.get(ingested.len() / 2).copied());
        probe_rids.push(900_000 + step as u64); // absent
        for rid in probe_rids {
            let q = series(rid);
            let (oracle_cluster, oracle_index) = &fixtures[0];
            let want = answers(oracle_index, oracle_cluster, &q);
            // Stored records must actually be found.
            if rid < BASE || ingested.contains(&rid) {
                assert_eq!(want.exact, vec![rid], "step {step} rid {rid} lost");
            } else {
                assert!(want.exact.is_empty(), "step {step} phantom rid {rid}");
            }
            for (w, (cluster, index)) in fixtures.iter().enumerate().skip(1) {
                let got = answers(index, cluster, &q);
                assert_eq!(
                    got, want,
                    "step {step} rid {rid}: width fixture {w} diverged from quiesced oracle"
                );
            }
        }
    }

    // Final cross-check: the exact paths must also match an index
    // rebuilt from scratch over base ∪ everything ingested — the answer
    // cannot depend on which layer (base or delta) holds a record.
    let mut all: Vec<u64> = base_rids.clone();
    all.extend(&ingested);
    let (fresh_cluster, fresh_index) = build(4, &all);
    let (live_cluster, live_index) = &fixtures[1];
    assert!(live_index.n_deltas() > 0, "plan must end with live deltas");
    for &rid in [0u64, 123, ingested[0], *ingested.last().unwrap(), 900_100].iter() {
        let q = series(rid);
        assert_eq!(
            exact_match(live_index, live_cluster, &q, true).unwrap().matches,
            exact_match(&fresh_index, &fresh_cluster, &q, true).unwrap().matches,
            "exact vs rebuild rid {rid}"
        );
        assert_eq!(
            exact_knn(live_index, live_cluster, &q, 5).unwrap().neighbors,
            exact_knn(&fresh_index, &fresh_cluster, &q, 5).unwrap().neighbors,
            "exact-knn vs rebuild rid {rid}"
        );
        let live: Vec<(u64, f64)> = range_query(live_index, live_cluster, &q, 2.0)
            .unwrap()
            .matches
            .into_iter()
            .map(|nb| (nb.rid, nb.distance))
            .collect();
        let fresh: Vec<(u64, f64)> = range_query(&fresh_index, &fresh_cluster, &q, 2.0)
            .unwrap()
            .matches
            .into_iter()
            .map(|nb| (nb.rid, nb.distance))
            .collect();
        assert_eq!(live, fresh, "range vs rebuild rid {rid}");
    }
}
