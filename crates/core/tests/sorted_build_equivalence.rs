//! The bounded-memory sorted build must be **byte-identical** to the
//! in-memory build.
//!
//! `TardisIndex::build_sorted` promises more than equal query answers:
//! the partition files, Bloom sidecars, and metadata it produces are the
//! same bytes `TardisIndex::build` would have written. These tests pin
//! that contract the strong way — build both ways over the same dataset
//! and compare every persisted byte — across all four dataset profiles,
//! then confirm the consequence (identical answers on all five query
//! paths) at pool widths 1, 4, and 8, and finally let proptest sweep
//! tree/budget configurations looking for a splitting corner the fixed
//! profiles miss.

use proptest::prelude::*;
use std::path::Path;
use tardis_cluster::{Cluster, ClusterConfig, Tracer};
use tardis_core::{
    exact_knn, exact_match, knn_approximate, range_query, BuildReport, KnnStrategy,
    SortedBuildOptions, TardisConfig, TardisIndex,
};
use tardis_data::{DnaLike, NoaaLike, RandomWalk, SeriesGen, TexmexLike};
use tardis_ts::TimeSeries;

const N_RECORDS: u64 = 420;
const RECORDS_PER_BLOCK: usize = 48;

/// Small enough that a 420-record dataset spills several runs.
const TINY_RUN_BUDGET: SortedBuildOptions = SortedBuildOptions {
    run_budget_bytes: 16 << 10,
};

fn config() -> TardisConfig {
    TardisConfig {
        g_max_size: 150,
        l_max_size: 40,
        sampling_fraction: 0.5,
        ..TardisConfig::default()
    }
}

fn mem_cluster(n_workers: usize) -> Cluster {
    Cluster::new(ClusterConfig {
        n_workers,
        ..ClusterConfig::default()
    })
    .unwrap()
}

fn disk_cluster(dir: &Path, n_workers: usize) -> Cluster {
    Cluster::at_dir(
        dir,
        ClusterConfig {
            n_workers,
            ..ClusterConfig::default()
        },
    )
    .unwrap()
}

/// Every persisted index file (`part-*` / `bloom-*`), fully read, in
/// name order: the exact bytes a query will ever see.
fn index_files(cluster: &Cluster) -> Vec<(String, Vec<Vec<u8>>)> {
    let mut names: Vec<String> = cluster
        .dfs()
        .list_files()
        .into_iter()
        .filter(|n| n.starts_with("part-") || n.starts_with("bloom-"))
        .collect();
    names.sort();
    names
        .into_iter()
        .map(|name| {
            let blocks = cluster
                .dfs()
                .list_blocks(&name)
                .unwrap()
                .iter()
                .map(|id| cluster.dfs().read_block(id).unwrap())
                .collect();
            (name, blocks)
        })
        .collect()
}

fn assert_reports_match(mem: &BuildReport, sorted: &BuildReport, label: &str) {
    assert_eq!(mem.n_records, sorted.n_records, "{label}: n_records");
    assert_eq!(mem.n_partitions, sorted.n_partitions, "{label}: n_partitions");
    assert_eq!(
        mem.global_index_bytes, sorted.global_index_bytes,
        "{label}: global_index_bytes"
    );
    assert_eq!(
        mem.local_index_bytes, sorted.local_index_bytes,
        "{label}: local_index_bytes"
    );
    assert_eq!(mem.bloom_bytes, sorted.bloom_bytes, "{label}: bloom_bytes");
}

fn assert_indexes_match(mem: &TardisIndex, sorted: &TardisIndex, label: &str) {
    assert_eq!(mem.n_partitions(), sorted.n_partitions(), "{label}: partitions");
    for (a, b) in mem.partitions().iter().zip(sorted.partitions()) {
        assert_eq!(a.pid, b.pid, "{label}: pid");
        assert_eq!(a.n_records, b.n_records, "{label}: pid {} n_records", a.pid);
        assert_eq!(a.file, b.file, "{label}: pid {} file", a.pid);
        assert_eq!(a.bloom_file, b.bloom_file, "{label}: pid {} bloom_file", a.pid);
        assert_eq!(
            a.index_bytes, b.index_bytes,
            "{label}: pid {} index_bytes",
            a.pid
        );
        assert_eq!(
            a.bloom_bytes, b.bloom_bytes,
            "{label}: pid {} bloom_bytes",
            a.pid
        );
    }
}

/// Builds both ways over the same in-memory dataset and compares every
/// persisted byte. The sorted build runs *second in the same cluster*
/// (the in-memory output is snapshotted first), so any divergence —
/// extra block, different chunking, different Bloom bits — shows up as
/// a byte diff on identically named files.
fn assert_byte_identical(gen: &dyn SeriesGen, config: &TardisConfig, opts: &SortedBuildOptions) {
    let label = gen.name().to_string();
    let cluster = mem_cluster(4);
    tardis_data::write_dataset(&cluster, "data", gen, N_RECORDS, RECORDS_PER_BLOCK).unwrap();

    let (mem_index, mem_report) = TardisIndex::build(&cluster, "data", config).unwrap();
    let mem_files = index_files(&cluster);

    let tracer = Tracer::new();
    let (sorted_index, sorted_report) =
        TardisIndex::build_sorted_profiled(&cluster, "data", config, opts, &tracer).unwrap();
    let sorted_files = index_files(&cluster);

    // The tiny budget must actually exercise the external path: several
    // runs spilled, none left behind.
    let read_convert = tracer
        .span_tree()
        .iter()
        .find_map(|n| n.find("read-convert").cloned())
        .expect("read-convert span");
    assert!(
        read_convert.counter("runs").unwrap_or(0) > 1,
        "{label}: expected multiple spilled runs, got {:?}",
        read_convert.counter("runs")
    );
    assert!(
        !cluster
            .dfs()
            .list_files()
            .iter()
            .any(|n| n.starts_with("extsort-run-")),
        "{label}: leftover run files after a successful sorted build"
    );

    assert_reports_match(&mem_report, &sorted_report, &label);
    assert_indexes_match(&mem_index, &sorted_index, &label);
    assert_eq!(
        mem_files.len(),
        sorted_files.len(),
        "{label}: persisted file count"
    );
    for ((name_a, blocks_a), (name_b, blocks_b)) in mem_files.iter().zip(&sorted_files) {
        assert_eq!(name_a, name_b, "{label}: file name");
        assert_eq!(
            blocks_a.len(),
            blocks_b.len(),
            "{label}: {name_a} block count"
        );
        for (i, (a, b)) in blocks_a.iter().zip(blocks_b).enumerate() {
            assert!(a == b, "{label}: {name_a} block {i} bytes differ");
        }
    }
}

#[test]
fn sorted_build_is_byte_identical_on_random_walk() {
    assert_byte_identical(&RandomWalk::with_len(7, 64), &config(), &TINY_RUN_BUDGET);
}

#[test]
fn sorted_build_is_byte_identical_on_texmex() {
    assert_byte_identical(&TexmexLike::new(11), &config(), &TINY_RUN_BUDGET);
}

#[test]
fn sorted_build_is_byte_identical_on_dna() {
    assert_byte_identical(&DnaLike::new(13), &config(), &TINY_RUN_BUDGET);
}

#[test]
fn sorted_build_is_byte_identical_on_noaa() {
    assert_byte_identical(&NoaaLike::new(17), &config(), &TINY_RUN_BUDGET);
}

/// The unclustered layout persists `(sig, rid)` pairs instead of full
/// records — a different wire format the streaming writer must also
/// reproduce exactly.
#[test]
fn sorted_build_is_byte_identical_unclustered() {
    let cfg = TardisConfig {
        clustered: false,
        ..config()
    };
    assert_byte_identical(&RandomWalk::with_len(23, 64), &cfg, &TINY_RUN_BUDGET);
}

/// Without Bloom filters there are no sidecar files to write — the
/// writer must not emit empty `bloom-*` files or count filter bytes.
#[test]
fn sorted_build_is_byte_identical_without_bloom() {
    let cfg = TardisConfig {
        bloom_enabled: false,
        ..config()
    };
    assert_byte_identical(&RandomWalk::with_len(29, 64), &cfg, &TINY_RUN_BUDGET);
}

/// A budget larger than the dataset degenerates to a single run — the
/// merge and streaming writer must behave identically.
#[test]
fn sorted_build_is_byte_identical_with_single_run() {
    let label = "single-run";
    let cluster = mem_cluster(4);
    let gen = RandomWalk::with_len(31, 64);
    tardis_data::write_dataset(&cluster, "data", &gen, N_RECORDS, RECORDS_PER_BLOCK).unwrap();
    let cfg = config();
    let (mem_index, mem_report) = TardisIndex::build(&cluster, "data", &cfg).unwrap();
    let mem_files = index_files(&cluster);
    let opts = SortedBuildOptions {
        run_budget_bytes: 1 << 30,
    };
    let (sorted_index, sorted_report) =
        TardisIndex::build_sorted(&cluster, "data", &cfg, &opts).unwrap();
    assert_reports_match(&mem_report, &sorted_report, label);
    assert_indexes_match(&mem_index, &sorted_index, label);
    assert_eq!(mem_files, index_files(&cluster), "{label}: file bytes");
}

/// Identical answers on all five query paths (exact match, the three
/// kNN strategies, exact kNN, range) at pool widths 1 / 4 / 8, compared
/// bit-for-bit. The two indexes live in separate directories so each
/// width gets a fresh cluster handle over each build's own files.
#[test]
fn sorted_build_answers_match_across_pool_widths() {
    let base = std::env::temp_dir().join(format!("tardis-sorted-eq-{}", std::process::id()));
    let dir_mem = base.join("mem");
    let dir_sorted = base.join("sorted");
    std::fs::create_dir_all(&dir_mem).unwrap();
    std::fs::create_dir_all(&dir_sorted).unwrap();
    let result = std::panic::catch_unwind(|| {
        answers_match_across_pool_widths(&dir_mem, &dir_sorted);
    });
    std::fs::remove_dir_all(&base).ok();
    if let Err(e) = result {
        std::panic::resume_unwind(e);
    }
}

fn answers_match_across_pool_widths(dir_mem: &Path, dir_sorted: &Path) {
    let gen = RandomWalk::with_len(41, 64);
    let cfg = config();
    let build_mem = disk_cluster(dir_mem, 4);
    let build_sorted = disk_cluster(dir_sorted, 4);
    tardis_data::write_dataset(&build_mem, "data", &gen, N_RECORDS, RECORDS_PER_BLOCK).unwrap();
    tardis_data::write_dataset(&build_sorted, "data", &gen, N_RECORDS, RECORDS_PER_BLOCK).unwrap();
    let (index_mem, _) = TardisIndex::build(&build_mem, "data", &cfg).unwrap();
    let (index_sorted, _) =
        TardisIndex::build_sorted(&build_sorted, "data", &cfg, &TINY_RUN_BUDGET).unwrap();
    drop(build_mem);
    drop(build_sorted);

    // Present queries (regenerated records) plus one absent probe.
    let mut queries: Vec<TimeSeries> = [3u64, 97, 201, 350]
        .iter()
        .map(|&rid| gen.series(rid))
        .collect();
    queries.push(RandomWalk::with_len(999, 64).series(N_RECORDS + 5));

    for width in [1usize, 4, 8] {
        let ca = disk_cluster(dir_mem, width);
        let cb = disk_cluster(dir_sorted, width);
        for (qi, q) in queries.iter().enumerate() {
            let ctx = format!("width {width} query {qi}");
            let ea = exact_match(&index_mem, &ca, q, true).unwrap();
            let eb = exact_match(&index_sorted, &cb, q, true).unwrap();
            assert_eq!(ea.matches, eb.matches, "{ctx}: exact matches");
            assert_eq!(ea.bloom_rejected, eb.bloom_rejected, "{ctx}: bloom");

            for strategy in KnnStrategy::ALL {
                let ka = knn_approximate(&index_mem, &ca, q, 5, strategy).unwrap();
                let kb = knn_approximate(&index_sorted, &cb, q, 5, strategy).unwrap();
                let na: Vec<(u64, u64)> = ka
                    .neighbors
                    .iter()
                    .map(|&(d, rid)| (d.to_bits(), rid))
                    .collect();
                let nb: Vec<(u64, u64)> = kb
                    .neighbors
                    .iter()
                    .map(|&(d, rid)| (d.to_bits(), rid))
                    .collect();
                assert_eq!(na, nb, "{ctx}: {strategy:?} neighbors");
            }

            let xa = exact_knn(&index_mem, &ca, q, 5).unwrap();
            let xb = exact_knn(&index_sorted, &cb, q, 5).unwrap();
            let ex_a: Vec<(u64, u64)> = xa
                .neighbors
                .iter()
                .map(|n| (n.distance.to_bits(), n.rid))
                .collect();
            let ex_b: Vec<(u64, u64)> = xb
                .neighbors
                .iter()
                .map(|n| (n.distance.to_bits(), n.rid))
                .collect();
            assert_eq!(ex_a, ex_b, "{ctx}: exact-knn neighbors");

            let ra = range_query(&index_mem, &ca, q, 4.0).unwrap();
            let rb = range_query(&index_sorted, &cb, q, 4.0).unwrap();
            let rm_a: Vec<(u64, u64)> = ra
                .matches
                .iter()
                .map(|n| (n.distance.to_bits(), n.rid))
                .collect();
            let rm_b: Vec<(u64, u64)> = rb
                .matches
                .iter()
                .map(|n| (n.distance.to_bits(), n.rid))
                .collect();
            assert_eq!(rm_a, rm_b, "{ctx}: range matches");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Config sweep: small split thresholds force deep trees and
    /// max-depth overflow leaves, tiny budgets force many runs, and odd
    /// partition-count/bloom combinations probe the metadata paths.
    #[test]
    fn sorted_build_matches_under_arbitrary_configs(
        l_max_size in 4usize..48,
        g_max_size in 60usize..240,
        run_budget in 2048usize..24_576,
        bloom_enabled in any::<bool>(),
        clustered in any::<bool>(),
        seed in 0u64..1000,
    ) {
        let cfg = TardisConfig {
            g_max_size,
            l_max_size,
            sampling_fraction: 0.5,
            bloom_enabled,
            clustered,
            ..TardisConfig::default()
        };
        let cluster = mem_cluster(4);
        let gen = RandomWalk::with_len(seed, 32);
        tardis_data::write_dataset(&cluster, "data", &gen, 260, 40).unwrap();
        let (mem_index, mem_report) = TardisIndex::build(&cluster, "data", &cfg).unwrap();
        let mem_files = index_files(&cluster);
        let opts = SortedBuildOptions { run_budget_bytes: run_budget };
        let (sorted_index, sorted_report) =
            TardisIndex::build_sorted(&cluster, "data", &cfg, &opts).unwrap();
        assert_reports_match(&mem_report, &sorted_report, "proptest");
        assert_indexes_match(&mem_index, &sorted_index, "proptest");
        prop_assert_eq!(mem_files, index_files(&cluster));
        prop_assert!(!cluster
            .dfs()
            .list_files()
            .iter()
            .any(|n| n.starts_with("extsort-run-")));
    }
}
