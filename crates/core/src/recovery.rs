//! Startup recovery (`fsck`): manifest generation resolution, orphaned
//! generation-file garbage collection, and a final storage scrub.
//!
//! The crash model (see `DESIGN.md` §16) keeps every multi-step
//! mutation recoverable by construction: new data is always written to
//! *fresh* generation files (`part-*.vN`, `delta-*`, `extsort-run-*`),
//! and the manifest swap is the single commit point. A crash therefore
//! leaves exactly one of two on-disk states reachable — the pre-state
//! (commit never happened; the new generation's files are orphans) or
//! the post-state (commit happened; the old generation's files are
//! orphans) — plus, when the crash hit between per-replica manifest
//! renames, a *mixed* manifest whose replicas disagree. Recovery
//! resolves all three:
//!
//! 1. **Resolve** every manifest to its newest checksum-valid version
//!    across replicas, healing losing/corrupt/missing replicas in place
//!    (a mixed manifest always rolls *forward*: the newer version's
//!    data files were durably written before its manifest was).
//! 2. **GC** generation files referenced by no parseable manifest.
//! 3. **Scrub** the block store: sweep leftover `*.tmp` staging files
//!    and re-heal under-replicated blocks.

use crate::error::CoreError;
use crate::index::{decode_manifest, DecodedManifest};
use std::collections::BTreeSet;
use tardis_cluster::Cluster;

/// What one recovery pass repaired. All-zero on a clean store.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Manifests whose replicas held diverging versions and were rolled
    /// forward to the newest checksum-valid one.
    pub manifests_rolled_forward: u64,
    /// Leftover staging `*.tmp` files swept by the scrub phase.
    pub tmp_swept: u64,
    /// Unreferenced generation files deleted.
    pub orphans_deleted: u64,
    /// Replicas healed: manifest losers rewritten in place, plus block
    /// replicas the scrub phase repaired or topped up.
    pub replicas_healed: u64,
    /// Blocks the scrub phase found with no healthy replica left —
    /// unrepairable data loss (never caused by a crash alone).
    pub blocks_lost: u64,
}

impl RecoveryReport {
    /// `true` when the pass changed nothing and found no loss — the
    /// store was already consistent.
    pub fn is_clean(&self) -> bool {
        *self == RecoveryReport::default()
    }
}

/// File-name prefixes of **generation files**: build/ingest/compaction
/// outputs whose liveness is decided solely by manifest references.
/// Everything else (datasets, manifests) is never GC'd.
const GENERATION_PREFIXES: &[&str] = &["part-", "bloom-", "delta-", "dbloom-", "extsort-run-"];

fn is_generation_file(name: &str) -> bool {
    GENERATION_PREFIXES.iter().any(|p| name.starts_with(p))
}

/// Resolves the manifest file `name` across its replicas: every
/// checksum-valid replica is parsed, the newest generation (lexicographic
/// `(manifest_version, next_delta_id)`) wins, and losing, corrupt, or
/// missing replicas are healed in place with the winner's bytes.
///
/// # Errors
/// When no replica parses, falls through to an ordinary replicated read
/// so the usual error (all replicas dead, checksum mismatch, codec
/// context) surfaces; DFS errors propagate.
pub(crate) fn resolve_manifest(
    cluster: &Cluster,
    name: &str,
) -> Result<DecodedManifest, CoreError> {
    match try_resolve_manifest(cluster, name)? {
        Some(resolved) => Ok(resolved.decoded),
        None => {
            // No replica holds a parseable manifest: read through the
            // normal failover path so the caller gets the same error a
            // plain open would have produced.
            let blocks = cluster.dfs().list_blocks(name)?;
            let id = blocks.first().ok_or(CoreError::Cluster(
                tardis_cluster::ClusterError::Codec {
                    context: "empty manifest",
                },
            ))?;
            let bytes = cluster.dfs().read_block(id)?;
            decode_manifest(&bytes)
        }
    }
}

struct ResolvedManifest {
    decoded: DecodedManifest,
    /// Replicas held diverging generations (crash between renames).
    rolled: bool,
    /// Losing/corrupt/missing replicas rewritten with the winner.
    healed: u64,
}

/// [`resolve_manifest`] that answers `None` (instead of an error) when
/// `name` does not hold a parseable manifest in any replica — the probe
/// recovery uses to discover manifests among arbitrary DFS files.
fn try_resolve_manifest(
    cluster: &Cluster,
    name: &str,
) -> Result<Option<ResolvedManifest>, CoreError> {
    let Ok(blocks) = cluster.dfs().list_blocks(name) else {
        return Ok(None);
    };
    let Some(id) = blocks.first() else {
        return Ok(None);
    };
    // Direct per-replica reads (no failover): resolution must see every
    // version that survived the crash, not just the first healthy one.
    let candidates = cluster.dfs().read_replica_payloads(id);
    let mut parsed: Vec<(Vec<u8>, DecodedManifest)> = Vec::new();
    for (_replica, payload) in candidates {
        if let Ok(decoded) = decode_manifest(&payload) {
            parsed.push((payload, decoded));
        }
    }
    if parsed.is_empty() {
        return Ok(None);
    }
    // Newest generation wins; ties keep the lowest replica index so
    // resolution is deterministic.
    let mut best = 0;
    for i in 1..parsed.len() {
        if parsed[i].1.generation() > parsed[best].1.generation() {
            best = i;
        }
    }
    let rolled = parsed
        .iter()
        .any(|(_, d)| d.generation() != parsed[best].1.generation());
    let healed = cluster.dfs().heal_block(id, &parsed[best].0)?;
    if rolled || healed > 0 {
        cluster
            .metrics()
            .record_manifest_resolution(rolled, healed);
    }
    let (_, decoded) = parsed.swap_remove(best);
    Ok(Some(ResolvedManifest {
        decoded,
        rolled,
        healed,
    }))
}

/// Recovers the whole store after a crash (or verifies a clean one):
/// resolves every manifest, garbage-collects orphaned generation files,
/// and scrubs the block store. Idempotent — a second pass on the same
/// store reports all zeros (barring pre-existing `blocks_lost`).
///
/// Generation files referenced by **no** parseable manifest are
/// deleted: an index persisted without ever saving a manifest is
/// indistinguishable from an aborted build and is swept. References are
/// unioned across *all* manifests in the store, so several indexes
/// sharing one DFS directory (e.g. a normal and a low-memory build of
/// the same dataset) protect each other's files.
///
/// # Errors
/// Propagates DFS errors.
pub fn recover_store(cluster: &Cluster) -> Result<RecoveryReport, CoreError> {
    let mut report = RecoveryReport::default();
    let files = cluster.dfs().list_files();
    // Phase 1: resolve manifests, harvesting the live-file set.
    let mut refs: BTreeSet<String> = BTreeSet::new();
    for name in &files {
        if is_generation_file(name) {
            continue;
        }
        if let Some(resolved) = try_resolve_manifest(cluster, name)? {
            if resolved.rolled {
                report.manifests_rolled_forward += 1;
            }
            report.replicas_healed += resolved.healed;
            refs.extend(resolved.decoded.referenced_files().map(str::to_string));
        }
    }
    // Phase 2: GC generation files no manifest references.
    for name in &files {
        if is_generation_file(name) && !refs.contains(name) {
            cluster.dfs().delete_file(name)?;
            report.orphans_deleted += 1;
        }
    }
    cluster.metrics().record_recovery_run(report.orphans_deleted);
    // Phase 3: scrub — sweeps staging tmps, re-heals stragglers.
    let scrub = cluster.dfs().scrub()?;
    report.tmp_swept = scrub.tmp_swept;
    report.replicas_healed += scrub.replicas_repaired + scrub.replicas_added;
    report.blocks_lost = scrub.blocks_lost;
    Ok(report)
}
