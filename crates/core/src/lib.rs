#![warn(missing_docs)]

//! **tardis-core** — the TARDIS distributed time-series indexing framework
//! (the paper's primary contribution, §IV–§V).
//!
//! TARDIS is a two-level index over massive time-series datasets:
//!
//! * **Tardis-G** ([`global::TardisG`]) — one centralized global sigTree on
//!   the master, built from block-level sampled `(iSAX-T, frequency)`
//!   statistics; its leaves name the data partitions produced by FFD
//!   packing of sibling leaves (§IV-B).
//! * **Tardis-L** ([`local::TardisL`]) — one local sigTree per partition,
//!   built in parallel after the global index repartitions (clusters) the
//!   data; each partition also carries a Bloom filter over signatures for
//!   exact-match short-circuiting (§IV-C).
//!
//! Queries (§V):
//!
//! * **Exact match** ([`query::exact`]) — global route → Bloom test →
//!   partition load → local traversal → bitwise comparison; the Bloom
//!   filter eliminates partition loads for absent queries.
//! * **kNN approximate** ([`query::knn`]) — three strategies of increasing
//!   candidate scope and accuracy: *Target Node Access*, *One Partition
//!   Access*, and *Multi-Partitions Access* (Algorithm 1), the latter two
//!   pruning with the iSAX-T lower-bound distance.
//!
//! Ground truth and quality metrics (recall, error ratio) live in
//! [`eval`].

pub mod block;
pub mod build;
pub mod config;
pub mod convert;
pub mod entry;
pub mod error;
pub mod eval;
pub mod global;
pub mod index;
pub mod local;
pub mod packing;
pub mod query;
pub mod recovery;

pub use block::{SeriesBlock, SeriesBlockBuilder};
pub use build::SortedBuildOptions;
pub use config::TardisConfig;
pub use convert::Converter;
pub use entry::{decode_clustered_block, Entry, SigEntry};
pub use error::CoreError;
pub use eval::{error_ratio, ground_truth_knn, recall, Neighbor};
pub use global::{GlobalBuildBreakdown, PartitionId, TardisG};
pub use index::{BuildReport, CompactionOutcome, DeltaMeta, TardisIndex, DELTA_PID_BASE};
pub use local::{BlockEntry, TardisL};
pub use query::batch::{
    exact_knn_batch, exact_knn_batch_degraded, exact_knn_batch_naive, exact_knn_batch_profiled,
    exact_match_batch, exact_match_batch_degraded, exact_match_batch_naive,
    exact_match_batch_profiled, knn_batch, knn_batch_degraded, knn_batch_naive,
    knn_batch_profiled,
};
pub use query::degraded::{Completeness, Degraded, DegradedPolicy};
pub use query::exact::{
    exact_match, exact_match_degraded, exact_match_degraded_profiled, exact_match_profiled,
    ExactMatchOutcome, ExactMatchStats,
};
pub use query::exact_knn::{exact_knn, exact_knn_degraded, exact_knn_profiled, ExactKnnAnswer};
pub use query::range::{range_query, range_query_degraded, RangeAnswer};
pub use query::knn::{
    knn_approximate, knn_approximate_degraded, knn_approximate_degraded_profiled,
    knn_approximate_profiled, KnnAnswer, KnnStrategy,
};
pub use recovery::{recover_store, RecoveryReport};
pub use tardis_cluster::{BatchProfile, QueryProfile, Tracer};
