//! Error type for the TARDIS core.

use std::fmt;
use tardis_cluster::{ClusterError, MaybeTransient};
use tardis_isax::IsaxError;
use tardis_ts::TsError;

/// Errors produced by index construction and query processing.
#[derive(Debug)]
pub enum CoreError {
    /// Invalid configuration value.
    InvalidConfig {
        /// What was wrong.
        reason: String,
    },
    /// Substrate (DFS / shuffle / codec) failure.
    Cluster(ClusterError),
    /// Representation failure (word length / cardinality mismatch).
    Isax(IsaxError),
    /// Time-series primitive failure (length mismatch etc.).
    Ts(TsError),
    /// A query's series length does not match the indexed dataset.
    QueryLengthMismatch {
        /// Length of the query series.
        query: usize,
        /// Length of the indexed series.
        indexed: usize,
    },
    /// A partition id is out of range.
    UnknownPartition {
        /// The offending partition id.
        pid: u32,
    },
    /// A partition is quarantined: a previous load lost every replica of
    /// some block, so its data is unreachable until re-replicated (see
    /// `Dfs::scrub`). Raised by fail-fast queries; best-effort queries
    /// skip the partition and report it in their `Completeness` instead.
    PartitionUnavailable {
        /// The quarantined partition id.
        pid: u32,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidConfig { reason } => write!(f, "invalid configuration: {reason}"),
            CoreError::Cluster(e) => write!(f, "cluster error: {e}"),
            CoreError::Isax(e) => write!(f, "representation error: {e}"),
            CoreError::Ts(e) => write!(f, "time-series error: {e}"),
            CoreError::QueryLengthMismatch { query, indexed } => write!(
                f,
                "query length {query} does not match indexed series length {indexed}"
            ),
            CoreError::UnknownPartition { pid } => write!(f, "unknown partition id {pid}"),
            CoreError::PartitionUnavailable { pid } => write!(
                f,
                "partition {pid} is unavailable (all replicas of some block are dead or corrupt)"
            ),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Cluster(e) => Some(e),
            CoreError::Isax(e) => Some(e),
            CoreError::Ts(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ClusterError> for CoreError {
    fn from(e: ClusterError) -> Self {
        CoreError::Cluster(e)
    }
}

impl MaybeTransient for CoreError {
    /// Only substrate failures can be transient (lost reads, injected
    /// faults, crashed tasks); every core-level error is logical and
    /// retrying the task would deterministically fail again.
    fn is_transient(&self) -> bool {
        match self {
            CoreError::Cluster(e) => e.is_transient(),
            _ => false,
        }
    }
}

impl From<IsaxError> for CoreError {
    fn from(e: IsaxError) -> Self {
        CoreError::Isax(e)
    }
}

impl From<TsError> for CoreError {
    fn from(e: TsError) -> Self {
        CoreError::Ts(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_sources() {
        use std::error::Error;
        let e = CoreError::InvalidConfig {
            reason: "bad".into(),
        };
        assert!(e.to_string().contains("bad"));
        assert!(e.source().is_none());

        let e: CoreError = IsaxError::InvalidWordLength { w: 3 }.into();
        assert!(e.to_string().contains("representation"));
        assert!(e.source().is_some());

        let e: CoreError = TsError::EmptySeries.into();
        assert!(e.source().is_some());

        let e = CoreError::QueryLengthMismatch {
            query: 10,
            indexed: 64,
        };
        assert!(e.to_string().contains("10"));

        let e = CoreError::UnknownPartition { pid: 7 };
        assert!(e.to_string().contains('7'));

        let e = CoreError::PartitionUnavailable { pid: 3 };
        assert!(e.to_string().contains("partition 3"));
        assert!(e.source().is_none());
    }

    #[test]
    fn transience_follows_the_cluster_layer() {
        let transient: CoreError = ClusterError::InjectedFault {
            site: "task",
            key: 1,
            attempt: 1,
        }
        .into();
        assert!(transient.is_transient());

        let permanent: CoreError = ClusterError::Codec { context: "hdr" }.into();
        assert!(!permanent.is_transient());

        // Core-level logical errors never retry.
        assert!(!CoreError::UnknownPartition { pid: 0 }.is_transient());
        assert!(!CoreError::PartitionUnavailable { pid: 0 }.is_transient());
        assert!(!CoreError::QueryLengthMismatch {
            query: 1,
            indexed: 2
        }
        .is_transient());
    }
}
