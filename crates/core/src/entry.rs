//! Index entries: the `(isaxt(b), ts, rid)` triples flowing through the
//! construction pipeline (Figure 8).

use tardis_cluster::{ClusterError, Decode, Encode};
use tardis_isax::SigT;
use tardis_sigtree::HasSig;
use tardis_ts::{Record, RecordId};

/// A clustered-index entry: signature plus the full record.
#[derive(Debug, Clone, PartialEq)]
pub struct Entry {
    /// iSAX-T signature at the initial cardinality.
    pub sig: SigT,
    /// The raw record (id + series).
    pub record: Record,
}

impl Entry {
    /// Creates an entry.
    pub fn new(sig: SigT, record: Record) -> Entry {
        Entry { sig, record }
    }

    /// The record id.
    pub fn rid(&self) -> RecordId {
        self.record.rid
    }
}

impl HasSig for Entry {
    fn sig(&self) -> &SigT {
        &self.sig
    }
}

/// On-disk encoding of a clustered [`Entry`]: the signature (word length,
/// nibble count, nibbles) followed by the record — the paper's
/// `(isaxt(b), ts, rid)` layout, so partition loads need no reconversion.
impl Encode for Entry {
    fn encode(&self, buf: &mut bytes::BytesMut) {
        use bytes::BufMut;
        buf.put_u16_le(self.sig.word_len() as u16);
        buf.put_u16_le(self.sig.nibbles().len() as u16);
        buf.put_slice(self.sig.nibbles());
        self.record.encode(buf);
    }

    fn encoded_len_hint(&self) -> usize {
        4 + self.sig.nibbles().len() + self.record.encoded_len_hint()
    }
}

impl Decode for Entry {
    fn decode(buf: &mut &[u8]) -> Result<Self, ClusterError> {
        use bytes::Buf;
        if buf.len() < 4 {
            return Err(ClusterError::Codec {
                context: "entry header",
            });
        }
        let w = buf.get_u16_le() as usize;
        let n = buf.get_u16_le() as usize;
        if buf.len() < n {
            return Err(ClusterError::Codec {
                context: "entry nibbles",
            });
        }
        let nibbles = buf[..n].to_vec();
        buf.advance(n);
        let sig = SigT::from_nibbles(nibbles, w).map_err(|_| ClusterError::Codec {
            context: "entry signature",
        })?;
        let record = Record::decode(buf)?;
        Ok(Entry { sig, record })
    }
}

/// An un-clustered-index entry: signature plus record id only (the raw
/// series stays in the original dataset file; §II-D describes DPiSAX's
/// un-clustered layout, which TARDIS also supports).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SigEntry {
    /// iSAX-T signature at the initial cardinality.
    pub sig: SigT,
    /// The record id pointing into the original dataset.
    pub rid: RecordId,
}

impl SigEntry {
    /// Creates an entry.
    pub fn new(sig: SigT, rid: RecordId) -> SigEntry {
        SigEntry { sig, rid }
    }
}

impl HasSig for SigEntry {
    fn sig(&self) -> &SigT {
        &self.sig
    }
}

/// On-disk encoding of [`SigEntry`]: rid, word length, nibble bytes.
impl Encode for SigEntry {
    fn encode(&self, buf: &mut bytes::BytesMut) {
        use bytes::BufMut;
        buf.put_u64_le(self.rid);
        buf.put_u16_le(self.sig.word_len() as u16);
        buf.put_u16_le(self.sig.nibbles().len() as u16);
        buf.put_slice(self.sig.nibbles());
    }

    fn encoded_len_hint(&self) -> usize {
        8 + 4 + self.sig.nibbles().len()
    }
}

impl Decode for SigEntry {
    fn decode(buf: &mut &[u8]) -> Result<Self, ClusterError> {
        use bytes::Buf;
        if buf.len() < 12 {
            return Err(ClusterError::Codec {
                context: "sig entry header",
            });
        }
        let rid = buf.get_u64_le();
        let w = buf.get_u16_le() as usize;
        let n = buf.get_u16_le() as usize;
        if buf.len() < n {
            return Err(ClusterError::Codec {
                context: "sig entry nibbles",
            });
        }
        let nibbles = buf[..n].to_vec();
        buf.advance(n);
        let sig = SigT::from_nibbles(nibbles, w).map_err(|_| ClusterError::Codec {
            context: "sig entry signature",
        })?;
        Ok(SigEntry { sig, rid })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tardis_cluster::{decode_records, encode_records};
    use tardis_isax::SaxWord;
    use tardis_ts::TimeSeries;

    fn sig() -> SigT {
        SigT::from_sax(&SaxWord::from_buckets(vec![0b10, 0b01, 0b11, 0b00], 2).unwrap())
    }

    #[test]
    fn entry_exposes_sig_and_rid() {
        let e = Entry::new(sig(), Record::new(7, TimeSeries::new(vec![1.0; 8])));
        assert_eq!(e.rid(), 7);
        assert_eq!(HasSig::sig(&e), &sig());
    }

    #[test]
    fn sig_entry_roundtrip() {
        let entries = vec![SigEntry::new(sig(), 1), SigEntry::new(sig(), 99)];
        let block = encode_records(&entries);
        let decoded: Vec<SigEntry> = decode_records(&block).unwrap();
        assert_eq!(decoded, entries);
    }

    #[test]
    fn sig_entry_rejects_truncation() {
        let block = encode_records(&[SigEntry::new(sig(), 1)]);
        assert!(decode_records::<SigEntry>(&block[..block.len() - 1]).is_err());
    }
}
