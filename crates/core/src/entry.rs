//! Index entries: the `(isaxt(b), ts, rid)` triples flowing through the
//! construction pipeline (Figure 8).

use tardis_cluster::{ClusterError, Decode, Encode};
use tardis_isax::SigT;
use tardis_sigtree::HasSig;
use tardis_ts::{Record, RecordId};

/// A clustered-index entry: signature plus the full record.
#[derive(Debug, Clone, PartialEq)]
pub struct Entry {
    /// iSAX-T signature at the initial cardinality.
    pub sig: SigT,
    /// The raw record (id + series).
    pub record: Record,
}

impl Entry {
    /// Creates an entry.
    pub fn new(sig: SigT, record: Record) -> Entry {
        Entry { sig, record }
    }

    /// The record id.
    pub fn rid(&self) -> RecordId {
        self.record.rid
    }
}

impl HasSig for Entry {
    fn sig(&self) -> &SigT {
        &self.sig
    }
}

/// On-disk encoding of a clustered [`Entry`]: the signature (word length,
/// nibble count, nibbles) followed by the record — the paper's
/// `(isaxt(b), ts, rid)` layout, so partition loads need no reconversion.
impl Encode for Entry {
    fn encode(&self, buf: &mut bytes::BytesMut) {
        use bytes::BufMut;
        buf.put_u16_le(self.sig.word_len() as u16);
        buf.put_u16_le(self.sig.nibbles().len() as u16);
        buf.put_slice(self.sig.nibbles());
        self.record.encode(buf);
    }

    fn encoded_len_hint(&self) -> usize {
        4 + self.sig.nibbles().len() + self.record.encoded_len_hint()
    }
}

/// Decodes the signature header shared by [`Entry`] and the zero-copy
/// arena load path (word length, nibble count, nibbles).
pub(crate) fn decode_sig(buf: &mut &[u8]) -> Result<SigT, ClusterError> {
    use bytes::Buf;
    if buf.len() < 4 {
        return Err(ClusterError::Codec {
            context: "entry header",
        });
    }
    let w = buf.get_u16_le() as usize;
    let n = buf.get_u16_le() as usize;
    if buf.len() < n {
        return Err(ClusterError::Codec {
            context: "entry nibbles",
        });
    }
    let nibbles = buf[..n].to_vec();
    buf.advance(n);
    SigT::from_nibbles(nibbles, w).map_err(|_| ClusterError::Codec {
        context: "entry signature",
    })
}

impl Decode for Entry {
    fn decode(buf: &mut &[u8]) -> Result<Self, ClusterError> {
        let sig = decode_sig(buf)?;
        let record = Record::decode(buf)?;
        Ok(Entry { sig, record })
    }
}

/// Serializes one clustered partition block: a `u32` record count, a `u8`
/// PAA sidecar width, then per record the [`Entry`] encoding followed by
/// `width` little-endian `f64` PAA coefficients.
///
/// Persisting the sidecar moves its computation to index build time: a
/// partition is written once but loaded on every query that routes to it,
/// and recomputing `w` segment means per series per load was a measurable
/// slice of the load path. The coefficients are produced by
/// [`tardis_isax::paa_lanes_into`], the same routine the arena builder
/// uses, so a reader that recomputes them (width 0, or a width mismatch)
/// derives bit-identical values. The sidecar is written only when every
/// record in the block admits a `word_len`-segment PAA; otherwise the
/// width is 0 and readers fall back to computing (and then typically
/// disabling, e.g. for non-uniform partitions) their own.
pub(crate) fn encode_clustered_block(entries: &[Entry], word_len: usize) -> Vec<u8> {
    use bytes::BufMut;
    debug_assert!(word_len <= u8::MAX as usize, "sidecar width fits a u8");
    let mut rows: Vec<f64> = Vec::with_capacity(entries.len() * word_len);
    let mut scratch = Vec::with_capacity(word_len);
    let mut paa_w = word_len.min(u8::MAX as usize);
    for e in entries {
        if tardis_isax::paa_lanes_into(e.record.ts.values(), paa_w, &mut scratch).is_err() {
            rows.clear();
            paa_w = 0;
            break;
        }
        rows.extend_from_slice(&scratch);
    }
    let hint =
        5 + entries.iter().map(|e| e.encoded_len_hint()).sum::<usize>() + rows.len() * 8;
    let mut buf = bytes::BytesMut::with_capacity(hint);
    buf.put_u32_le(entries.len() as u32);
    buf.put_u8(paa_w as u8);
    for (i, e) in entries.iter().enumerate() {
        e.encode(&mut buf);
        for &v in &rows[i * paa_w..(i + 1) * paa_w] {
            buf.put_f64_le(v);
        }
    }
    buf.to_vec()
}

/// Decodes one clustered partition block written by
/// [`encode_clustered_block`], returning the entries and discarding the
/// persisted PAA sidecar rows (the arena load path in
/// [`crate::TardisL::from_clustered_blocks`] consumes those; this decoder
/// serves tools and tests that want the `(isaxt(b), ts, rid)` triples).
///
/// # Errors
/// [`ClusterError::Codec`] on truncation, trailing bytes, or malformed
/// signatures.
pub fn decode_clustered_block(mut bytes: &[u8]) -> Result<Vec<Entry>, ClusterError> {
    use bytes::Buf;
    let buf = &mut bytes;
    if buf.len() < 5 {
        return Err(ClusterError::Codec {
            context: "record block header",
        });
    }
    let count = buf.get_u32_le() as usize;
    let paa_w = buf.get_u8() as usize;
    let mut out = Vec::with_capacity(count.min(1 << 20));
    for _ in 0..count {
        let entry = Entry::decode(buf)?;
        if buf.len() < paa_w * 8 {
            return Err(ClusterError::Codec {
                context: "record block paa row",
            });
        }
        buf.advance(paa_w * 8);
        out.push(entry);
    }
    if !buf.is_empty() {
        return Err(ClusterError::Codec {
            context: "record block trailing bytes",
        });
    }
    Ok(out)
}

/// An un-clustered-index entry: signature plus record id only (the raw
/// series stays in the original dataset file; §II-D describes DPiSAX's
/// un-clustered layout, which TARDIS also supports).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SigEntry {
    /// iSAX-T signature at the initial cardinality.
    pub sig: SigT,
    /// The record id pointing into the original dataset.
    pub rid: RecordId,
}

impl SigEntry {
    /// Creates an entry.
    pub fn new(sig: SigT, rid: RecordId) -> SigEntry {
        SigEntry { sig, rid }
    }
}

impl HasSig for SigEntry {
    fn sig(&self) -> &SigT {
        &self.sig
    }
}

/// On-disk encoding of [`SigEntry`]: rid, word length, nibble bytes.
impl Encode for SigEntry {
    fn encode(&self, buf: &mut bytes::BytesMut) {
        use bytes::BufMut;
        buf.put_u64_le(self.rid);
        buf.put_u16_le(self.sig.word_len() as u16);
        buf.put_u16_le(self.sig.nibbles().len() as u16);
        buf.put_slice(self.sig.nibbles());
    }

    fn encoded_len_hint(&self) -> usize {
        8 + 4 + self.sig.nibbles().len()
    }
}

impl Decode for SigEntry {
    fn decode(buf: &mut &[u8]) -> Result<Self, ClusterError> {
        use bytes::Buf;
        if buf.len() < 12 {
            return Err(ClusterError::Codec {
                context: "sig entry header",
            });
        }
        let rid = buf.get_u64_le();
        let w = buf.get_u16_le() as usize;
        let n = buf.get_u16_le() as usize;
        if buf.len() < n {
            return Err(ClusterError::Codec {
                context: "sig entry nibbles",
            });
        }
        let nibbles = buf[..n].to_vec();
        buf.advance(n);
        let sig = SigT::from_nibbles(nibbles, w).map_err(|_| ClusterError::Codec {
            context: "sig entry signature",
        })?;
        Ok(SigEntry { sig, rid })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tardis_cluster::{decode_records, encode_records};
    use tardis_isax::SaxWord;
    use tardis_ts::TimeSeries;

    fn sig() -> SigT {
        SigT::from_sax(&SaxWord::from_buckets(vec![0b10, 0b01, 0b11, 0b00], 2).unwrap())
    }

    #[test]
    fn entry_exposes_sig_and_rid() {
        let e = Entry::new(sig(), Record::new(7, TimeSeries::new(vec![1.0; 8])));
        assert_eq!(e.rid(), 7);
        assert_eq!(HasSig::sig(&e), &sig());
    }

    #[test]
    fn sig_entry_roundtrip() {
        let entries = vec![SigEntry::new(sig(), 1), SigEntry::new(sig(), 99)];
        let block = encode_records(&entries);
        let decoded: Vec<SigEntry> = decode_records(&block).unwrap();
        assert_eq!(decoded, entries);
    }

    #[test]
    fn clustered_block_roundtrips_entries() {
        let entries: Vec<Entry> = (0..3)
            .map(|i| {
                Entry::new(
                    sig(),
                    Record::new(i, TimeSeries::new((0..16).map(|j| (i * 16 + j) as f32).collect())),
                )
            })
            .collect();
        // With a sidecar (uniform, long-enough series) and without (width 0
        // after a too-short series).
        let block = encode_clustered_block(&entries, 4);
        assert_eq!(decode_clustered_block(&block).unwrap(), entries);
        let mut short = entries.clone();
        short.push(Entry::new(sig(), Record::new(9, TimeSeries::new(vec![1.0; 2]))));
        let block = encode_clustered_block(&short, 4);
        assert_eq!(decode_clustered_block(&block).unwrap(), short);
        // Truncation and trailing garbage are rejected.
        assert!(decode_clustered_block(&block[..block.len() - 1]).is_err());
        let mut garbage = block.clone();
        garbage.push(0);
        assert!(decode_clustered_block(&garbage).is_err());
    }

    #[test]
    fn sig_entry_rejects_truncation() {
        let block = encode_records(&[SigEntry::new(sig(), 1)]);
        assert!(decode_records::<SigEntry>(&block[..block.len() - 1]).is_err());
    }
}
