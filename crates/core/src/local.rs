//! **Tardis-L** — the per-partition local index (§IV-C).
//!
//! Each partition of the clustered layout carries a sigTree whose leaves
//! hold the actual time-series entries, plus a Bloom filter over the
//! entries' iSAX-T signatures, generated synchronously with the tree:
//! inserting an entry both routes it to its leaf and encodes `isaxt(b)`
//! into the filter.

use crate::config::TardisConfig;
use crate::convert::Converter;
use crate::entry::Entry;
use crate::error::CoreError;
use tardis_bloom::BloomFilter;
use tardis_isax::{mindist_paa_sigt, SigT};
use tardis_sigtree::{Descend, NodeId, SigTree, SigTreeConfig};
use tardis_ts::{RecordId, TimeSeries};

/// The local index of one partition.
#[derive(Debug, Clone)]
pub struct TardisL {
    tree: SigTree<Entry>,
    series_len: usize,
}

impl TardisL {
    /// Builds the local index over a partition's entries, synchronously
    /// feeding the Bloom filter when one is supplied (the `mapPartition`
    /// step of Figure 8).
    pub fn build(
        entries: Vec<Entry>,
        config: &TardisConfig,
        mut bloom: Option<&mut BloomFilter>,
    ) -> TardisL {
        let mut tree = SigTree::new(SigTreeConfig::storing(
            config.word_len,
            config.initial_card_bits,
            config.l_max_size,
        ));
        let series_len = entries.first().map(|e| e.record.ts.len()).unwrap_or(0);
        for entry in entries {
            if let Some(filter) = bloom.as_deref_mut() {
                filter.insert(entry.sig.nibbles());
            }
            tree.insert(entry);
        }
        TardisL { tree, series_len }
    }

    /// The underlying sigTree (read-only).
    pub fn tree(&self) -> &SigTree<Entry> {
        &self.tree
    }

    /// Number of entries indexed.
    pub fn len(&self) -> usize {
        self.tree.total_count() as usize
    }

    /// Whether the partition is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Length of the indexed series (0 for an empty partition).
    pub fn series_len(&self) -> usize {
        self.series_len
    }

    /// Exact lookup: descends to the covering leaf and returns the record
    /// ids whose series equal `query` bit-for-bit (§V-A step 4).
    pub fn lookup_exact(&self, sig: &SigT, query: &TimeSeries) -> Vec<RecordId> {
        match self.tree.descend(sig) {
            Descend::Leaf(leaf) => self
                .tree
                .node(leaf)
                .items
                .iter()
                .filter(|e| e.record.ts.exact_eq(query))
                .map(|e| e.rid())
                .collect(),
            Descend::NoChild(_) => Vec::new(),
        }
    }

    /// The *target node* for a kNN query: deepest node on `sig`'s path
    /// holding at least `k` entries (§V-B).
    pub fn target_node(&self, sig: &SigT, k: usize) -> NodeId {
        self.tree.target_node(sig, k)
    }

    /// All entries under a node (the Target Node Access candidate set).
    pub fn candidates_under(&self, node: NodeId) -> Vec<&Entry> {
        self.tree.subtree_items(node)
    }

    /// Lower-bound pruning scan (One Partition Access, §V-B): collects
    /// every entry in nodes whose `MINDIST(query PAA, node signature)` does
    /// not exceed `threshold`. The per-entry signatures are *not*
    /// re-checked (the paper prunes at node granularity; the refine step
    /// computes true distances anyway).
    ///
    /// # Errors
    /// Propagates representation errors (mismatched word length).
    pub fn prune_scan(
        &self,
        query_paa: &[f64],
        series_len: usize,
        threshold: f64,
    ) -> Result<Vec<&Entry>, CoreError> {
        let mut error: Option<CoreError> = None;
        let mut out = Vec::new();
        self.tree.prune_walk(
            |node| {
                if error.is_some() {
                    return false;
                }
                match mindist_paa_sigt(query_paa, &node.sig, series_len) {
                    Ok(d) => d <= threshold,
                    Err(e) => {
                        error = Some(e.into());
                        false
                    }
                }
            },
            |_, node| out.extend(node.items.iter()),
        );
        match error {
            Some(e) => Err(e),
            None => Ok(out),
        }
    }

    /// Structure-only size in bytes, excluding the stored series payloads
    /// (Figure 13b's "local index which excludes indexed data").
    pub fn index_mem_bytes(&self) -> usize {
        // Semantic size: node structures (packed signatures + links) plus
        // one packed entry header per record — the iSAX-T signature at
        // `w·b` bits and the record id — excluding the series payloads
        // (the data). This matches what Figure 13(b) compares: TARDIS
        // stores 8×6 = 48 signature bits per entry, the baseline 8×9 = 72.
        let per_entry: usize = self
            .tree
            .subtree_items(self.tree.root())
            .iter()
            .map(|e| e.sig.nibbles().len().div_ceil(2) + 8)
            .sum();
        self.tree.mem_bytes() + per_entry
    }

    /// Clustered serialization order: entries grouped leaf by leaf, so
    /// that similar series are adjacent on disk.
    pub fn clustered_entries(&self) -> Vec<&Entry> {
        let mut out = Vec::with_capacity(self.len());
        for leaf in self.tree.subtree_leaves(self.tree.root()) {
            out.extend(self.tree.node(leaf).items.iter());
        }
        out
    }

    /// Rebuilds a local index from a loaded partition's records
    /// (signatures recomputed with the index converter).
    ///
    /// # Errors
    /// Propagates conversion errors.
    pub fn from_records(
        records: Vec<tardis_ts::Record>,
        config: &TardisConfig,
        converter: &Converter,
    ) -> Result<TardisL, CoreError> {
        let entries = records
            .into_iter()
            .map(|r| Ok(Entry::new(converter.sig_of(&r.ts)?, r)))
            .collect::<Result<Vec<_>, CoreError>>()?;
        Ok(TardisL::build(entries, config, None))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tardis_bloom::BloomFilter;
    use tardis_ts::Record;

    fn series(rid: u64) -> TimeSeries {
        let mut x = rid.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut acc = 0.0f32;
        let mut v = Vec::with_capacity(64);
        for _ in 0..64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            acc += ((x >> 40) as f32 / (1u32 << 24) as f32) - 0.5;
            v.push(acc);
        }
        tardis_ts::z_normalize_in_place(&mut v);
        TimeSeries::new(v)
    }

    fn config() -> TardisConfig {
        TardisConfig {
            l_max_size: 10,
            ..TardisConfig::default()
        }
    }

    fn entries(n: u64) -> Vec<Entry> {
        let conv = Converter::new(&config());
        (0..n)
            .map(|rid| {
                let ts = series(rid);
                Entry::new(conv.sig_of(&ts).unwrap(), Record::new(rid, ts))
            })
            .collect()
    }

    #[test]
    fn build_indexes_everything() {
        let l = TardisL::build(entries(200), &config(), None);
        assert_eq!(l.len(), 200);
        assert_eq!(l.series_len(), 64);
        assert!(!l.is_empty());
        l.tree().check_invariants().unwrap();
    }

    #[test]
    fn empty_partition() {
        let l = TardisL::build(Vec::new(), &config(), None);
        assert!(l.is_empty());
        assert_eq!(l.series_len(), 0);
        assert!(l.clustered_entries().is_empty());
    }

    #[test]
    fn bloom_is_fed_synchronously() {
        let mut bloom = BloomFilter::with_capacity(300, 0.01);
        let es = entries(100);
        let sigs: Vec<SigT> = es.iter().map(|e| e.sig.clone()).collect();
        let _l = TardisL::build(es, &config(), Some(&mut bloom));
        assert_eq!(bloom.items(), 100);
        for sig in &sigs {
            assert!(bloom.contains(sig.nibbles()), "no false negatives");
        }
    }

    #[test]
    fn lookup_exact_finds_member() {
        let cfg = config();
        let conv = Converter::new(&cfg);
        let l = TardisL::build(entries(150), &cfg, None);
        for rid in [0u64, 7, 149] {
            let q = series(rid);
            let sig = conv.sig_of(&q).unwrap();
            let found = l.lookup_exact(&sig, &q);
            assert_eq!(found, vec![rid]);
        }
    }

    #[test]
    fn lookup_exact_misses_absent() {
        let cfg = config();
        let conv = Converter::new(&cfg);
        let l = TardisL::build(entries(100), &cfg, None);
        let q = series(10_000);
        let sig = conv.sig_of(&q).unwrap();
        assert!(l.lookup_exact(&sig, &q).is_empty());
    }

    #[test]
    fn target_node_candidates_cover_k() {
        let cfg = config();
        let conv = Converter::new(&cfg);
        let l = TardisL::build(entries(200), &cfg, None);
        let q = series(3);
        let sig = conv.sig_of(&q).unwrap();
        for k in [1usize, 5, 50] {
            let node = l.target_node(&sig, k);
            let cands = l.candidates_under(node);
            assert!(
                cands.len() >= k || node == l.tree().root(),
                "k={k}: {} candidates",
                cands.len()
            );
        }
    }

    #[test]
    fn prune_scan_threshold_inf_returns_all() {
        let cfg = config();
        let conv = Converter::new(&cfg);
        let l = TardisL::build(entries(120), &cfg, None);
        let q = series(5);
        let paa = conv.paa_of(&q).unwrap();
        let all = l.prune_scan(&paa, 64, f64::INFINITY).unwrap();
        assert_eq!(all.len(), 120);
    }

    #[test]
    fn prune_scan_never_drops_entries_within_threshold() {
        // Soundness: any entry whose true distance ≤ threshold must
        // survive pruning (lower-bound property at node level).
        let cfg = config();
        let conv = Converter::new(&cfg);
        let es = entries(150);
        let l = TardisL::build(es.clone(), &cfg, None);
        let q = series(42);
        let paa = conv.paa_of(&q).unwrap();
        let threshold = 6.0;
        let kept: std::collections::HashSet<u64> = l
            .prune_scan(&paa, 64, threshold)
            .unwrap()
            .iter()
            .map(|e| e.rid())
            .collect();
        for e in &es {
            let d = tardis_ts::squared_euclidean(q.values(), e.record.ts.values()).sqrt();
            if d <= threshold {
                assert!(kept.contains(&e.rid()), "rid {} dropped (d={d})", e.rid());
            }
        }
    }

    #[test]
    fn prune_scan_tight_threshold_prunes_something() {
        let cfg = config();
        let conv = Converter::new(&cfg);
        let l = TardisL::build(entries(300), &cfg, None);
        let q = series(1);
        let paa = conv.paa_of(&q).unwrap();
        let kept = l.prune_scan(&paa, 64, 1.0).unwrap();
        assert!(kept.len() < 300, "nothing pruned");
    }

    #[test]
    fn clustered_entries_keep_leaf_adjacency() {
        let cfg = config();
        let l = TardisL::build(entries(150), &cfg, None);
        let clustered = l.clustered_entries();
        assert_eq!(clustered.len(), 150);
        // Entries of the same leaf are contiguous: the sequence of leaf
        // signatures (prefix of each entry sig at each leaf's layer) never
        // revisits an earlier leaf.
        let leaves = l.tree().subtree_leaves(l.tree().root());
        let mut seen = std::collections::HashSet::new();
        let mut current: Option<NodeId> = None;
        let mut idx = 0usize;
        for leaf in leaves {
            let n = l.tree().node(leaf).items.len();
            if n == 0 {
                continue;
            }
            assert!(seen.insert(leaf), "leaf revisited");
            current = Some(leaf);
            idx += n;
        }
        assert_eq!(idx, 150);
        assert!(current.is_some());
    }

    #[test]
    fn from_records_roundtrip() {
        let cfg = config();
        let conv = Converter::new(&cfg);
        let records: Vec<Record> = (0..80).map(|rid| Record::new(rid, series(rid))).collect();
        let l = TardisL::from_records(records, &cfg, &conv).unwrap();
        assert_eq!(l.len(), 80);
        let q = series(10);
        let sig = conv.sig_of(&q).unwrap();
        assert_eq!(l.lookup_exact(&sig, &q), vec![10]);
    }

    #[test]
    fn index_size_accounting_is_positive() {
        let l = TardisL::build(entries(100), &config(), None);
        assert!(l.index_mem_bytes() > 0);
    }
}
