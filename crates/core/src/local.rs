//! **Tardis-L** — the per-partition local index (§IV-C).
//!
//! Each partition of the clustered layout carries a sigTree whose leaves
//! hold the actual time-series entries, plus a Bloom filter over the
//! entries' iSAX-T signatures, generated synchronously with the tree:
//! inserting an entry both routes it to its leaf and encodes `isaxt(b)`
//! into the filter.
//!
//! Series storage is a contiguous [`SeriesBlock`] arena in insertion
//! (leaf-clustered, when loaded from disk) order; the tree's leaves hold
//! [`BlockEntry`] values — a signature plus a `u32` index into the block —
//! so candidate sets are index lists and refine iterates the arena
//! cache-linearly instead of chasing per-series allocations.

use crate::block::{SeriesBlock, SeriesBlockBuilder};
use crate::config::TardisConfig;
use crate::convert::Converter;
use crate::entry::{decode_sig, Entry};
use crate::error::CoreError;
use tardis_bloom::BloomFilter;
use tardis_cluster::{decode_record_into, ClusterError};
use tardis_isax::{mindist_paa_sigt_scratch, SigT};
use tardis_sigtree::{Descend, HasSig, NodeId, SigTree, SigTreeConfig};
use tardis_ts::{Record, RecordId, TimeSeries};

/// A tree-resident entry: the iSAX-T signature plus the series' index in
/// the partition's [`SeriesBlock`].
#[derive(Debug, Clone, PartialEq)]
pub struct BlockEntry {
    /// iSAX-T signature at the initial cardinality.
    pub sig: SigT,
    /// Index of the series (and its record id) in the block arena.
    pub idx: u32,
}

impl HasSig for BlockEntry {
    fn sig(&self) -> &SigT {
        &self.sig
    }
}

/// The local index of one partition.
#[derive(Debug, Clone)]
pub struct TardisL {
    tree: SigTree<BlockEntry>,
    block: SeriesBlock,
    series_len: usize,
}

impl TardisL {
    fn tree_for(config: &TardisConfig) -> SigTree<BlockEntry> {
        SigTree::new(SigTreeConfig::storing(
            config.word_len,
            config.initial_card_bits,
            config.l_max_size,
        ))
    }

    /// Builds the local index over a partition's entries, synchronously
    /// feeding the Bloom filter when one is supplied (the `mapPartition`
    /// step of Figure 8). Series are packed into the block arena in the
    /// order given.
    pub fn build(
        entries: Vec<Entry>,
        config: &TardisConfig,
        mut bloom: Option<&mut BloomFilter>,
    ) -> TardisL {
        let mut tree = Self::tree_for(config);
        let mut builder = SeriesBlockBuilder::new(config.word_len);
        let series_len = entries.first().map(|e| e.record.ts.len()).unwrap_or(0);
        for (idx, entry) in entries.into_iter().enumerate() {
            if let Some(filter) = bloom.as_deref_mut() {
                filter.insert(entry.sig.nibbles());
            }
            builder.push(entry.record.rid, entry.record.ts.values());
            tree.insert(BlockEntry {
                sig: entry.sig,
                idx: idx as u32,
            });
        }
        TardisL {
            tree,
            block: builder.finish(),
            series_len,
        }
    }

    /// Rebuilds the local index straight from clustered DFS block bytes
    /// (the wire format written by partition persistence): signatures go
    /// into the tree, series values are appended zero-copy into the block
    /// arena, preserving the on-disk leaf-clustered order. Persisted PAA
    /// sidecar rows (see `encode_clustered_block`) feed the block sidecar
    /// directly; blocks without rows — or with a width that does not match
    /// this index's word length — fall back to computing bit-identical
    /// rows from the decoded values.
    ///
    /// # Errors
    /// [`CoreError::Cluster`] on malformed bytes (truncation, trailing
    /// garbage, bad signatures).
    pub fn from_clustered_blocks<B: AsRef<[u8]>>(
        blocks: &[B],
        config: &TardisConfig,
    ) -> Result<TardisL, CoreError> {
        use bytes::Buf;
        let mut tree = Self::tree_for(config);
        let mut builder = SeriesBlockBuilder::new(config.word_len);
        // The arena ends up slightly smaller than the raw payload (headers,
        // sigs, rids); reserving the payload size up front keeps the decode
        // loop from re-allocating — and memcpy-ing — the arena as it grows.
        builder.values_mut().reserve(
            blocks.iter().map(|b| b.as_ref().len()).sum::<usize>() / std::mem::size_of::<f32>(),
        );
        let mut series_len = 0usize;
        let mut idx: u32 = 0;
        let mut row: Vec<f64> = Vec::new();
        for bytes in blocks {
            let mut buf: &[u8] = bytes.as_ref();
            if buf.len() < 5 {
                return Err(ClusterError::Codec {
                    context: "record block header",
                }
                .into());
            }
            let count = buf.get_u32_le();
            let paa_w = buf.get_u8() as usize;
            for _ in 0..count {
                let sig = decode_sig(&mut buf)?;
                let (rid, len) = decode_record_into(&mut buf, builder.values_mut())?;
                if paa_w > 0 {
                    if buf.len() < paa_w * 8 {
                        return Err(ClusterError::Codec {
                            context: "record block paa row",
                        }
                        .into());
                    }
                    row.clear();
                    for _ in 0..paa_w {
                        row.push(buf.get_f64_le());
                    }
                    if paa_w == config.word_len {
                        builder.commit_with_paa(rid, len, &row);
                    } else {
                        builder.commit(rid, len);
                    }
                } else {
                    builder.commit(rid, len);
                }
                if idx == 0 {
                    series_len = len;
                }
                tree.insert(BlockEntry { sig, idx });
                idx += 1;
            }
            if !buf.is_empty() {
                return Err(ClusterError::Codec {
                    context: "record block trailing bytes",
                }
                .into());
            }
        }
        Ok(TardisL {
            tree,
            block: builder.finish(),
            series_len,
        })
    }

    /// The underlying sigTree (read-only).
    pub fn tree(&self) -> &SigTree<BlockEntry> {
        &self.tree
    }

    /// The contiguous series arena backing this partition.
    pub fn block(&self) -> &SeriesBlock {
        &self.block
    }

    /// Number of entries indexed.
    pub fn len(&self) -> usize {
        self.tree.total_count() as usize
    }

    /// Whether the partition is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Length of the indexed series (0 for an empty partition).
    pub fn series_len(&self) -> usize {
        self.series_len
    }

    /// Exact lookup: descends to the covering leaf and returns the record
    /// ids whose series equal `query` bit-for-bit (§V-A step 4).
    pub fn lookup_exact(&self, sig: &SigT, query: &TimeSeries) -> Vec<RecordId> {
        match self.tree.descend(sig) {
            Descend::Leaf(leaf) => self
                .tree
                .node(leaf)
                .items
                .iter()
                .filter(|e| query.exact_eq_values(self.block.series(e.idx as usize)))
                .map(|e| self.block.rid(e.idx as usize))
                .collect(),
            Descend::NoChild(_) => Vec::new(),
        }
    }

    /// The *target node* for a kNN query: deepest node on `sig`'s path
    /// holding at least `k` entries (§V-B).
    pub fn target_node(&self, sig: &SigT, k: usize) -> NodeId {
        self.tree.target_node(sig, k)
    }

    /// Block indices of all entries under a node (the Target Node Access
    /// candidate set).
    pub fn candidates_under(&self, node: NodeId) -> Vec<u32> {
        self.tree
            .subtree_items(node)
            .into_iter()
            .map(|e| e.idx)
            .collect()
    }

    /// Lower-bound pruning scan (One Partition Access, §V-B): collects the
    /// block index of every entry in nodes whose `MINDIST(query PAA, node
    /// signature)` does not exceed `threshold`. The per-entry signatures
    /// are *not* re-checked (the paper prunes at node granularity; the
    /// refine cascade lower-bounds per entry anyway).
    ///
    /// # Errors
    /// Propagates representation errors (mismatched word length).
    pub fn prune_scan(
        &self,
        query_paa: &[f64],
        series_len: usize,
        threshold: f64,
    ) -> Result<Vec<u32>, CoreError> {
        let mut error: Option<CoreError> = None;
        let mut out = Vec::new();
        let mut scratch: Vec<u16> = Vec::new();
        self.tree.prune_walk(
            |node| {
                if error.is_some() {
                    return false;
                }
                match mindist_paa_sigt_scratch(query_paa, &node.sig, series_len, &mut scratch) {
                    Ok(d) => d <= threshold,
                    Err(e) => {
                        error = Some(e.into());
                        false
                    }
                }
            },
            |_, node| out.extend(node.items.iter().map(|e| e.idx)),
        );
        match error {
            Some(e) => Err(e),
            None => Ok(out),
        }
    }

    /// Structure-only size in bytes, excluding the stored series payloads
    /// (Figure 13b's "local index which excludes indexed data").
    pub fn index_mem_bytes(&self) -> usize {
        // Semantic size: node structures (packed signatures + links) plus
        // one packed entry header per record — the iSAX-T signature at
        // `w·b` bits and the record id — excluding the series payloads
        // (the data). This matches what Figure 13(b) compares: TARDIS
        // stores 8×6 = 48 signature bits per entry, the baseline 8×9 = 72.
        let per_entry: usize = self
            .tree
            .subtree_items(self.tree.root())
            .iter()
            .map(|e| e.sig.nibbles().len().div_ceil(2) + 8)
            .sum();
        self.tree.mem_bytes() + per_entry
    }

    /// Fixed [`SigTree`] struct overhead counted by `tree.mem_bytes()`
    /// on top of the per-node sizes — the sorted build reproduces
    /// [`Self::index_mem_bytes`] without materializing a tree, and this
    /// keeps the two accountings from drifting apart.
    pub(crate) fn tree_struct_bytes() -> usize {
        std::mem::size_of::<SigTree<BlockEntry>>()
    }

    /// Clustered serialization order: entries grouped leaf by leaf, so
    /// that similar series are adjacent on disk. Materializes owned
    /// [`Entry`] values from the block arena.
    pub fn clustered_entries(&self) -> Vec<Entry> {
        let mut out = Vec::with_capacity(self.len());
        for leaf in self.tree.subtree_leaves(self.tree.root()) {
            for e in &self.tree.node(leaf).items {
                let idx = e.idx as usize;
                out.push(Entry::new(
                    e.sig.clone(),
                    Record::new(self.block.rid(idx), TimeSeries::from(self.block.series(idx))),
                ));
            }
        }
        out
    }

    /// Rebuilds a local index from a loaded partition's records
    /// (signatures recomputed with the index converter).
    ///
    /// # Errors
    /// Propagates conversion errors.
    pub fn from_records(
        records: Vec<tardis_ts::Record>,
        config: &TardisConfig,
        converter: &Converter,
    ) -> Result<TardisL, CoreError> {
        let entries = records
            .into_iter()
            .map(|r| Ok(Entry::new(converter.sig_of(&r.ts)?, r)))
            .collect::<Result<Vec<_>, CoreError>>()?;
        Ok(TardisL::build(entries, config, None))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tardis_bloom::BloomFilter;
    use crate::entry::encode_clustered_block;
    use tardis_cluster::Encode;

    fn series(rid: u64) -> TimeSeries {
        let mut x = rid.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut acc = 0.0f32;
        let mut v = Vec::with_capacity(64);
        for _ in 0..64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            acc += ((x >> 40) as f32 / (1u32 << 24) as f32) - 0.5;
            v.push(acc);
        }
        tardis_ts::z_normalize_in_place(&mut v);
        TimeSeries::new(v)
    }

    fn config() -> TardisConfig {
        TardisConfig {
            l_max_size: 10,
            ..TardisConfig::default()
        }
    }

    fn entries(n: u64) -> Vec<Entry> {
        let conv = Converter::new(&config());
        (0..n)
            .map(|rid| {
                let ts = series(rid);
                Entry::new(conv.sig_of(&ts).unwrap(), Record::new(rid, ts))
            })
            .collect()
    }

    #[test]
    fn build_indexes_everything() {
        let l = TardisL::build(entries(200), &config(), None);
        assert_eq!(l.len(), 200);
        assert_eq!(l.series_len(), 64);
        assert!(!l.is_empty());
        l.tree().check_invariants().unwrap();
        // The block arena mirrors the tree's content.
        assert_eq!(l.block().len(), 200);
        assert_eq!(l.block().uniform_stride(), Some(64));
        assert!(l.block().has_paa());
    }

    #[test]
    fn empty_partition() {
        let l = TardisL::build(Vec::new(), &config(), None);
        assert!(l.is_empty());
        assert_eq!(l.series_len(), 0);
        assert!(l.clustered_entries().is_empty());
        assert!(l.block().is_empty());
    }

    #[test]
    fn bloom_is_fed_synchronously() {
        let mut bloom = BloomFilter::with_capacity(300, 0.01);
        let es = entries(100);
        let sigs: Vec<SigT> = es.iter().map(|e| e.sig.clone()).collect();
        let _l = TardisL::build(es, &config(), Some(&mut bloom));
        assert_eq!(bloom.items(), 100);
        for sig in &sigs {
            assert!(bloom.contains(sig.nibbles()), "no false negatives");
        }
    }

    #[test]
    fn lookup_exact_finds_member() {
        let cfg = config();
        let conv = Converter::new(&cfg);
        let l = TardisL::build(entries(150), &cfg, None);
        for rid in [0u64, 7, 149] {
            let q = series(rid);
            let sig = conv.sig_of(&q).unwrap();
            let found = l.lookup_exact(&sig, &q);
            assert_eq!(found, vec![rid]);
        }
    }

    #[test]
    fn lookup_exact_misses_absent() {
        let cfg = config();
        let conv = Converter::new(&cfg);
        let l = TardisL::build(entries(100), &cfg, None);
        let q = series(10_000);
        let sig = conv.sig_of(&q).unwrap();
        assert!(l.lookup_exact(&sig, &q).is_empty());
    }

    #[test]
    fn target_node_candidates_cover_k() {
        let cfg = config();
        let conv = Converter::new(&cfg);
        let l = TardisL::build(entries(200), &cfg, None);
        let q = series(3);
        let sig = conv.sig_of(&q).unwrap();
        for k in [1usize, 5, 50] {
            let node = l.target_node(&sig, k);
            let cands = l.candidates_under(node);
            assert!(
                cands.len() >= k || node == l.tree().root(),
                "k={k}: {} candidates",
                cands.len()
            );
        }
    }

    #[test]
    fn prune_scan_threshold_inf_returns_all() {
        let cfg = config();
        let conv = Converter::new(&cfg);
        let l = TardisL::build(entries(120), &cfg, None);
        let q = series(5);
        let paa = conv.paa_of(&q).unwrap();
        let all = l.prune_scan(&paa, 64, f64::INFINITY).unwrap();
        assert_eq!(all.len(), 120);
    }

    #[test]
    fn prune_scan_never_drops_entries_within_threshold() {
        // Soundness: any entry whose true distance ≤ threshold must
        // survive pruning (lower-bound property at node level).
        let cfg = config();
        let conv = Converter::new(&cfg);
        let es = entries(150);
        let l = TardisL::build(es.clone(), &cfg, None);
        let q = series(42);
        let paa = conv.paa_of(&q).unwrap();
        let threshold = 6.0;
        let kept: std::collections::HashSet<u64> = l
            .prune_scan(&paa, 64, threshold)
            .unwrap()
            .iter()
            .map(|&i| l.block().rid(i as usize))
            .collect();
        for e in &es {
            let d = tardis_ts::squared_euclidean(q.values(), e.record.ts.values()).sqrt();
            if d <= threshold {
                assert!(kept.contains(&e.rid()), "rid {} dropped (d={d})", e.rid());
            }
        }
    }

    #[test]
    fn prune_scan_tight_threshold_prunes_something() {
        let cfg = config();
        let conv = Converter::new(&cfg);
        let l = TardisL::build(entries(300), &cfg, None);
        let q = series(1);
        let paa = conv.paa_of(&q).unwrap();
        let kept = l.prune_scan(&paa, 64, 1.0).unwrap();
        assert!(kept.len() < 300, "nothing pruned");
    }

    #[test]
    fn clustered_entries_keep_leaf_adjacency() {
        let cfg = config();
        let l = TardisL::build(entries(150), &cfg, None);
        let clustered = l.clustered_entries();
        assert_eq!(clustered.len(), 150);
        // Entries of the same leaf are contiguous: the sequence of leaf
        // signatures (prefix of each entry sig at each leaf's layer) never
        // revisits an earlier leaf.
        let leaves = l.tree().subtree_leaves(l.tree().root());
        let mut seen = std::collections::HashSet::new();
        let mut current: Option<NodeId> = None;
        let mut idx = 0usize;
        for leaf in leaves {
            let n = l.tree().node(leaf).items.len();
            if n == 0 {
                continue;
            }
            assert!(seen.insert(leaf), "leaf revisited");
            current = Some(leaf);
            idx += n;
        }
        assert_eq!(idx, 150);
        assert!(current.is_some());
    }

    #[test]
    fn from_records_roundtrip() {
        let cfg = config();
        let conv = Converter::new(&cfg);
        let records: Vec<Record> = (0..80).map(|rid| Record::new(rid, series(rid))).collect();
        let l = TardisL::from_records(records, &cfg, &conv).unwrap();
        assert_eq!(l.len(), 80);
        let q = series(10);
        let sig = conv.sig_of(&q).unwrap();
        assert_eq!(l.lookup_exact(&sig, &q), vec![10]);
    }

    #[test]
    fn from_clustered_blocks_roundtrips_persistence() {
        // Persist clustered entries exactly like index.rs does (count +
        // sidecar-width header, entries with PAA rows, chunked), then
        // rebuild from the bytes: the result must index the same data in
        // the same clustered order with the same sidecar.
        let cfg = config();
        let conv = Converter::new(&cfg);
        let l = TardisL::build(entries(150), &cfg, None);
        let clustered = l.clustered_entries();
        let blocks: Vec<Vec<u8>> = clustered
            .chunks(64)
            .map(|c| encode_clustered_block(c, cfg.word_len))
            .collect();
        let reloaded = TardisL::from_clustered_blocks(&blocks, &cfg).unwrap();
        assert_eq!(reloaded.len(), 150);
        assert_eq!(reloaded.series_len(), 64);
        assert!(reloaded.block().has_paa());
        // Arena order matches the persisted clustered order.
        for (i, e) in clustered.iter().enumerate() {
            assert_eq!(reloaded.block().rid(i), e.rid());
            assert_eq!(reloaded.block().series(i), e.record.ts.values());
        }
        // The persisted sidecar rows are the rows the build computed, in
        // clustered order (bit-identical to recomputation).
        let w = cfg.word_len;
        for (i, e) in clustered.iter().enumerate() {
            let mut want = Vec::new();
            tardis_isax::paa_lanes_into(e.record.ts.values(), w, &mut want).unwrap();
            assert_eq!(&reloaded.block().paa_values()[i * w..(i + 1) * w], &want[..]);
        }
        // Query behaviour is preserved.
        let q = series(42);
        let sig = conv.sig_of(&q).unwrap();
        assert_eq!(reloaded.lookup_exact(&sig, &q), vec![42]);
        let paa = conv.paa_of(&q).unwrap();
        assert_eq!(
            reloaded.prune_scan(&paa, 64, f64::INFINITY).unwrap().len(),
            150
        );
    }

    #[test]
    fn from_clustered_blocks_rejects_trailing_garbage() {
        let cfg = config();
        let l = TardisL::build(entries(10), &cfg, None);
        let mut bytes = encode_clustered_block(&l.clustered_entries(), cfg.word_len);
        bytes.push(0xAB);
        assert!(TardisL::from_clustered_blocks(&[bytes], &cfg).is_err());
    }

    #[test]
    fn from_clustered_blocks_rejects_truncation() {
        let cfg = config();
        let l = TardisL::build(entries(10), &cfg, None);
        let bytes = encode_clustered_block(&l.clustered_entries(), cfg.word_len);
        assert!(TardisL::from_clustered_blocks(&[bytes[..bytes.len() - 3].to_vec()], &cfg).is_err());
        assert!(TardisL::from_clustered_blocks(&[vec![1, 0]], &cfg).is_err());
    }

    #[test]
    fn index_size_accounting_is_positive() {
        let l = TardisL::build(entries(100), &config(), None);
        assert!(l.index_mem_bytes() > 0);
    }

    #[test]
    fn entry_encode_is_what_from_clustered_blocks_parses() {
        // Guard against the Entry wire format and the arena decode path
        // drifting apart: one hand-encoded entry (header + Entry encoding,
        // sidecar width 0) must parse, with the reader recomputing the
        // sidecar row the wire omitted.
        let cfg = config();
        let conv = Converter::new(&cfg);
        let ts = series(5);
        let e = Entry::new(conv.sig_of(&ts).unwrap(), Record::new(5, ts));
        let mut buf = bytes::BytesMut::new();
        use bytes::BufMut;
        buf.put_u32_le(1);
        buf.put_u8(0);
        e.encode(&mut buf);
        let l = TardisL::from_clustered_blocks(&[buf.to_vec()], &cfg).unwrap();
        assert_eq!(l.len(), 1);
        assert_eq!(l.block().rid(0), 5);
        assert!(l.block().has_paa(), "width-0 wire still yields a sidecar");
    }

    #[test]
    fn clustered_block_sidecar_width_mismatch_falls_back_to_computing() {
        // A persisted width that differs from the index word length cannot
        // be used; the reader must recompute rows at its own width (same
        // routine, so the sidecar is still available and bit-identical).
        let cfg = config();
        let l = TardisL::build(entries(20), &cfg, None);
        let wrong_w = if cfg.word_len == 8 { 4 } else { 8 };
        let bytes = encode_clustered_block(&l.clustered_entries(), wrong_w);
        let reloaded = TardisL::from_clustered_blocks(&[bytes], &cfg).unwrap();
        assert_eq!(reloaded.len(), 20);
        assert!(reloaded.block().has_paa());
        assert_eq!(reloaded.block().paa_width(), cfg.word_len);
    }

    #[test]
    fn clustered_block_truncated_paa_row_is_rejected() {
        let cfg = config();
        let l = TardisL::build(entries(3), &cfg, None);
        let bytes = encode_clustered_block(&l.clustered_entries(), cfg.word_len);
        // Chop into the last record's sidecar row.
        assert!(TardisL::from_clustered_blocks(&[bytes[..bytes.len() - 9].to_vec()], &cfg).is_err());
    }
}
