//! Contiguous per-partition series storage: the [`SeriesBlock`] arena.
//!
//! A clustered partition used to hold one heap-allocated `Vec<f32>` per
//! series, scattered wherever the decoder happened to allocate them. The
//! refine step — the dominant per-partition cost once loads are shared —
//! then chased a pointer per candidate. A [`SeriesBlock`] instead packs
//! every series of a partition into **one** `Vec<f32>` in leaf-clustered
//! order, with an offset table and a parallel [`RecordId`] table; local
//! sigTree leaves hold `u32` indices into the block, so refine walks the
//! arena cache-linearly. Decoding a DFS block appends straight into the
//! arena ([`tardis_cluster::decode_record_into`]) — no per-record buffers.
//!
//! The block also carries a precomputed **PAA sidecar**: `w` coefficients
//! per series, stored contiguously, plus the PAA segment lengths. The
//! weighted PAA distance `Σⱼ sⱼ·(q̄ⱼ − c̄ⱼ)²` lower-bounds the true squared
//! Euclidean distance (per-segment Cauchy–Schwarz), so the refine cascade
//! batch-prunes candidates against the current k-th bound before touching
//! any full-resolution values. The sidecar is disabled (never consulted)
//! when the partition's series lengths are non-uniform or too short for
//! the configured word length.

use tardis_isax::{paa_lanes_into, segment_lengths};
use tardis_ts::RecordId;

/// Immutable contiguous storage for one partition's series.
#[derive(Debug, Clone, Default)]
pub struct SeriesBlock {
    values: Vec<f32>,
    /// `len() + 1` offsets into `values`; series `i` is
    /// `values[offsets[i] .. offsets[i+1]]`.
    offsets: Vec<u32>,
    rids: Vec<RecordId>,
    /// PAA sidecar: `paa_width` coefficients per series, empty when the
    /// sidecar is disabled.
    paa: Vec<f64>,
    paa_width: usize,
    paa_weights: Vec<f64>,
    /// Common series length; 0 when empty or non-uniform.
    series_len: usize,
}

impl SeriesBlock {
    /// Number of series stored.
    pub fn len(&self) -> usize {
        self.rids.len()
    }

    /// Whether the block holds no series.
    pub fn is_empty(&self) -> bool {
        self.rids.is_empty()
    }

    /// Common series length (0 for an empty or non-uniform block).
    pub fn series_len(&self) -> usize {
        self.series_len
    }

    /// The uniform stride of the arena, when every series has the same
    /// non-zero length — the precondition for the batched block kernels.
    pub fn uniform_stride(&self) -> Option<usize> {
        (self.series_len > 0).then_some(self.series_len)
    }

    /// Raw values of series `idx`.
    pub fn series(&self, idx: usize) -> &[f32] {
        &self.values[self.offsets[idx] as usize..self.offsets[idx + 1] as usize]
    }

    /// Record id of series `idx`.
    pub fn rid(&self, idx: usize) -> RecordId {
        self.rids[idx]
    }

    /// The whole arena (series `i` at `offsets[i]..offsets[i+1]`).
    pub fn values(&self) -> &[f32] {
        &self.values
    }

    /// All record ids, in block order.
    pub fn rids(&self) -> &[RecordId] {
        &self.rids
    }

    /// Whether the PAA sidecar is available.
    pub fn has_paa(&self) -> bool {
        !self.paa.is_empty() && self.paa.len() == self.rids.len() * self.paa_width
    }

    /// The PAA sidecar arena (`paa_width` coefficients per series).
    pub fn paa_values(&self) -> &[f64] {
        &self.paa
    }

    /// Number of PAA coefficients per series.
    pub fn paa_width(&self) -> usize {
        self.paa_width
    }

    /// PAA segment lengths (the weights of the lower-bound pre-filter).
    pub fn paa_weights(&self) -> &[f64] {
        &self.paa_weights
    }

    /// Heap footprint in bytes (arena + tables + sidecar).
    pub fn mem_bytes(&self) -> usize {
        self.values.capacity() * std::mem::size_of::<f32>()
            + self.offsets.capacity() * std::mem::size_of::<u32>()
            + self.rids.capacity() * std::mem::size_of::<RecordId>()
            + (self.paa.capacity() + self.paa_weights.capacity()) * std::mem::size_of::<f64>()
    }
}

/// Incrementally builds a [`SeriesBlock`] in storage order.
///
/// Two ingestion paths share one bookkeeping routine: [`push`](Self::push)
/// copies a decoded slice, while the zero-copy wire path appends values
/// straight into [`values_mut`](Self::values_mut) (e.g. via
/// [`tardis_cluster::decode_record_into`]) and then calls
/// [`commit`](Self::commit) with the record id and appended length.
#[derive(Debug)]
pub struct SeriesBlockBuilder {
    block: SeriesBlock,
    paa_ok: bool,
    scratch: Vec<f64>,
}

impl SeriesBlockBuilder {
    /// Creates a builder whose sidecar uses `paa_width` segments per
    /// series (the index word length).
    pub fn new(paa_width: usize) -> SeriesBlockBuilder {
        SeriesBlockBuilder {
            block: SeriesBlock {
                offsets: vec![0],
                paa_width,
                ..SeriesBlock::default()
            },
            paa_ok: paa_width > 0,
            scratch: Vec::with_capacity(paa_width),
        }
    }

    /// Mutable access to the value arena for the zero-copy wire path.
    /// Every append must be sealed by a matching [`commit`](Self::commit).
    pub fn values_mut(&mut self) -> &mut Vec<f32> {
        &mut self.block.values
    }

    /// Seals the last `appended_len` arena values as one series owned by
    /// `rid`, updating offsets, the series-length invariant, and the PAA
    /// sidecar.
    pub fn commit(&mut self, rid: RecordId, appended_len: usize) {
        self.commit_inner(rid, appended_len, None);
    }

    /// Like [`commit`](Self::commit), but takes a precomputed PAA row
    /// (e.g. read straight off the persisted partition format) instead of
    /// computing one from the appended values. A row of the wrong width
    /// disables the sidecar.
    pub fn commit_with_paa(&mut self, rid: RecordId, appended_len: usize, row: &[f64]) {
        self.commit_inner(rid, appended_len, Some(row));
    }

    fn commit_inner(&mut self, rid: RecordId, appended_len: usize, row: Option<&[f64]>) {
        let end = self.block.values.len();
        debug_assert_eq!(
            end,
            self.block.offsets.last().copied().unwrap_or(0) as usize + appended_len,
            "commit length does not match arena growth"
        );
        debug_assert!(end <= u32::MAX as usize, "series block exceeds u32 offsets");
        let first = self.block.rids.is_empty();
        if first {
            self.block.series_len = appended_len;
            if self.paa_ok {
                match segment_lengths(appended_len, self.block.paa_width) {
                    Ok(w) => self.block.paa_weights = w,
                    Err(_) => self.disable_paa(),
                }
            }
        } else if self.block.series_len != appended_len {
            // Non-uniform partition: no uniform stride, no sidecar.
            self.block.series_len = 0;
            self.disable_paa();
        }
        if self.paa_ok {
            match row {
                Some(r) if r.len() == self.block.paa_width => {
                    self.block.paa.extend_from_slice(r);
                }
                Some(_) => self.disable_paa(),
                None => {
                    // Lane-order means: the sidecar only feeds lower
                    // bounds, so it does not need `paa_into`'s exact bits,
                    // and the lane sum makes computing a row several times
                    // faster.
                    let start = end - appended_len;
                    match paa_lanes_into(
                        &self.block.values[start..end],
                        self.block.paa_width,
                        &mut self.scratch,
                    ) {
                        Ok(()) => self.block.paa.extend_from_slice(&self.scratch),
                        Err(_) => self.disable_paa(),
                    }
                }
            }
        }
        self.block.offsets.push(end as u32);
        self.block.rids.push(rid);
    }

    /// Appends one series by copying `values` into the arena.
    pub fn push(&mut self, rid: RecordId, values: &[f32]) {
        self.block.values.extend_from_slice(values);
        self.commit(rid, values.len());
    }

    fn disable_paa(&mut self) {
        self.paa_ok = false;
        self.block.paa = Vec::new();
        self.block.paa_weights = Vec::new();
    }

    /// Finalizes the block.
    pub fn finish(self) -> SeriesBlock {
        self.block
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tardis_isax::paa;

    #[test]
    fn builder_packs_series_contiguously() {
        let mut b = SeriesBlockBuilder::new(4);
        b.push(10, &[1.0, 2.0, 3.0, 4.0]);
        b.push(20, &[5.0, 6.0, 7.0, 8.0]);
        let block = b.finish();
        assert_eq!(block.len(), 2);
        assert_eq!(block.series_len(), 4);
        assert_eq!(block.uniform_stride(), Some(4));
        assert_eq!(block.series(0), &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(block.series(1), &[5.0, 6.0, 7.0, 8.0]);
        assert_eq!(block.rid(0), 10);
        assert_eq!(block.rid(1), 20);
        assert_eq!(block.values().len(), 8);
    }

    #[test]
    fn sidecar_matches_paa_of_each_series() {
        let mut b = SeriesBlockBuilder::new(4);
        let s0: Vec<f32> = (0..16).map(|i| i as f32 * 0.25).collect();
        let s1: Vec<f32> = (0..16).map(|i| (i * i) as f32 * 0.01).collect();
        b.push(0, &s0);
        b.push(1, &s1);
        let block = b.finish();
        assert!(block.has_paa());
        assert_eq!(block.paa_width(), 4);
        assert_eq!(block.paa_weights(), &[4.0, 4.0, 4.0, 4.0]);
        // The sidecar uses the lane-order sum: same means as `paa` up to
        // rounding (exact here — segment sums of these values are exact).
        for (got, want) in block.paa_values()[0..4].iter().zip(paa(&s0, 4).unwrap()) {
            assert!((got - want).abs() <= 1e-12, "{got} vs {want}");
        }
        for (got, want) in block.paa_values()[4..8].iter().zip(paa(&s1, 4).unwrap()) {
            assert!((got - want).abs() <= 1e-12, "{got} vs {want}");
        }
    }

    #[test]
    fn non_uniform_lengths_disable_stride_and_sidecar() {
        let mut b = SeriesBlockBuilder::new(4);
        b.push(0, &[1.0; 8]);
        b.push(1, &[2.0; 12]);
        let block = b.finish();
        assert_eq!(block.len(), 2);
        assert_eq!(block.uniform_stride(), None);
        assert!(!block.has_paa());
        // Offset-based access still works.
        assert_eq!(block.series(0).len(), 8);
        assert_eq!(block.series(1).len(), 12);
    }

    #[test]
    fn too_short_series_disable_sidecar_only() {
        let mut b = SeriesBlockBuilder::new(8);
        b.push(0, &[1.0; 4]); // shorter than the word length
        b.push(1, &[2.0; 4]);
        let block = b.finish();
        assert!(!block.has_paa());
        assert_eq!(block.uniform_stride(), Some(4));
    }

    #[test]
    fn wire_path_commit_matches_push() {
        let mut a = SeriesBlockBuilder::new(4);
        a.push(7, &[1.0, 2.0, 3.0, 4.0]);
        let mut b = SeriesBlockBuilder::new(4);
        b.values_mut().extend_from_slice(&[1.0, 2.0, 3.0, 4.0]);
        b.commit(7, 4);
        let (a, b) = (a.finish(), b.finish());
        assert_eq!(a.series(0), b.series(0));
        assert_eq!(a.rid(0), b.rid(0));
        assert_eq!(a.paa_values(), b.paa_values());
    }

    #[test]
    fn empty_block() {
        let block = SeriesBlockBuilder::new(8).finish();
        assert!(block.is_empty());
        assert_eq!(block.series_len(), 0);
        assert_eq!(block.uniform_stride(), None);
        assert!(!block.has_paa());
        assert!(block.mem_bytes() < 1024);
    }
}
