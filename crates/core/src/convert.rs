//! Series → signature conversion bound to a configuration.

use crate::config::TardisConfig;
use crate::error::CoreError;
use tardis_isax::{paa, SaxWord, SigT};
use tardis_ts::TimeSeries;

/// A converter binding the word length and initial cardinality, so the
/// hot conversion path carries no per-call parameter validation.
#[derive(Debug, Clone, Copy)]
pub struct Converter {
    w: usize,
    bits: u8,
}

impl Converter {
    /// Creates a converter from a validated configuration.
    pub fn new(config: &TardisConfig) -> Converter {
        Converter {
            w: config.word_len,
            bits: config.initial_card_bits,
        }
    }

    /// Creates a converter from explicit parameters.
    pub fn with_params(w: usize, bits: u8) -> Converter {
        Converter { w, bits }
    }

    /// Word length `w`.
    pub fn word_len(&self) -> usize {
        self.w
    }

    /// Initial cardinality bits `b`.
    pub fn bits(&self) -> u8 {
        self.bits
    }

    /// Converts a (z-normalized) series to its iSAX-T signature at the
    /// initial cardinality.
    ///
    /// # Errors
    /// Propagates representation errors (series shorter than `w`, …).
    pub fn sig_of(&self, ts: &TimeSeries) -> Result<SigT, CoreError> {
        let word = SaxWord::from_series(ts.values(), self.w, self.bits)?;
        Ok(SigT::from_sax(&word))
    }

    /// The PAA of a series at the configured word length (used for
    /// lower-bound pruning at query time).
    ///
    /// # Errors
    /// Propagates representation errors.
    pub fn paa_of(&self, ts: &TimeSeries) -> Result<Vec<f64>, CoreError> {
        Ok(paa(ts.values(), self.w)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series() -> TimeSeries {
        let mut v: Vec<f32> = (0..64).map(|i| ((i as f32) * 0.3).sin()).collect();
        tardis_ts::z_normalize_in_place(&mut v);
        TimeSeries::new(v)
    }

    #[test]
    fn sig_has_configured_shape() {
        let conv = Converter::new(&TardisConfig::default());
        let sig = conv.sig_of(&series()).unwrap();
        assert_eq!(sig.word_len(), 8);
        assert_eq!(sig.bits(), 6);
    }

    #[test]
    fn paa_has_word_len_segments() {
        let conv = Converter::new(&TardisConfig::default());
        assert_eq!(conv.paa_of(&series()).unwrap().len(), 8);
    }

    #[test]
    fn short_series_errors() {
        let conv = Converter::with_params(8, 6);
        let tiny = TimeSeries::new(vec![1.0, 2.0]);
        assert!(conv.sig_of(&tiny).is_err());
        assert!(conv.paa_of(&tiny).is_err());
    }

    #[test]
    fn conversion_is_deterministic() {
        let conv = Converter::new(&TardisConfig::default());
        assert_eq!(conv.sig_of(&series()).unwrap(), conv.sig_of(&series()).unwrap());
    }
}
