//! The full TARDIS index: global + local construction pipeline (§IV,
//! Figure 8) and the handle queries run against.
//!
//! Build pipeline:
//!
//! 1. Build [`TardisG`] from sampled statistics.
//! 2. Broadcast it as the shuffle partitioner.
//! 3. Read every dataset block in parallel, convert each record to
//!    `(isaxt(b), ts, rid)`, and shuffle to its target partition.
//! 4. Per partition (`mapPartition`): build the [`TardisL`] sigTree while
//!    synchronously feeding the Bloom filter; persist the clustered
//!    records (grouped leaf by leaf) and the filter to the DFS.
//!
//! The un-clustered variant persists `(signature, rid)` pairs instead of
//! records; queries then fetch raw series from the original dataset file
//! (random I/O, as the paper describes for DPiSAX's layout).

use crate::config::TardisConfig;
use crate::entry::{encode_clustered_block, Entry, SigEntry};
use crate::error::CoreError;
use crate::global::{PartitionId, TardisG};
use crate::local::TardisL;
use std::time::{Duration, Instant};
use tardis_bloom::BloomFilter;
use tardis_cluster::{decode_records, encode_records, Broadcast, Cluster, Dataset};
use tardis_ts::{Record, RecordId};

/// Records per persisted partition block (a partition spans a handful of
/// blocks, mirroring an HDFS file).
pub(crate) const PARTITION_BLOCK_RECORDS: usize = 2048;

/// Magic prefix of the versioned (v2) manifest layout, which appends a
/// manifest version, a delta-id high-water mark, and the sealed-delta
/// table to the legacy layout. Legacy (un-prefixed) manifests still
/// open, with zero deltas and version 0.
const MANIFEST_MAGIC_V2: &[u8; 4] = b"TDM2";

/// Synthetic partition-id space for sealed deltas: delta `i` is reported
/// as `DELTA_PID_BASE | i` in degraded-serving skip lists, quarantine
/// accounting, and query profiles, so delta failures never collide with
/// a real base partition id.
pub const DELTA_PID_BASE: u32 = 0x8000_0000;

/// Per-partition metadata kept on the master.
#[derive(Debug, Clone)]
pub struct PartitionMeta {
    /// Partition id.
    pub pid: PartitionId,
    /// Records stored.
    pub n_records: u64,
    /// DFS file holding the partition's blocks.
    pub file: String,
    /// DFS file holding the Bloom filter.
    pub bloom_file: String,
    /// Structure-only local-index size in bytes (Figure 13b).
    pub index_bytes: usize,
    /// Bloom filter size in bytes (§VI-B1's ~66 KB per partition).
    pub bloom_bytes: usize,
}

/// Metadata of one sealed delta partition: a small, immutable
/// Tardis-L written by a single ingest batch, served alongside the base
/// until a compaction pass folds it in.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeltaMeta {
    /// Monotonically increasing delta id (never reused, even across
    /// compactions).
    pub delta_id: u64,
    /// Records sealed into this delta.
    pub n_records: u64,
    /// DFS file holding the delta's clustered blocks.
    pub file: String,
    /// DFS file holding the delta's Bloom filter.
    pub bloom_file: String,
}

/// What one compaction pass did. `retired_files` are the pre-compaction
/// partition/delta files the new manifest no longer references: the
/// caller deletes them once no reader can still hold the old snapshot
/// ([`TardisIndex::compact`] deletes immediately; the resident server
/// drains old snapshot handles first).
#[derive(Debug, Clone, Default)]
pub struct CompactionOutcome {
    /// Delta records folded into the base.
    pub folded_records: u64,
    /// Sealed deltas folded (and retired).
    pub deltas_folded: usize,
    /// Base partitions rewritten at the new manifest version.
    pub partitions_rewritten: usize,
    /// Files no longer referenced by the post-compaction manifest.
    pub retired_files: Vec<String>,
}

/// Timings and sizes of a full index build.
#[derive(Debug, Clone, Default)]
pub struct BuildReport {
    /// Global-index step timings (Figure 11).
    pub global: crate::global::GlobalBuildBreakdown,
    /// Read + convert time — the step the paper singles out ("TARDIS
    /// takes 66 mins to read and convert data for 1 billion dataset,
    /// whereas the baseline takes 2007 mins", §VI-B1).
    pub read_convert: Duration,
    /// Partitioner routing + shuffle time.
    pub shuffle: Duration,
    /// Local tree + Bloom construction and persistence time.
    pub local_build: Duration,
    /// Records indexed.
    pub n_records: u64,
    /// Partitions created.
    pub n_partitions: usize,
    /// Global index size in bytes (Figure 13a).
    pub global_index_bytes: usize,
    /// Total local index size in bytes (Figure 13b).
    pub local_index_bytes: usize,
    /// Total Bloom filter bytes (Figure 12).
    pub bloom_bytes: usize,
}

impl BuildReport {
    /// End-to-end construction time.
    pub fn total_time(&self) -> Duration {
        self.global.total() + self.read_convert + self.shuffle + self.local_build
    }
}

/// The built index handle. `Clone` is cheap relative to the data it
/// references (metadata + resident filters only) and is how the
/// resident server snapshots logical index state: writers clone, mutate
/// the clone, and swap it in while readers keep the old snapshot.
#[derive(Clone)]
pub struct TardisIndex {
    config: TardisConfig,
    global: TardisG,
    parts: Vec<PartitionMeta>,
    /// In-memory Bloom filters (when `config.bloom_in_memory`).
    blooms: Vec<Option<BloomFilter>>,
    /// Sealed delta partitions awaiting compaction, ascending delta id.
    deltas: Vec<DeltaMeta>,
    /// In-memory delta Bloom filters, parallel to `deltas`. Unlike base
    /// filters these are always resident while Bloom is enabled
    /// (`bloom_in_memory` notwithstanding): they are small, immutable,
    /// and probed by *every* exact query, so a non-resident delta filter
    /// would cost one DFS read per delta per query on the hottest path.
    delta_blooms: Vec<Option<BloomFilter>>,
    /// Next delta id to assign (monotone across compactions).
    next_delta_id: u64,
    /// Manifest version, bumped by every compaction swap.
    manifest_version: u64,
    /// The original dataset file (used by the un-clustered layout to
    /// fetch raw series).
    dataset_file: String,
    /// Original dataset block size in records (for rid → block lookup).
    dataset_block_records: usize,
}

impl TardisIndex {
    /// Builds the complete index over the dataset in DFS file
    /// `dataset_file`.
    ///
    /// # Errors
    /// Propagates configuration, DFS, and representation errors.
    pub fn build(
        cluster: &Cluster,
        dataset_file: &str,
        config: &TardisConfig,
    ) -> Result<(TardisIndex, BuildReport), CoreError> {
        Self::build_profiled(cluster, dataset_file, config, &tardis_cluster::Tracer::disabled())
    }

    /// [`Self::build`] with build-phase spans accumulated in `tracer`:
    /// a `build` root with children `sample` / `stats` / `skeleton` /
    /// `pack` (the Tardis-G steps), `read-convert`, `shuffle`, and
    /// `local-build` (one nested `partition` span per partition, each
    /// carrying the worker thread that built it).
    ///
    /// # Errors
    /// Same as [`Self::build`].
    pub fn build_profiled(
        cluster: &Cluster,
        dataset_file: &str,
        config: &TardisConfig,
        tracer: &tardis_cluster::Tracer,
    ) -> Result<(TardisIndex, BuildReport), CoreError> {
        config.validate()?;
        let root = tracer.root("build");
        let mut report = BuildReport::default();

        // ---- Step 1: global index. ----
        let global = TardisG::build_traced(cluster, dataset_file, config, &root)?;
        report.global = global.breakdown;
        report.global_index_bytes = global.mem_bytes();
        let n_partitions = global.n_partitions();

        // ---- Step 2: broadcast the partitioner. ----
        let partitioner = Broadcast::new(global, report.global_index_bytes, cluster.metrics());

        // ---- Step 3: read + convert + shuffle. ----
        // Spark-style fault-tolerant tasks: when the cluster is
        // configured with a fault plan, read/convert tasks may be failed
        // or crashed and are retried transparently; only an exhausted
        // retry budget or a logical error aborts the build.
        let t0 = Instant::now();
        let read_span = root.child("read-convert");
        let block_ids = cluster.dfs().list_blocks(dataset_file)?;
        let converter = *partitioner.converter();
        let per_block: Vec<Vec<Entry>> =
            cluster
                .pool()
                .try_par_map(block_ids.clone(), |id| -> Result<Vec<Entry>, CoreError> {
                    let bytes = cluster.dfs().read_block(&id)?;
                    let records: Vec<Record> = decode_records(&bytes)?;
                    cluster.metrics().record_task();
                    records
                        .into_iter()
                        .map(|r| Ok(Entry::new(converter.sig_of(&r.ts)?, r)))
                        .collect()
                })?;
        let mut partitions_in = Vec::with_capacity(per_block.len());
        let mut n_records = 0u64;
        let mut dataset_block_records = 0usize;
        for entries in per_block {
            dataset_block_records = dataset_block_records.max(entries.len());
            n_records += entries.len() as u64;
            partitions_in.push(entries);
        }
        read_span.add("records", n_records);
        drop(read_span);
        report.read_convert = t0.elapsed();
        let t_shuffle = Instant::now();
        let shuffle_span = root.child("shuffle");
        let shuffled = Dataset::from_partitions(partitions_in).try_shuffle(
            cluster.pool(),
            cluster.metrics(),
            n_partitions,
            |e: &Entry| partitioner.partition_of(&e.sig) as usize,
        )?;
        drop(shuffle_span);
        report.shuffle = t_shuffle.elapsed();
        report.n_records = n_records;
        report.n_partitions = n_partitions;

        // ---- Step 4: per-partition local construction (mapPartition). ----
        let t1 = Instant::now();
        let local_span = root.child("local-build");
        let inputs: Vec<(PartitionId, Vec<Entry>)> = shuffled
            .into_partitions()
            .into_iter()
            .enumerate()
            .map(|(pid, entries)| (pid as PartitionId, entries))
            .collect();
        let built: Vec<(PartitionMeta, Option<BloomFilter>)> =
            cluster.pool().try_par_map(inputs, |(pid, entries)| {
                cluster.metrics().record_task();
                let part_span = local_span.child("partition");
                part_span.add("pid", pid as u64);
                part_span.add("records", entries.len() as u64);
                build_partition(cluster, config, pid, entries)
            })?;
        let mut parts = Vec::with_capacity(built.len());
        let mut blooms = Vec::with_capacity(built.len());
        for (meta, bloom) in built {
            report.local_index_bytes += meta.index_bytes;
            report.bloom_bytes += meta.bloom_bytes;
            parts.push(meta);
            blooms.push(bloom);
        }
        local_span.add("partitions", parts.len() as u64);
        drop(local_span);
        report.local_build = t1.elapsed();

        let global = partitioner.value().clone();

        Ok((
            TardisIndex {
                config: config.clone(),
                global,
                parts,
                blooms,
                deltas: Vec::new(),
                delta_blooms: Vec::new(),
                next_delta_id: 0,
                manifest_version: 0,
                dataset_file: dataset_file.to_string(),
                dataset_block_records: dataset_block_records.max(1),
            },
            report,
        ))
    }

    /// Builds the complete index with **bounded peak memory**: instead
    /// of materializing every converted record in RAM, the build spills
    /// sorted runs to the DFS, k-way merges them in global signature
    /// order, and streams each partition's clustered blocks leaf by
    /// leaf. Peak memory scales with
    /// [`SortedBuildOptions::run_budget_bytes`] plus one partition's
    /// draft tree path — not with the dataset.
    ///
    /// The output is byte-identical to [`Self::build`]: same partition
    /// files, Bloom sidecars, and metadata, and therefore identical
    /// answers on every query path.
    ///
    /// # Errors
    /// Same as [`Self::build`].
    pub fn build_sorted(
        cluster: &Cluster,
        dataset_file: &str,
        config: &TardisConfig,
        opts: &crate::build::SortedBuildOptions,
    ) -> Result<(TardisIndex, BuildReport), CoreError> {
        Self::build_sorted_profiled(
            cluster,
            dataset_file,
            config,
            opts,
            &tardis_cluster::Tracer::disabled(),
        )
    }

    /// [`Self::build_sorted`] with build-phase spans accumulated in
    /// `tracer` (same shape as [`Self::build_profiled`], with the
    /// shuffle step replaced by a `merge` span and the `read-convert`
    /// span additionally carrying the number of spilled runs).
    ///
    /// # Errors
    /// Same as [`Self::build`].
    pub fn build_sorted_profiled(
        cluster: &Cluster,
        dataset_file: &str,
        config: &TardisConfig,
        opts: &crate::build::SortedBuildOptions,
        tracer: &tardis_cluster::Tracer,
    ) -> Result<(TardisIndex, BuildReport), CoreError> {
        let out =
            crate::build::extsort::build_sorted_impl(cluster, dataset_file, config, opts, tracer)?;
        Ok((
            TardisIndex {
                config: config.clone(),
                global: out.global,
                parts: out.parts,
                blooms: out.blooms,
                deltas: Vec::new(),
                delta_blooms: Vec::new(),
                next_delta_id: 0,
                manifest_version: 0,
                dataset_file: dataset_file.to_string(),
                dataset_block_records: out.dataset_block_records,
            },
            out.report,
        ))
    }

    /// The configuration the index was built with.
    pub fn config(&self) -> &TardisConfig {
        &self.config
    }

    /// The global index.
    pub fn global(&self) -> &TardisG {
        &self.global
    }

    /// Partition metadata, indexed by pid.
    pub fn partitions(&self) -> &[PartitionMeta] {
        &self.parts
    }

    /// Number of partitions.
    pub fn n_partitions(&self) -> usize {
        self.parts.len()
    }

    /// Sealed delta partitions awaiting compaction, ascending delta id.
    pub fn deltas(&self) -> &[DeltaMeta] {
        &self.deltas
    }

    /// Number of live (uncompacted) deltas.
    pub fn n_deltas(&self) -> usize {
        self.deltas.len()
    }

    /// Current manifest version (bumped by every compaction swap).
    pub fn manifest_version(&self) -> u64 {
        self.manifest_version
    }

    /// Tests the Bloom filter of partition `pid` for a signature:
    /// `Ok(false)` means definitely absent. Reads the filter from DFS when
    /// not memory-resident.
    ///
    /// # Errors
    /// [`CoreError::UnknownPartition`] or DFS errors.
    pub fn bloom_test(
        &self,
        cluster: &Cluster,
        pid: PartitionId,
        sig_nibbles: &[u8],
    ) -> Result<bool, CoreError> {
        let meta = self
            .parts
            .get(pid as usize)
            .ok_or(CoreError::UnknownPartition { pid })?;
        if !self.config.bloom_enabled {
            // No filters exist: behave like the non-Bloom variant.
            return Ok(true);
        }
        if let Some(Some(filter)) = self.blooms.get(pid as usize) {
            return Ok(filter.contains(sig_nibbles));
        }
        // Read from DFS (small, single block).
        let blocks = cluster.dfs().list_blocks(&meta.bloom_file)?;
        let bytes = cluster.dfs().read_block(&blocks[0])?;
        let filter = BloomFilter::from_bytes(&bytes).ok_or(CoreError::Cluster(
            tardis_cluster::ClusterError::Codec {
                context: "bloom filter",
            },
        ))?;
        Ok(filter.contains(sig_nibbles))
    }

    /// Loads a partition from DFS and rebuilds its local index (the
    /// query-time "load the partition and traverse the Tardis-L" step).
    ///
    /// # Errors
    /// [`CoreError::UnknownPartition`] or DFS/decoding errors.
    pub fn load_partition(
        &self,
        cluster: &Cluster,
        pid: PartitionId,
    ) -> Result<TardisL, CoreError> {
        let meta = self
            .parts
            .get(pid as usize)
            .ok_or(CoreError::UnknownPartition { pid })?;
        // Unified accounting: one task per physical partition load, metered
        // here so single-query, batch, sibling, and range paths all agree
        // (a batch of one records exactly what a single call records).
        cluster.metrics().record_task();
        // The same spot feeds the server's hot-set detector: one access
        // per physical load, so cache-resident partitions don't count.
        cluster.metrics().record_partition_access(pid);
        if self.config.clustered {
            // Entries carry their signatures on disk: no reconversion.
            // Shared reads make a cache hit zero-copy *and* frame-walk
            // free: the payload was checksum-verified when it entered
            // the cache, so a pinned re-acquisition (two queries racing
            // on one hot partition) must not re-read or re-hash it.
            let mut blocks = Vec::new();
            for id in cluster.dfs().list_blocks(&meta.file)? {
                blocks.push(cluster.dfs().read_block_shared(&id)?);
            }
            let views: Vec<&[u8]> = blocks.iter().map(|b| b.as_slice()).collect();
            // Decodes straight into the partition's contiguous series
            // arena — no per-record `TimeSeries` allocations.
            TardisL::from_clustered_blocks(&views, &self.config)
        } else {
            // Un-clustered: load (sig, rid) pairs, then fetch raw series
            // from the original dataset via random block reads.
            let mut sig_entries: Vec<SigEntry> = Vec::with_capacity(meta.n_records as usize);
            for id in cluster.dfs().list_blocks(&meta.file)? {
                let bytes = cluster.dfs().read_block_shared(&id)?;
                sig_entries.extend(decode_records::<SigEntry>(&bytes)?);
            }
            let records = self.fetch_records(cluster, sig_entries.iter().map(|e| e.rid))?;
            let entries = sig_entries
                .into_iter()
                .zip(records)
                .map(|(se, record)| Entry::new(se.sig, record))
                .collect();
            Ok(TardisL::build(entries, &self.config, None))
        }
    }

    /// Fetches raw records by id from the original dataset file (the
    /// un-clustered layout's "expensive random I/O" refine path). Blocks
    /// are read once each even when several rids share one.
    ///
    /// # Errors
    /// DFS/decoding errors; silently skips rids beyond the dataset.
    pub fn fetch_records(
        &self,
        cluster: &Cluster,
        rids: impl Iterator<Item = RecordId>,
    ) -> Result<Vec<Record>, CoreError> {
        use std::collections::HashMap;
        let per_block = self.dataset_block_records as u64;
        let mut wanted: Vec<RecordId> = rids.collect();
        let mut by_block: HashMap<u32, Vec<RecordId>> = HashMap::new();
        for &rid in &wanted {
            by_block.entry((rid / per_block) as u32).or_default().push(rid);
        }
        let mut found: HashMap<RecordId, Record> = HashMap::new();
        for (block, rids) in by_block {
            let id = tardis_cluster::BlockId::new(self.dataset_file.clone(), block);
            let bytes = cluster.dfs().read_block(&id)?;
            let records: Vec<Record> = decode_records(&bytes)?;
            for r in records {
                if rids.contains(&r.rid) {
                    found.insert(r.rid, r);
                }
            }
        }
        // Preserve request order (duplicates allowed: cloned per request).
        wanted.retain(|rid| found.contains_key(rid));
        Ok(wanted
            .into_iter()
            .map(|rid| found.get(&rid).cloned().expect("retained"))
            .collect())
    }

    /// Appends new records to the built index incrementally (an extension
    /// beyond the paper's batch-only design): each record is routed by
    /// the existing global index, appended to its partition's DFS file,
    /// and inserted into the partition's Bloom filter, which is
    /// re-persisted. The global skeleton is *not* re-balanced — like any
    /// sampled partitioning, heavy sustained skew eventually calls for a
    /// rebuild — but counts are updated so target-node selection stays
    /// meaningful.
    ///
    /// Clustered layout only.
    ///
    /// # Errors
    /// [`CoreError::InvalidConfig`] for un-clustered indexes; conversion
    /// and DFS errors otherwise.
    pub fn insert_batch(
        &mut self,
        cluster: &Cluster,
        records: Vec<Record>,
    ) -> Result<(), CoreError> {
        if !self.config.clustered {
            return Err(CoreError::InvalidConfig {
                reason: "incremental insert requires the clustered layout".into(),
            });
        }
        let converter = *self.global.converter();
        // Route and group by partition.
        let mut by_pid: std::collections::HashMap<PartitionId, Vec<(Entry, ())>> =
            std::collections::HashMap::new();
        for record in records {
            let sig = converter.sig_of(&record.ts)?;
            let pid = self.global.partition_of(&sig);
            by_pid
                .entry(pid)
                .or_default()
                .push((Entry::new(sig, record), ()));
        }
        for (pid, entries) in by_pid {
            let meta = self
                .parts
                .get(pid as usize)
                .ok_or(CoreError::UnknownPartition { pid })?
                .clone();
            // Append one block with the new entries (clustered layout).
            let new_entries: Vec<Entry> =
                entries.iter().map(|(e, _)| e.clone()).collect();
            cluster
                .dfs()
                .append_block(&meta.file, &encode_clustered_block(&new_entries, self.config.word_len))?;
            // Update and re-persist the Bloom filter.
            if self.config.bloom_enabled {
                let mut filter = match self.blooms.get(pid as usize).and_then(Option::as_ref) {
                    Some(f) => f.clone(),
                    None => {
                        let blocks = cluster.dfs().list_blocks(&meta.bloom_file)?;
                        let bytes = cluster.dfs().read_block(&blocks[0])?;
                        BloomFilter::from_bytes(&bytes).ok_or(CoreError::Cluster(
                            tardis_cluster::ClusterError::Codec {
                                context: "bloom filter",
                            },
                        ))?
                    }
                };
                for (entry, _) in &entries {
                    filter.insert(entry.sig.nibbles());
                }
                cluster.dfs().delete_file(&meta.bloom_file)?;
                cluster
                    .dfs()
                    .append_block(&meta.bloom_file, &filter.to_bytes())?;
                if self.config.bloom_in_memory {
                    self.blooms[pid as usize] = Some(filter);
                }
            }
            // Update partition metadata.
            self.parts[pid as usize].n_records += entries.len() as u64;
        }
        Ok(())
    }

    /// Seals one ingest batch into a new immutable **delta partition**:
    /// the records get their own Tardis-L (leaf-clustered SeriesBlock
    /// arena + PAA sidecar, exactly like a base partition) and Bloom
    /// filter, written through the replicated DFS and registered in the
    /// manifest. Queries serve base ∪ deltas by merging at the answer
    /// layer until a compaction pass folds the deltas into the base.
    ///
    /// Clustered layout only.
    ///
    /// # Errors
    /// [`CoreError::InvalidConfig`] for un-clustered indexes or an empty
    /// batch; conversion and DFS errors otherwise.
    pub fn ingest_batch(
        &mut self,
        cluster: &Cluster,
        records: Vec<Record>,
    ) -> Result<DeltaMeta, CoreError> {
        let meta = self.ingest_batch_unmetered(cluster, records)?;
        cluster.metrics().record_ingest(meta.n_records);
        cluster.metrics().record_delta_sealed();
        cluster.metrics().set_deltas_active(self.deltas.len() as u64);
        Ok(meta)
    }

    /// [`Self::ingest_batch`] without the cluster-metric updates: for
    /// callers that commit the mutation in a later step (the resident
    /// server persists and swaps the snapshot first), so a failed commit
    /// never reports a mutation that is not being served.
    ///
    /// # Errors
    /// Same as [`Self::ingest_batch`].
    pub fn ingest_batch_unmetered(
        &mut self,
        cluster: &Cluster,
        records: Vec<Record>,
    ) -> Result<DeltaMeta, CoreError> {
        if !self.config.clustered {
            return Err(CoreError::InvalidConfig {
                reason: "continuous ingest requires the clustered layout".into(),
            });
        }
        if records.is_empty() {
            return Err(CoreError::InvalidConfig {
                reason: "ingest batch is empty".into(),
            });
        }
        let converter = *self.global.converter();
        let entries: Vec<Entry> = records
            .into_iter()
            .map(|r| Ok(Entry::new(converter.sig_of(&r.ts)?, r)))
            .collect::<Result<_, CoreError>>()?;
        let n_records = entries.len() as u64;
        let delta_id = self.next_delta_id;
        let file = format!("delta-{delta_id:06}");
        let bloom_file = format!("dbloom-{delta_id:06}");
        let mut bloom = self
            .config
            .bloom_enabled
            .then(|| BloomFilter::with_capacity(entries.len().max(16), self.config.bloom_fpp));
        let local = TardisL::build(entries, &self.config, bloom.as_mut());
        // Seal: entries leave the arena leaf-clustered, so reloading the
        // delta needs neither reconversion nor sidecar recomputation.
        cluster.dfs().delete_file(&file)?;
        let ordered: Vec<Entry> = local.clustered_entries();
        for chunk in ordered.chunks(PARTITION_BLOCK_RECORDS.max(1)) {
            cluster
                .dfs()
                .append_block(&file, &encode_clustered_block(chunk, self.config.word_len))?;
        }
        // Mid-seal crash window: the delta's clustered blocks are on
        // disk but neither its Bloom sidecar nor the manifest entry the
        // caller persists afterwards exist — the orphaned delta files
        // must be GC'd back to the pre-ingest state at recovery.
        cluster.crash_point("core.ingest.seal")?;
        if let Some(filter) = &bloom {
            cluster.dfs().delete_file(&bloom_file)?;
            cluster.dfs().append_block(&bloom_file, &filter.to_bytes())?;
        }
        let meta = DeltaMeta {
            delta_id,
            n_records,
            file,
            bloom_file,
        };
        self.next_delta_id += 1;
        self.deltas.push(meta.clone());
        // Delta filters stay resident even when base filters spill to
        // disk — see the `delta_blooms` field doc.
        self.delta_blooms.push(bloom);
        Ok(meta)
    }

    /// Loads delta `idx` (position in [`Self::deltas`]) from DFS and
    /// rebuilds its local index, mirroring [`Self::load_partition`] for
    /// the clustered layout. Deltas stay out of the hot-set detector —
    /// they are short-lived by design.
    ///
    /// # Errors
    /// [`CoreError::UnknownPartition`] (with the synthetic
    /// [`DELTA_PID_BASE`]-offset id) or DFS/decoding errors.
    pub fn load_delta(&self, cluster: &Cluster, idx: usize) -> Result<TardisL, CoreError> {
        let meta = self.deltas.get(idx).ok_or(CoreError::UnknownPartition {
            pid: DELTA_PID_BASE | idx as u32,
        })?;
        cluster.metrics().record_task();
        let mut blocks = Vec::new();
        for id in cluster.dfs().list_blocks(&meta.file)? {
            blocks.push(cluster.dfs().read_block_shared(&id)?);
        }
        let views: Vec<&[u8]> = blocks.iter().map(|b| b.as_slice()).collect();
        TardisL::from_clustered_blocks(&views, &self.config)
    }

    /// Tests the Bloom filter of delta `idx` for a signature:
    /// `Ok(false)` means definitely absent. Delta filters are resident
    /// whenever Bloom is enabled (sealed and reopened alike), so unlike
    /// [`Self::bloom_test`] this normally never touches the DFS; the
    /// read-from-DFS path below is a defensive fallback only.
    ///
    /// # Errors
    /// [`CoreError::UnknownPartition`] or DFS errors.
    pub fn delta_bloom_test(
        &self,
        cluster: &Cluster,
        idx: usize,
        sig_nibbles: &[u8],
    ) -> Result<bool, CoreError> {
        let meta = self.deltas.get(idx).ok_or(CoreError::UnknownPartition {
            pid: DELTA_PID_BASE | idx as u32,
        })?;
        if !self.config.bloom_enabled {
            return Ok(true);
        }
        if let Some(Some(filter)) = self.delta_blooms.get(idx) {
            return Ok(filter.contains(sig_nibbles));
        }
        let blocks = cluster.dfs().list_blocks(&meta.bloom_file)?;
        let bytes = cluster.dfs().read_block(&blocks[0])?;
        let filter = BloomFilter::from_bytes(&bytes).ok_or(CoreError::Cluster(
            tardis_cluster::ClusterError::Codec {
                context: "bloom filter",
            },
        ))?;
        Ok(filter.contains(sig_nibbles))
    }

    /// Folds every sealed delta into the base index and deletes the
    /// retired files immediately. Correct when no concurrent reader can
    /// hold the pre-compaction snapshot (CLI, tests); the resident
    /// server uses [`Self::compact_deferred`] and drains old snapshot
    /// handles before deleting.
    ///
    /// # Errors
    /// Same as [`Self::compact_deferred`], plus DFS deletion errors.
    pub fn compact(&mut self, cluster: &Cluster) -> Result<CompactionOutcome, CoreError> {
        let outcome = self.compact_deferred(cluster)?;
        Self::retire_files(cluster, &outcome.retired_files)?;
        Ok(outcome)
    }

    /// Deletes the files a compaction pass retired, consulting the
    /// `core.compact.retire` crash point before each delete.
    ///
    /// Ordering contract for persistent callers: save the
    /// post-compaction manifest (via [`Self::save_atomic`]) **before**
    /// retiring. A crash after the save leaves the old generation's
    /// files on disk but unreferenced — recovery GCs them. Retiring
    /// first would let a crash strand the *old* manifest pointing at
    /// deleted files: permanent data loss no recovery can undo.
    ///
    /// # Errors
    /// Propagates DFS deletion errors and the injected crash.
    pub fn retire_files(cluster: &Cluster, retired: &[String]) -> Result<(), CoreError> {
        for file in retired {
            cluster.crash_point("core.compact.retire")?;
            cluster.dfs().delete_file(file)?;
        }
        Ok(())
    }

    /// Folds every sealed delta into the base index: delta entries are
    /// routed through the (unchanged) global index, each affected
    /// partition is rebuilt into **new versioned files**
    /// (`part-{pid:05}.v{N}`), and the manifest version is bumped. The
    /// pre-compaction files are *not* touched — a reader holding the old
    /// snapshot keeps serving from them — and come back in
    /// [`CompactionOutcome::retired_files`] for the caller to delete
    /// once no old-snapshot reader remains ([`Dfs::delete_file`] also
    /// evicts the retired blocks from the cache and releases their pins).
    ///
    /// Rebuilds are deterministic: partitions are processed ascending,
    /// and delta entries append after base entries in delta-id order, so
    /// a quiesced replay of the same ingest/compaction sequence yields a
    /// byte-identical index.
    ///
    /// # Errors
    /// [`CoreError::InvalidConfig`] for un-clustered indexes; DFS and
    /// decoding errors otherwise.
    ///
    /// [`Dfs::delete_file`]: tardis_cluster::Dfs::delete_file
    pub fn compact_deferred(
        &mut self,
        cluster: &Cluster,
    ) -> Result<CompactionOutcome, CoreError> {
        let outcome = self.compact_deferred_unmetered(cluster)?;
        if outcome.deltas_folded > 0 {
            cluster.metrics().record_compaction(outcome.folded_records);
            cluster.metrics().set_deltas_active(self.deltas.len() as u64);
        }
        Ok(outcome)
    }

    /// [`Self::compact_deferred`] without the cluster-metric updates:
    /// for callers that commit the mutation in a later step (the
    /// resident server persists and swaps the snapshot first), so a
    /// failed commit never reports a fold that is not being served.
    ///
    /// # Errors
    /// Same as [`Self::compact_deferred`].
    pub fn compact_deferred_unmetered(
        &mut self,
        cluster: &Cluster,
    ) -> Result<CompactionOutcome, CoreError> {
        if self.deltas.is_empty() {
            return Ok(CompactionOutcome::default());
        }
        if !self.config.clustered {
            return Err(CoreError::InvalidConfig {
                reason: "compaction requires the clustered layout".into(),
            });
        }
        let version = self.manifest_version + 1;
        // Route every delta entry (ascending delta id) through the
        // global index.
        let mut routed: std::collections::BTreeMap<PartitionId, Vec<Entry>> =
            std::collections::BTreeMap::new();
        let mut folded_records = 0u64;
        for idx in 0..self.deltas.len() {
            let local = self.load_delta(cluster, idx)?;
            for entry in local.clustered_entries() {
                let pid = self.global.partition_of(&entry.sig);
                folded_records += 1;
                routed.entry(pid).or_default().push(entry);
            }
        }
        // Rebuild each affected partition at the new version (ascending
        // pid — BTreeMap order — for determinism).
        let mut retired_files = Vec::new();
        let mut partitions_rewritten = 0usize;
        for (pid, delta_entries) in routed {
            let old = self
                .parts
                .get(pid as usize)
                .ok_or(CoreError::UnknownPartition { pid })?
                .clone();
            let mut entries = self.load_partition(cluster, pid)?.clustered_entries();
            entries.extend(delta_entries);
            let part_file = format!("part-{pid:05}.v{version}");
            let bloom_file = format!("bloom-{pid:05}.v{version}");
            // Mid-swap crash window: partitions already rewritten at the
            // new version are orphans (the manifest still names the old
            // generation) — recovery GCs them back to the pre-state.
            cluster.crash_point("core.compact.swap")?;
            let (meta, resident) =
                persist_partition(cluster, &self.config, pid, entries, part_file, bloom_file)?;
            self.parts[pid as usize] = meta;
            self.blooms[pid as usize] = resident;
            if cluster.dfs().file_exists(&old.file) {
                retired_files.push(old.file);
            }
            if cluster.dfs().file_exists(&old.bloom_file) {
                retired_files.push(old.bloom_file);
            }
            partitions_rewritten += 1;
        }
        let deltas_folded = self.deltas.len();
        for delta in self.deltas.drain(..) {
            if cluster.dfs().file_exists(&delta.file) {
                retired_files.push(delta.file);
            }
            if cluster.dfs().file_exists(&delta.bloom_file) {
                retired_files.push(delta.bloom_file);
            }
        }
        self.delta_blooms.clear();
        self.manifest_version = version;
        Ok(CompactionOutcome {
            folded_records,
            deltas_folded,
            partitions_rewritten,
            retired_files,
        })
    }

    /// Persists the index manifest (configuration, global index, and
    /// partition metadata) to the DFS file `name`, so the index can be
    /// reopened with [`Self::open`] without rebuilding. Partition data and
    /// Bloom filters are already on the DFS from the build.
    ///
    /// # Errors
    /// Propagates DFS errors.
    pub fn save(&self, cluster: &Cluster, name: &str) -> Result<(), CoreError> {
        let buf = self.manifest_bytes();
        cluster.dfs().delete_file(name)?;
        cluster.dfs().append_block(name, &buf)?;
        Ok(())
    }

    /// [`Self::save`] via [`Dfs::replace_file`]: every replica of the
    /// manifest block is staged then renamed over the old copy, so a
    /// concurrent reader observes either the pre- or post-swap manifest,
    /// never a torn one. The swap is per-replica (see the
    /// [`Dfs::replace_file`] atomicity note): a crash mid-swap can leave
    /// replicas on different manifest versions, each internally
    /// consistent — which version a reopen sees then depends on replica
    /// choice. This is the swap the background compactor uses.
    ///
    /// # Errors
    /// Propagates DFS errors.
    ///
    /// [`Dfs::replace_file`]: tardis_cluster::Dfs::replace_file
    pub fn save_atomic(&self, cluster: &Cluster, name: &str) -> Result<(), CoreError> {
        cluster.dfs().replace_file(name, &self.manifest_bytes())?;
        Ok(())
    }

    /// Serializes the versioned (v2, `TDM2`-tagged) manifest.
    fn manifest_bytes(&self) -> Vec<u8> {
        use bytes::BufMut;
        let mut buf = bytes::BytesMut::new();
        buf.put_slice(MANIFEST_MAGIC_V2);
        buf.put_u64_le(self.manifest_version);
        buf.put_u64_le(self.next_delta_id);
        // Config.
        buf.put_u16_le(self.config.word_len as u16);
        buf.put_u8(self.config.initial_card_bits);
        buf.put_u64_le(self.config.g_max_size as u64);
        buf.put_u64_le(self.config.l_max_size as u64);
        buf.put_f64_le(self.config.sampling_fraction);
        buf.put_u32_le(self.config.pth as u32);
        buf.put_f64_le(self.config.bloom_fpp);
        buf.put_u8(self.config.bloom_enabled as u8);
        buf.put_u8(self.config.bloom_in_memory as u8);
        buf.put_u8(self.config.clustered as u8);
        buf.put_u64_le(self.config.seed);
        // Dataset linkage.
        put_str(&mut buf, &self.dataset_file);
        buf.put_u64_le(self.dataset_block_records as u64);
        // Global index.
        let global = self.global.to_bytes();
        buf.put_u32_le(global.len() as u32);
        buf.put_slice(&global);
        // Partitions.
        buf.put_u32_le(self.parts.len() as u32);
        for meta in &self.parts {
            buf.put_u32_le(meta.pid);
            buf.put_u64_le(meta.n_records);
            put_str(&mut buf, &meta.file);
            put_str(&mut buf, &meta.bloom_file);
            buf.put_u64_le(meta.index_bytes as u64);
            buf.put_u64_le(meta.bloom_bytes as u64);
        }
        // Deltas.
        buf.put_u32_le(self.deltas.len() as u32);
        for delta in &self.deltas {
            buf.put_u64_le(delta.delta_id);
            buf.put_u64_le(delta.n_records);
            put_str(&mut buf, &delta.file);
            put_str(&mut buf, &delta.bloom_file);
        }
        // Integrity checksum over the whole manifest.
        let checksum = tardis_bloom::fnv1a_64(&buf);
        buf.put_u64_le(checksum);
        buf.to_vec()
    }

    /// Reopens an index previously persisted with [`Self::save`].
    ///
    /// Every open resolves the manifest's **generation** first: all
    /// replicas of the manifest block are read directly, the newest
    /// checksum-valid version wins (a crash between per-replica renames
    /// can leave replicas on different versions), and losing, corrupt,
    /// or missing replicas are healed in place with the winner's bytes.
    /// Bloom filters are reloaded into memory when the saved
    /// configuration asked for residency.
    ///
    /// # Errors
    /// Propagates DFS errors; malformed manifests yield codec errors.
    pub fn open(cluster: &Cluster, name: &str) -> Result<TardisIndex, CoreError> {
        let decoded = crate::recovery::resolve_manifest(cluster, name)?;
        Self::from_decoded(cluster, decoded)
    }

    /// Runs full store recovery ([`crate::recovery::recover_store`]:
    /// manifest resolution, orphan GC, scrub) and then reopens the
    /// manifest `name` — the one-call startup path the daemon and every
    /// directory-backed CLI open use after a possible crash.
    ///
    /// # Errors
    /// Propagates recovery and open errors.
    pub fn recover(
        cluster: &Cluster,
        name: &str,
    ) -> Result<(TardisIndex, crate::recovery::RecoveryReport), CoreError> {
        let report = crate::recovery::recover_store(cluster)?;
        let index = Self::open(cluster, name)?;
        Ok((index, report))
    }

    /// Finishes an open from an already-resolved manifest: reloads the
    /// resident Bloom filters and assembles the handle.
    pub(crate) fn from_decoded(
        cluster: &Cluster,
        decoded: DecodedManifest,
    ) -> Result<TardisIndex, CoreError> {
        fn codec_err(context: &'static str) -> CoreError {
            CoreError::Cluster(tardis_cluster::ClusterError::Codec { context })
        }
        let DecodedManifest {
            config,
            global,
            parts,
            deltas,
            next_delta_id,
            manifest_version,
            dataset_file,
            dataset_block_records,
        } = decoded;
        // Reload Bloom filters when configured resident.
        let mut blooms = Vec::with_capacity(parts.len());
        for meta in &parts {
            if config.bloom_enabled && config.bloom_in_memory {
                let b = cluster.dfs().list_blocks(&meta.bloom_file)?;
                let bytes = cluster.dfs().read_block(&b[0])?;
                let filter =
                    BloomFilter::from_bytes(&bytes).ok_or_else(|| codec_err("bloom filter"))?;
                blooms.push(Some(filter));
            } else {
                blooms.push(None);
            }
        }
        // Delta filters reload resident whenever Bloom is enabled, even
        // with `bloom_in_memory` off — see the `delta_blooms` field doc.
        let mut delta_blooms = Vec::with_capacity(deltas.len());
        for meta in &deltas {
            if config.bloom_enabled {
                let b = cluster.dfs().list_blocks(&meta.bloom_file)?;
                let bytes = cluster.dfs().read_block(&b[0])?;
                let filter =
                    BloomFilter::from_bytes(&bytes).ok_or_else(|| codec_err("delta bloom"))?;
                delta_blooms.push(Some(filter));
            } else {
                delta_blooms.push(None);
            }
        }
        cluster.metrics().set_deltas_active(deltas.len() as u64);
        Ok(TardisIndex {
            config,
            global,
            parts,
            blooms,
            deltas,
            delta_blooms,
            next_delta_id,
            manifest_version,
            dataset_file,
            dataset_block_records,
        })
    }

    /// Total Bloom-filter memory currently resident (0 when filters live
    /// on disk only).
    pub fn resident_bloom_bytes(&self) -> usize {
        self.blooms
            .iter()
            .flatten()
            .map(BloomFilter::mem_bytes)
            .sum()
    }
}

/// Appends a length-prefixed UTF-8 string.
fn put_str(buf: &mut bytes::BytesMut, s: &str) {
    use bytes::BufMut;
    buf.put_u16_le(s.len() as u16);
    buf.put_slice(s.as_bytes());
}

/// A fully parsed manifest payload, independent of any live cluster
/// state: the unit manifest generation resolution compares across
/// replicas, recovery harvests file references from, and the
/// robustness proptests attack with adversarial bytes.
#[derive(Debug)]
pub(crate) struct DecodedManifest {
    pub(crate) config: TardisConfig,
    pub(crate) global: TardisG,
    pub(crate) parts: Vec<PartitionMeta>,
    pub(crate) deltas: Vec<DeltaMeta>,
    pub(crate) next_delta_id: u64,
    pub(crate) manifest_version: u64,
    pub(crate) dataset_file: String,
    pub(crate) dataset_block_records: usize,
}

impl DecodedManifest {
    /// Generation-resolution ordering key. Compaction bumps the
    /// manifest version, ingest bumps the delta high-water mark, and
    /// every persisted mutation strictly increases the pair — so the
    /// lexicographic max across replicas is the newest committed state.
    pub(crate) fn generation(&self) -> (u64, u64) {
        (self.manifest_version, self.next_delta_id)
    }

    /// Every DFS file this manifest's generation keeps alive: partition
    /// and Bloom files, sealed deltas and their filters, and the
    /// original dataset.
    pub(crate) fn referenced_files(&self) -> impl Iterator<Item = &str> {
        self.parts
            .iter()
            .flat_map(|p| [p.file.as_str(), p.bloom_file.as_str()])
            .chain(
                self.deltas
                    .iter()
                    .flat_map(|d| [d.file.as_str(), d.bloom_file.as_str()]),
            )
            .chain(std::iter::once(self.dataset_file.as_str()))
    }
}

/// Parses one manifest block payload (either layout: legacy or
/// `TDM2`-prefixed v2), verifying the trailing FNV-1a checksum first.
///
/// Decoding is allocation-safe against adversarial bytes: table counts
/// are sanity-checked against the bytes remaining *before* any reserve,
/// so a crafted header cannot make a corrupt manifest allocate more
/// than its own length.
///
/// # Errors
/// [`CoreError::Cluster`] codec errors on any malformed input.
pub(crate) fn decode_manifest(bytes: &[u8]) -> Result<DecodedManifest, CoreError> {
    use bytes::Buf;
    fn codec_err(context: &'static str) -> CoreError {
        CoreError::Cluster(tardis_cluster::ClusterError::Codec { context })
    }
    if bytes.len() < 8 {
        return Err(codec_err("manifest too short"));
    }
    let (payload, tail) = bytes.split_at(bytes.len() - 8);
    let stored = u64::from_le_bytes(tail.try_into().expect("8 bytes"));
    if tardis_bloom::fnv1a_64(payload) != stored {
        return Err(codec_err("manifest checksum mismatch"));
    }
    let mut buf = payload;
    // Versioned (v2) manifests are magic-prefixed; anything else is
    // a legacy manifest from before deltas existed.
    let v2 = buf.len() >= 4 + 8 + 8 && &buf[..4] == MANIFEST_MAGIC_V2;
    let (manifest_version, mut next_delta_id) = if v2 {
        buf.advance(4);
        (buf.get_u64_le(), buf.get_u64_le())
    } else {
        (0, 0)
    };
    if buf.len() < 2 + 1 + 8 + 8 + 8 + 4 + 8 + 3 + 8 {
        return Err(codec_err("manifest header"));
    }
    let config = TardisConfig {
        word_len: buf.get_u16_le() as usize,
        initial_card_bits: buf.get_u8(),
        g_max_size: buf.get_u64_le() as usize,
        l_max_size: buf.get_u64_le() as usize,
        sampling_fraction: buf.get_f64_le(),
        pth: buf.get_u32_le() as usize,
        bloom_fpp: buf.get_f64_le(),
        bloom_enabled: buf.get_u8() != 0,
        bloom_in_memory: buf.get_u8() != 0,
        clustered: buf.get_u8() != 0,
        seed: buf.get_u64_le(),
    };
    config.validate()?;
    let dataset_file = get_str(&mut buf).ok_or_else(|| codec_err("dataset file"))?;
    if buf.len() < 8 + 4 {
        return Err(codec_err("dataset block size"));
    }
    let dataset_block_records = buf.get_u64_le() as usize;
    let global_len = buf.get_u32_le() as usize;
    if buf.len() < global_len {
        return Err(codec_err("global index body"));
    }
    let global = TardisG::from_bytes(&buf[..global_len])?;
    buf.advance(global_len);
    if buf.len() < 4 {
        return Err(codec_err("partition table header"));
    }
    let n_parts = buf.get_u32_le() as usize;
    // Each entry occupies ≥ 32 bytes (4+8 ids/counts, two 2-byte string
    // prefixes, 16 size bytes): a count the remaining payload cannot
    // possibly hold is corruption, caught before `with_capacity`.
    if n_parts > buf.len() / 32 {
        return Err(codec_err("partition count"));
    }
    let mut parts = Vec::with_capacity(n_parts);
    for _ in 0..n_parts {
        if buf.len() < 12 {
            return Err(codec_err("partition header"));
        }
        let pid = buf.get_u32_le();
        let n_records = buf.get_u64_le();
        let file = get_str(&mut buf).ok_or_else(|| codec_err("partition file"))?;
        let bloom_file = get_str(&mut buf).ok_or_else(|| codec_err("bloom file"))?;
        if buf.len() < 16 {
            return Err(codec_err("partition sizes"));
        }
        let index_bytes = buf.get_u64_le() as usize;
        let bloom_bytes = buf.get_u64_le() as usize;
        parts.push(PartitionMeta {
            pid,
            n_records,
            file,
            bloom_file,
            index_bytes,
            bloom_bytes,
        });
    }
    let mut deltas = Vec::new();
    if v2 {
        if buf.len() < 4 {
            return Err(codec_err("delta table header"));
        }
        let n_deltas = buf.get_u32_le() as usize;
        // Same sanity cap as the partition table: ≥ 20 bytes per entry.
        if n_deltas > buf.len() / 20 {
            return Err(codec_err("delta count"));
        }
        deltas.reserve(n_deltas);
        for _ in 0..n_deltas {
            if buf.len() < 16 {
                return Err(codec_err("delta header"));
            }
            let delta_id = buf.get_u64_le();
            let n_records = buf.get_u64_le();
            let file = get_str(&mut buf).ok_or_else(|| codec_err("delta file"))?;
            let bloom_file = get_str(&mut buf).ok_or_else(|| codec_err("delta bloom file"))?;
            deltas.push(DeltaMeta {
                delta_id,
                n_records,
                file,
                bloom_file,
            });
        }
    }
    if !buf.is_empty() {
        return Err(codec_err("trailing manifest bytes"));
    }
    // Never reuse a delta id, even against a manifest whose high-water
    // mark lagged.
    next_delta_id = next_delta_id.max(deltas.iter().map(|d| d.delta_id + 1).max().unwrap_or(0));
    Ok(DecodedManifest {
        config,
        global,
        parts,
        deltas,
        next_delta_id,
        manifest_version,
        dataset_file,
        dataset_block_records,
    })
}

/// Reads a length-prefixed UTF-8 string; `None` on malformed input.
fn get_str(buf: &mut &[u8]) -> Option<String> {
    use bytes::Buf;
    if buf.len() < 2 {
        return None;
    }
    let len = buf.get_u16_le() as usize;
    if buf.len() < len {
        return None;
    }
    let s = std::str::from_utf8(&buf[..len]).ok()?.to_string();
    buf.advance(len);
    Some(s)
}

/// Builds, persists, and summarizes one partition under the default
/// (version-0) file names.
fn build_partition(
    cluster: &Cluster,
    config: &TardisConfig,
    pid: PartitionId,
    entries: Vec<Entry>,
) -> Result<(PartitionMeta, Option<BloomFilter>), CoreError> {
    let part_file = format!("part-{pid:05}");
    let bloom_file = format!("bloom-{pid:05}");
    persist_partition(cluster, config, pid, entries, part_file, bloom_file)
}

/// Builds, persists, and summarizes one partition under explicit file
/// names. Compaction rebuilds partitions into *new versioned* names
/// (`part-{pid:05}.v{N}`) so readers of the old snapshot keep serving
/// from the untouched old files until those are retired.
fn persist_partition(
    cluster: &Cluster,
    config: &TardisConfig,
    pid: PartitionId,
    entries: Vec<Entry>,
    part_file: String,
    bloom_file: String,
) -> Result<(PartitionMeta, Option<BloomFilter>), CoreError> {
    let n_records = entries.len() as u64;

    let mut bloom = config
        .bloom_enabled
        .then(|| BloomFilter::with_capacity(entries.len().max(16), config.bloom_fpp));
    let local = TardisL::build(entries, config, bloom.as_mut());
    let index_bytes = local.index_mem_bytes();
    let bloom_bytes = bloom.as_ref().map(BloomFilter::mem_bytes).unwrap_or(0);

    // Persist the partition, clustered leaf by leaf. The clustered layout
    // stores full entries — `(isaxt(b), ts, rid)` as in Figure 8 — plus a
    // per-record PAA sidecar row, so reloading a partition needs neither
    // signature reconversion nor sidecar recomputation.
    cluster.dfs().delete_file(&part_file)?;
    if config.clustered {
        let ordered: Vec<Entry> = local.clustered_entries();
        for chunk in ordered.chunks(PARTITION_BLOCK_RECORDS.max(1)) {
            cluster
                .dfs()
                .append_block(&part_file, &encode_clustered_block(chunk, config.word_len))?;
        }
        if ordered.is_empty() {
            cluster
                .dfs()
                .append_block(&part_file, &encode_clustered_block(&[], config.word_len))?;
        }
    } else {
        let ordered: Vec<SigEntry> = local
            .clustered_entries()
            .into_iter()
            .map(|e| SigEntry::new(e.sig, e.record.rid))
            .collect();
        for chunk in ordered.chunks(PARTITION_BLOCK_RECORDS.max(1)) {
            cluster.dfs().append_block(&part_file, &encode_records(chunk))?;
        }
        if ordered.is_empty() {
            cluster
                .dfs()
                .append_block(&part_file, &encode_records::<SigEntry>(&[]))?;
        }
    }
    // Persist the Bloom filter (single small block).
    if let Some(filter) = &bloom {
        cluster.dfs().delete_file(&bloom_file)?;
        cluster.dfs().append_block(&bloom_file, &filter.to_bytes())?;
    }

    let meta = PartitionMeta {
        pid,
        n_records,
        file: part_file,
        bloom_file,
        index_bytes,
        bloom_bytes,
    };
    let resident = if config.bloom_in_memory { bloom } else { None };
    Ok((meta, resident))
}
