//! kNN-Approximate query processing (§V-B, Algorithm 1).
//!
//! Three strategies of increasing candidate scope (and accuracy):
//!
//! * **Target Node Access** — route to one partition, descend Tardis-L to
//!   the *target node* (deepest node on the query's path holding ≥ k
//!   entries), refine its candidates.
//! * **One Partition Access** — use the k-th distance from the target
//!   node as a threshold, prune the whole partition's sigTree with the
//!   iSAX-T lower bound, and refine the survivors.
//! * **Multi-Partitions Access** — additionally load up to `pth` sibling
//!   partitions (the partition list of the parent node in Tardis-G) in
//!   parallel and apply the same threshold pruning to all of them.

use crate::error::CoreError;
use crate::global::PartitionId;
use crate::index::TardisIndex;
use crate::local::TardisL;
use crate::query::cascade::{refine_cascade, CascadeSink};
use crate::query::degraded::{Completeness, Degraded, DegradedPolicy};
use tardis_cluster::{Cluster, QueryProfile, Span, Tracer, WorkerPool};
use tardis_isax::SigT;
use tardis_ts::{squared_euclidean_lanes, RecordId, TimeSeries};

/// The query strategies of §V-B.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KnnStrategy {
    /// Fetch the target node's subtree only.
    TargetNode,
    /// Prune-scan the routed partition.
    OnePartition,
    /// Prune-scan up to `pth` sibling partitions in parallel.
    MultiPartition,
}

impl KnnStrategy {
    /// All strategies, in increasing candidate scope.
    pub const ALL: [KnnStrategy; 3] = [
        KnnStrategy::TargetNode,
        KnnStrategy::OnePartition,
        KnnStrategy::MultiPartition,
    ];

    /// Human-readable name matching the paper.
    pub fn name(&self) -> &'static str {
        match self {
            KnnStrategy::TargetNode => "Target Node Access",
            KnnStrategy::OnePartition => "One Partition Access",
            KnnStrategy::MultiPartition => "Multi-Partitions Access",
        }
    }
}

/// A kNN answer: neighbors plus the work done.
#[derive(Debug, Clone)]
pub struct KnnAnswer {
    /// `(distance, rid)` pairs, ascending by distance, at most `k`.
    pub neighbors: Vec<(f64, RecordId)>,
    /// Partitions loaded.
    pub partitions_loaded: usize,
    /// Candidates whose raw-series distance was *fully* computed. Does
    /// not include early-abandoned candidates — see
    /// [`Self::candidates_abandoned`].
    pub candidates_refined: usize,
    /// Candidates whose raw-series distance computation was cut off
    /// early by the current k-th distance (early abandoning). These cost
    /// a partial scan of the series, not a full refine.
    pub candidates_abandoned: usize,
}

/// Runs one kNN-approximate query.
///
/// # Errors
/// Propagates conversion and DFS errors. `k == 0` yields an empty answer.
pub fn knn_approximate(
    index: &TardisIndex,
    cluster: &Cluster,
    query: &TimeSeries,
    k: usize,
    strategy: KnnStrategy,
) -> Result<KnnAnswer, CoreError> {
    Ok(knn_approximate_profiled(index, cluster, query, k, strategy, &Tracer::disabled())?.0)
}

/// Runs one kNN-approximate query and returns its [`QueryProfile`]
/// alongside the answer. Span records (`knn` → `route` / `load` /
/// `prune` / `refine`, plus one `sibling` subtree per sibling partition
/// scanned) accumulate in `tracer`; with a disabled tracer the profile
/// still carries the work counters but an empty span tree.
///
/// # Errors
/// Propagates conversion and DFS errors. `k == 0` yields an empty answer.
pub fn knn_approximate_profiled(
    index: &TardisIndex,
    cluster: &Cluster,
    query: &TimeSeries,
    k: usize,
    strategy: KnnStrategy,
    tracer: &Tracer,
) -> Result<(KnnAnswer, QueryProfile), CoreError> {
    let root = tracer.root("knn");
    let root_id = root.id();
    let (answer, mut profile) = knn_impl(index, cluster, query, k, strategy, &root)?;
    drop(root);
    if let Some(id) = root_id {
        profile.spans = tracer.span_tree_under(id);
    }
    Ok((answer, profile))
}

/// The strategy dispatch, opening its phase spans under `root` (which is
/// the query span itself — exact-kNN reuses this with a child span so the
/// seed phase nests under its own root).
pub(crate) fn knn_impl(
    index: &TardisIndex,
    cluster: &Cluster,
    query: &TimeSeries,
    k: usize,
    strategy: KnnStrategy,
    root: &Span,
) -> Result<(KnnAnswer, QueryProfile), CoreError> {
    if k == 0 {
        return Ok((
            KnnAnswer {
                neighbors: Vec::new(),
                partitions_loaded: 0,
                candidates_refined: 0,
                candidates_abandoned: 0,
            },
            QueryProfile::default(),
        ));
    }
    // Step 1: route — convert the query and traverse Tardis-G. The plan
    // is global-only: every partition this query can touch is known
    // before any partition load (the shared-scan batch engine relies on
    // exactly this property).
    let route_span = root.child("route");
    let plan = plan_knn(index, query, strategy)?;
    drop(route_span);

    // Step 2: load the primary partition.
    let load_span = root.child("load");
    let primary = index.load_partition(cluster, plan.primary)?;
    load_span.add("partitions_loaded", 1);
    drop(load_span);
    let mut loaded_pids: Vec<PartitionId> = vec![plan.primary];

    // Step 3: target-node refine, then (strategy-dependent) a threshold
    // prune-scan of the primary partition.
    let PrimaryScan {
        mut heap,
        mut stats,
        threshold,
    } = scan_primary(
        &primary,
        query,
        &plan,
        k,
        strategy,
        Some(cluster.pool()),
        root,
    )?;

    // Step 4 (Multi-Partitions only): load + scan siblings in parallel;
    // merge their survivors in ascending-pid order (`plan.siblings` is
    // sorted), which fixes the tie-breaking deterministically.
    if !plan.siblings.is_empty() {
        type SiblingScan = Result<(Vec<(f64, RecordId)>, RefineStats, PartitionId), CoreError>;
        let sibling_results: Vec<SiblingScan> =
            cluster.pool().par_map(plan.siblings.clone(), |sib| {
                let sib_span = root.child("sibling");
                sib_span.add("pid", sib as u64);
                let load_span = sib_span.child("load");
                let local = index.load_partition(cluster, sib)?;
                load_span.add("partitions_loaded", 1);
                drop(load_span);
                // Already inside a pool task: the cascade runs inline
                // (nested fan-out would oversubscribe; results are
                // identical either way by construction).
                let (neighbors, stats) =
                    scan_sibling(&local, query, &plan, k, threshold, None, &sib_span)?;
                Ok((neighbors, stats, sib))
            });
        for result in sibling_results {
            let (neighbors, sib_stats, sib) = result?;
            loaded_pids.push(sib);
            stats += sib_stats;
            for (d, rid) in neighbors {
                heap.push(d, rid);
            }
        }
    }

    // Step 5: sealed deltas, merged at the answer layer. Deltas are
    // scanned sequentially in ascending delta order so the heap's push
    // sequence — and therefore every tie-break — is deterministic.
    for idx in 0..index.n_deltas() {
        let delta_span = root.child("delta");
        delta_span.add("delta", idx as u64);
        let load_span = delta_span.child("load");
        let local = index.load_delta(cluster, idx)?;
        load_span.add("partitions_loaded", 1);
        drop(load_span);
        stats += scan_delta(
            &local,
            query,
            &plan,
            k,
            strategy,
            &mut heap,
            Some(cluster.pool()),
            &delta_span,
        )?;
        loaded_pids.push(crate::index::DELTA_PID_BASE | idx as u32);
    }

    loaded_pids.sort_unstable();
    let profile = QueryProfile {
        partitions_loaded: loaded_pids.len(),
        partition_ids: loaded_pids.iter().map(|&p| p as u64).collect(),
        candidates_pruned: stats.pruned as u64,
        candidates_refined: stats.refined as u64,
        candidates_abandoned: stats.abandoned as u64,
        lanes_pruned_paa: stats.paa_pruned as u64,
        refine_block_candidates: stats.block as u64,
        ..QueryProfile::default()
    };
    Ok((
        KnnAnswer {
            neighbors: heap
                .into_sorted()
                .into_iter()
                .map(|(d, rid)| (d.sqrt(), rid))
                .collect(),
            partitions_loaded: profile.partitions_loaded,
            candidates_refined: stats.refined,
            candidates_abandoned: stats.abandoned,
        },
        profile,
    ))
}

/// Per-delta kernel: applies the query's strategy to one sealed delta,
/// pushing survivors straight into the shared heap. Target Node Access
/// refines the delta's own target node (full-resolution distances, like
/// the primary's); the pruning strategies prune-scan the delta with the
/// heap's current k-th distance — sequential delta order keeps the
/// threshold evolution deterministic.
#[allow(clippy::too_many_arguments)]
pub(crate) fn scan_delta(
    local: &TardisL,
    query: &TimeSeries,
    plan: &KnnPlan,
    k: usize,
    strategy: KnnStrategy,
    heap: &mut TopK,
    pool: Option<&WorkerPool>,
    parent: &Span,
) -> Result<RefineStats, CoreError> {
    if strategy == KnnStrategy::TargetNode {
        let refine_span = parent.child("refine");
        let mut stats = RefineStats::default();
        let target = local.target_node(&plan.sig, k);
        let block = local.block();
        for idx in local.candidates_under(target) {
            let row = block.series(idx as usize);
            if row.len() != query.len() {
                stats.abandoned += 1;
                stats.block += 1;
                continue;
            }
            let d = squared_euclidean_lanes(query.values(), row);
            heap.push(d, block.rid(idx as usize));
            stats.refined += 1;
            stats.block += 1;
        }
        refine_span.add("candidates_refined", stats.refined as u64);
        return Ok(stats);
    }
    let threshold = heap.kth_distance().sqrt();
    refine_partition(local, query, &plan.paa, plan.n, threshold, heap, pool, parent)
}

/// Runs one kNN-approximate query under a degraded-serving
/// [`DegradedPolicy`]: partitions with no readable replicas are skipped
/// (`BestEffort`) or fail the query (`FailFast`). A skipped primary
/// leaves the candidate scope to the surviving siblings (the heap starts
/// empty with an unbounded threshold); skipped siblings simply shrink
/// the scope. The [`Completeness`] lists every skipped partition, and
/// `exact` holds only when nothing was skipped (the answer then equals
/// fault-free execution bit for bit).
///
/// # Errors
/// Same as [`knn_approximate`], plus
/// [`CoreError::PartitionUnavailable`] under `FailFast` for a
/// quarantined partition.
pub fn knn_approximate_degraded(
    index: &TardisIndex,
    cluster: &Cluster,
    query: &TimeSeries,
    k: usize,
    strategy: KnnStrategy,
    policy: DegradedPolicy,
) -> Result<Degraded<KnnAnswer>, CoreError> {
    Ok(knn_approximate_degraded_profiled(index, cluster, query, k, strategy, policy)?.0)
}

/// [`knn_approximate_degraded`] plus the query's [`QueryProfile`]
/// (`partitions_skipped` counts the degraded skips; spans are not
/// collected on this path).
///
/// # Errors
/// Same as [`knn_approximate_degraded`].
pub fn knn_approximate_degraded_profiled(
    index: &TardisIndex,
    cluster: &Cluster,
    query: &TimeSeries,
    k: usize,
    strategy: KnnStrategy,
    policy: DegradedPolicy,
) -> Result<(Degraded<KnnAnswer>, QueryProfile), CoreError> {
    if k == 0 {
        return Ok((
            Degraded {
                answer: KnnAnswer {
                    neighbors: Vec::new(),
                    partitions_loaded: 0,
                    candidates_refined: 0,
                    candidates_abandoned: 0,
                },
                completeness: Completeness::complete(0),
            },
            QueryProfile::default(),
        ));
    }
    let plan = plan_knn(index, query, strategy)?;
    let span = Span::noop();
    let mut skipped: Vec<u32> = Vec::new();
    let mut loaded_pids: Vec<PartitionId> = Vec::new();
    let (mut heap, mut stats, threshold) =
        match index.load_partition_degraded(cluster, plan.primary, policy)? {
            Some(primary) => {
                loaded_pids.push(plan.primary);
                let PrimaryScan {
                    heap,
                    stats,
                    threshold,
                } = scan_primary(&primary, query, &plan, k, strategy, Some(cluster.pool()), &span)?;
                (heap, stats, threshold)
            }
            None => {
                skipped.push(plan.primary);
                (TopK::new(k), RefineStats::default(), f64::INFINITY)
            }
        };
    if !plan.siblings.is_empty() {
        type SibScan = Result<Option<(Vec<(f64, RecordId)>, RefineStats)>, CoreError>;
        let results: Vec<SibScan> = cluster.pool().par_map(plan.siblings.clone(), |sib| {
            match index.load_partition_degraded(cluster, sib, policy)? {
                // Already inside a pool task: run the cascade inline.
                Some(local) => {
                    scan_sibling(&local, query, &plan, k, threshold, None, &span).map(Some)
                }
                None => Ok(None),
            }
        });
        // `par_map` preserves input order, and `plan.siblings` is
        // ascending — the same merge order the fail-fast path uses.
        for (&sib, result) in plan.siblings.iter().zip(results) {
            match result? {
                Some((neighbors, sib_stats)) => {
                    loaded_pids.push(sib);
                    stats += sib_stats;
                    for (d, rid) in neighbors {
                        heap.push(d, rid);
                    }
                }
                None => skipped.push(sib),
            }
        }
    }
    // Sealed deltas, merged sequentially like the fail-fast path; a
    // delta with no readable replicas is skipped under the synthetic
    // `DELTA_PID_BASE | idx` marker.
    for idx in 0..index.n_deltas() {
        let marker = crate::index::DELTA_PID_BASE | idx as u32;
        match index.load_delta_degraded(cluster, idx, policy)? {
            Some(local) => {
                stats += scan_delta(
                    &local,
                    query,
                    &plan,
                    k,
                    strategy,
                    &mut heap,
                    Some(cluster.pool()),
                    &span,
                )?;
                loaded_pids.push(marker);
            }
            None => skipped.push(marker),
        }
    }
    loaded_pids.sort_unstable();
    let exact = skipped.is_empty();
    let completeness = Completeness::from_parts(loaded_pids.len(), skipped, exact);
    let profile = QueryProfile {
        partitions_loaded: loaded_pids.len(),
        partition_ids: loaded_pids.iter().map(|&p| p as u64).collect(),
        candidates_pruned: stats.pruned as u64,
        candidates_refined: stats.refined as u64,
        candidates_abandoned: stats.abandoned as u64,
        lanes_pruned_paa: stats.paa_pruned as u64,
        refine_block_candidates: stats.block as u64,
        partitions_skipped: completeness.partitions_skipped.len() as u64,
        ..QueryProfile::default()
    };
    Ok((
        Degraded {
            answer: KnnAnswer {
                neighbors: heap
                    .into_sorted()
                    .into_iter()
                    .map(|(d, rid)| (d.sqrt(), rid))
                    .collect(),
                partitions_loaded: profile.partitions_loaded,
                candidates_refined: stats.refined,
                candidates_abandoned: stats.abandoned,
            },
            completeness,
        },
        profile,
    ))
}

/// A kNN query's global-only execution plan: the signature, PAA, and the
/// complete set of partitions the query will touch, computed without a
/// single partition load. The sequential path and the shared-scan batch
/// engine both execute from this plan, so their partition sets — and
/// therefore their answers — agree by construction.
pub(crate) struct KnnPlan {
    /// iSAX-T signature of the query.
    pub(crate) sig: SigT,
    /// PAA coefficients of the query.
    pub(crate) paa: Vec<f64>,
    /// Query length in points.
    pub(crate) n: usize,
    /// The partition Tardis-G routes the query to.
    pub(crate) primary: PartitionId,
    /// Sibling partitions to scan (Multi-Partitions only), ascending.
    pub(crate) siblings: Vec<PartitionId>,
}

/// Computes a query's [`KnnPlan`] from the global index alone.
///
/// Algorithm 1 lines 4–7 for Multi-Partitions: the sibling partition
/// list (the parent node's partitions), capped at `pth`. Siblings are
/// ranked by the iSAX-T lower bound between the query PAA and each
/// partition (mindist ascending, pid tiebreak) so the query visits its
/// *nearest* siblings — a query-independent choice here would load the
/// same subset for every query routed to this parent. The final list is
/// ascending-pid for a deterministic load and merge order.
pub(crate) fn plan_knn(
    index: &TardisIndex,
    query: &TimeSeries,
    strategy: KnnStrategy,
) -> Result<KnnPlan, CoreError> {
    let converter = index.global().converter();
    let sig = converter.sig_of(query)?;
    let paa = converter.paa_of(query)?;
    let n = query.len();
    let primary = index.global().partition_of(&sig);
    let siblings = if strategy == KnnStrategy::MultiPartition {
        let mut pid_list = index.global().sibling_partitions(&sig);
        pid_list.retain(|&p| p != primary);
        let cap = index.config().pth.saturating_sub(1);
        if pid_list.len() > cap {
            let bounds = index.global().partition_lower_bounds(&paa, n, &pid_list)?;
            let mut ranked: Vec<(f64, PartitionId)> =
                bounds.into_iter().zip(pid_list.iter().copied()).collect();
            ranked.sort_by(|a, b| {
                a.0.partial_cmp(&b.0)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(a.1.cmp(&b.1))
            });
            pid_list = ranked.into_iter().take(cap).map(|(_, p)| p).collect();
            pid_list.sort_unstable();
        }
        pid_list
    } else {
        Vec::new()
    };
    Ok(KnnPlan {
        sig,
        paa,
        n,
        primary,
        siblings,
    })
}

/// What the primary-partition kernel produced: the query's heap so far,
/// its candidate accounting, and the (un-squared) threshold taken from
/// the target node's k-th distance.
pub(crate) struct PrimaryScan {
    pub(crate) heap: TopK,
    pub(crate) stats: RefineStats,
    pub(crate) threshold: f64,
}

/// Per-partition kernel for the routed (primary) partition: descend to
/// the target node and refine its candidates (`refine` span), then — for
/// One-Partition and Multi-Partitions — prune-scan the whole partition
/// with the k-th distance threshold.
pub(crate) fn scan_primary(
    primary: &TardisL,
    query: &TimeSeries,
    plan: &KnnPlan,
    k: usize,
    strategy: KnnStrategy,
    pool: Option<&WorkerPool>,
    parent: &Span,
) -> Result<PrimaryScan, CoreError> {
    let mut heap = TopK::new(k);
    let mut stats = RefineStats::default();
    {
        // Target-node refine: every candidate gets a full-resolution
        // distance (no bound exists yet), via the lane kernel over the
        // block arena.
        let refine_span = parent.child("refine");
        let target = primary.target_node(&plan.sig, k);
        let block = primary.block();
        for idx in primary.candidates_under(target) {
            let row = block.series(idx as usize);
            if row.len() != query.len() {
                stats.abandoned += 1;
                stats.block += 1;
                continue;
            }
            let d = squared_euclidean_lanes(query.values(), row);
            heap.push(d, block.rid(idx as usize));
            stats.refined += 1;
            stats.block += 1;
        }
        refine_span.add("candidates_refined", stats.refined as u64);
    }
    let threshold = heap.kth_distance().sqrt();
    if strategy != KnnStrategy::TargetNode {
        stats += refine_partition(
            primary, query, &plan.paa, plan.n, threshold, &mut heap, pool, parent,
        )?;
    }
    Ok(PrimaryScan {
        heap,
        stats,
        threshold,
    })
}

/// Per-partition kernel for one sibling partition: a fresh heap seeded
/// with the primary scan's threshold (so early-abandon kicks in
/// immediately), prune-scanned under `parent`. Returns the sibling's
/// surviving neighbors sorted ascending, ready to merge.
pub(crate) fn scan_sibling(
    local: &TardisL,
    query: &TimeSeries,
    plan: &KnnPlan,
    k: usize,
    threshold: f64,
    pool: Option<&WorkerPool>,
    parent: &Span,
) -> Result<(Vec<(f64, RecordId)>, RefineStats), CoreError> {
    let mut local_heap = TopK::new(k);
    local_heap.force_threshold(threshold * threshold);
    let stats = refine_partition(
        local,
        query,
        &plan.paa,
        plan.n,
        threshold,
        &mut local_heap,
        pool,
        parent,
    )?;
    Ok((local_heap.into_sorted(), stats))
}

/// Candidate-level accounting for one prune-scan + refine pass. The
/// `pruned` / `paa_pruned` / `refined` / `abandoned` counters are
/// disjoint: a candidate is node-pruned, PAA-prefiltered, fully refined,
/// or early-abandoned — exactly one. `block` counts the candidates that
/// entered the lane/block kernels (= `refined` + `abandoned`).
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct RefineStats {
    /// Fully computed raw-series distances.
    pub(crate) refined: usize,
    /// Distance computations cut off early by the k-th distance.
    pub(crate) abandoned: usize,
    /// Candidates eliminated by the node-level lower bound before any
    /// per-candidate work.
    pub(crate) pruned: usize,
    /// Candidates eliminated by the PAA lower-bound pre-filter.
    pub(crate) paa_pruned: usize,
    /// Candidates that entered the lane/block distance kernels.
    pub(crate) block: usize,
}

impl std::ops::AddAssign for RefineStats {
    fn add_assign(&mut self, rhs: RefineStats) {
        self.refined += rhs.refined;
        self.abandoned += rhs.abandoned;
        self.pruned += rhs.pruned;
        self.paa_pruned += rhs.paa_pruned;
        self.block += rhs.block;
    }
}

/// Adapts the kNN [`TopK`] heap to the cascade: the abandon bound is the
/// live k-th squared distance, tightening as neighbors arrive.
struct HeapSink<'a>(&'a mut TopK);

impl CascadeSink for HeapSink<'_> {
    fn bound_sq(&self) -> f64 {
        self.0.kth_distance()
    }
    fn accept(&mut self, rid: RecordId, d_sq: f64) {
        self.0.push(d_sq, rid);
    }
}

/// Prune-scans one partition with the lower-bound threshold and runs the
/// survivors through the refine cascade (PAA pre-filter → block
/// early-abandon kernel) into the heap, under `prune` / `refine` spans of
/// `parent`.
#[allow(clippy::too_many_arguments)]
pub(crate) fn refine_partition(
    local: &TardisL,
    query: &TimeSeries,
    paa: &[f64],
    n: usize,
    threshold: f64,
    heap: &mut TopK,
    pool: Option<&WorkerPool>,
    parent: &Span,
) -> Result<RefineStats, CoreError> {
    let prune_span = parent.child("prune");
    let candidates = local.prune_scan(paa, n, threshold)?;
    let mut stats = RefineStats {
        pruned: local.len().saturating_sub(candidates.len()),
        ..RefineStats::default()
    };
    prune_span.add("candidates_pruned", stats.pruned as u64);
    drop(prune_span);
    let refine_span = parent.child("refine");
    let mut sink = HeapSink(heap);
    let cascade = refine_cascade(local.block(), query, paa, candidates, pool, &mut sink);
    stats.refined = cascade.refined;
    stats.abandoned = cascade.abandoned;
    stats.paa_pruned = cascade.paa_pruned;
    stats.block = cascade.block_candidates;
    refine_span.add("lanes_pruned_paa", stats.paa_pruned as u64);
    refine_span.add("refine_block_candidates", stats.block as u64);
    refine_span.add("candidates_refined", stats.refined as u64);
    refine_span.add("candidates_abandoned", stats.abandoned as u64);
    Ok(stats)
}

/// A bounded max-heap keeping the k smallest (distance², rid) pairs.
/// Rid-unique: the same record pushed twice (the target-node refine and a
/// later partition scan overlap) counts once.
pub(crate) struct TopK {
    k: usize,
    // Max-heap by distance: the root is the current k-th best.
    heap: std::collections::BinaryHeap<HeapItem>,
    members: std::collections::HashSet<RecordId>,
    forced_threshold: Option<f64>,
}

struct HeapItem(f64, RecordId);

impl PartialEq for HeapItem {
    fn eq(&self, other: &Self) -> bool {
        self.0 == other.0 && self.1 == other.1
    }
}
impl Eq for HeapItem {}
impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0
            .partial_cmp(&other.0)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(self.1.cmp(&other.1))
    }
}

impl TopK {
    pub(crate) fn new(k: usize) -> TopK {
        TopK {
            k,
            heap: std::collections::BinaryHeap::with_capacity(k + 1),
            members: std::collections::HashSet::with_capacity(k + 1),
            forced_threshold: None,
        }
    }

    /// Caps the effective k-th distance from outside (used to seed sibling
    /// scans with the primary partition's threshold).
    pub(crate) fn force_threshold(&mut self, distance_sq: f64) {
        self.forced_threshold = Some(distance_sq);
    }

    pub(crate) fn push(&mut self, distance_sq: f64, rid: RecordId) {
        if self.members.contains(&rid) {
            return;
        }
        if self.heap.len() < self.k {
            self.heap.push(HeapItem(distance_sq, rid));
            self.members.insert(rid);
        } else if let Some(top) = self.heap.peek() {
            if distance_sq < top.0 {
                let evicted = self.heap.pop().expect("non-empty");
                self.members.remove(&evicted.1);
                self.heap.push(HeapItem(distance_sq, rid));
                self.members.insert(rid);
            }
        }
    }

    /// Squared distance of the current k-th best (infinite until k items
    /// arrive, unless a threshold was forced).
    pub(crate) fn kth_distance(&self) -> f64 {
        let natural = if self.heap.len() < self.k {
            f64::INFINITY
        } else {
            self.heap.peek().map(|i| i.0).unwrap_or(f64::INFINITY)
        };
        match self.forced_threshold {
            Some(f) => natural.min(f),
            None => natural,
        }
    }

    pub(crate) fn into_sorted(self) -> Vec<(f64, RecordId)> {
        let mut v: Vec<(f64, RecordId)> =
            self.heap.into_iter().map(|HeapItem(d, r)| (d, r)).collect();
        v.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TardisConfig;
    use crate::index::TardisIndex;
    use tardis_cluster::{encode_records, ClusterConfig};
    use tardis_ts::{squared_euclidean, Record};

    fn series(rid: u64) -> TimeSeries {
        let mut x = rid.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut acc = 0.0f32;
        let mut v = Vec::with_capacity(64);
        for _ in 0..64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            acc += ((x >> 40) as f32 / (1u32 << 24) as f32) - 0.5;
            v.push(acc);
        }
        tardis_ts::z_normalize_in_place(&mut v);
        TimeSeries::new(v)
    }

    fn build_index(n: u64) -> (Cluster, TardisIndex) {
        let cluster = Cluster::new(ClusterConfig {
            n_workers: 4,
            ..ClusterConfig::default()
        })
        .unwrap();
        let blocks: Vec<Vec<u8>> = (0..n)
            .collect::<Vec<u64>>()
            .chunks(100)
            .map(|chunk| {
                let records: Vec<Record> =
                    chunk.iter().map(|&rid| Record::new(rid, series(rid))).collect();
                encode_records(&records)
            })
            .collect();
        cluster.dfs().write_blocks("data", blocks).unwrap();
        let config = TardisConfig {
            g_max_size: 150,
            l_max_size: 30,
            sampling_fraction: 0.5,
            pth: 5,
            ..TardisConfig::default()
        };
        let (index, _) = TardisIndex::build(&cluster, "data", &config).unwrap();
        (cluster, index)
    }

    fn brute_force(n: u64, q: &TimeSeries, k: usize) -> Vec<(f64, u64)> {
        let mut all: Vec<(f64, u64)> = (0..n)
            .map(|rid| {
                (
                    squared_euclidean(q.values(), series(rid).values()).sqrt(),
                    rid,
                )
            })
            .collect();
        all.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        all.truncate(k);
        all
    }

    #[test]
    fn returns_k_sorted_neighbors() {
        let (cluster, index) = build_index(600);
        let q = series(7);
        for strategy in KnnStrategy::ALL {
            let ans = knn_approximate(&index, &cluster, &q, 10, strategy).unwrap();
            assert_eq!(ans.neighbors.len(), 10, "{strategy:?}");
            for w in ans.neighbors.windows(2) {
                assert!(w[0].0 <= w[1].0, "{strategy:?} not sorted");
            }
        }
    }

    #[test]
    fn member_query_finds_itself_first() {
        let (cluster, index) = build_index(500);
        let q = series(123);
        for strategy in KnnStrategy::ALL {
            let ans = knn_approximate(&index, &cluster, &q, 5, strategy).unwrap();
            assert_eq!(ans.neighbors[0].1, 123, "{strategy:?}");
            assert!(ans.neighbors[0].0 < 1e-6);
        }
    }

    #[test]
    fn approximate_distances_lower_bounded_by_ground_truth() {
        let (cluster, index) = build_index(500);
        let q = series(42);
        let truth = brute_force(500, &q, 10);
        for strategy in KnnStrategy::ALL {
            let ans = knn_approximate(&index, &cluster, &q, 10, strategy).unwrap();
            for (j, (d, _)) in ans.neighbors.iter().enumerate() {
                assert!(
                    *d + 1e-9 >= truth[j].0,
                    "{strategy:?} rank {j}: {d} < truth {}",
                    truth[j].0
                );
            }
        }
    }

    #[test]
    fn wider_strategies_never_do_worse() {
        // Candidate scope grows TargetNode ⊆ OnePartition ⊆ MultiPartition,
        // so the summed distance of the answer set must not increase.
        let (cluster, index) = build_index(800);
        let score = |s: KnnStrategy, q: &TimeSeries| -> f64 {
            knn_approximate(&index, &cluster, q, 20, s)
                .unwrap()
                .neighbors
                .iter()
                .map(|(d, _)| d)
                .sum()
        };
        for rid in [3u64, 77, 310] {
            let q = series(rid);
            let tn = score(KnnStrategy::TargetNode, &q);
            let op = score(KnnStrategy::OnePartition, &q);
            let mp = score(KnnStrategy::MultiPartition, &q);
            assert!(op <= tn + 1e-6, "rid {rid}: one-partition {op} > target {tn}");
            assert!(mp <= op + 1e-6, "rid {rid}: multi {mp} > one {op}");
        }
    }

    #[test]
    fn multi_partition_loads_more_partitions() {
        let (cluster, index) = build_index(900);
        let q = series(11);
        let single = knn_approximate(&index, &cluster, &q, 10, KnnStrategy::OnePartition).unwrap();
        let multi = knn_approximate(&index, &cluster, &q, 10, KnnStrategy::MultiPartition).unwrap();
        assert_eq!(single.partitions_loaded, 1);
        assert!(multi.partitions_loaded >= single.partitions_loaded);
        // pth bound respected.
        assert!(multi.partitions_loaded <= index.config().pth);
    }

    #[test]
    fn k_zero_is_empty() {
        let (cluster, index) = build_index(200);
        let ans =
            knn_approximate(&index, &cluster, &series(0), 0, KnnStrategy::TargetNode).unwrap();
        assert!(ans.neighbors.is_empty());
        assert_eq!(ans.partitions_loaded, 0);
    }

    #[test]
    fn k_larger_than_partition_still_answers() {
        let (cluster, index) = build_index(300);
        let ans =
            knn_approximate(&index, &cluster, &series(5), 250, KnnStrategy::MultiPartition)
                .unwrap();
        assert!(!ans.neighbors.is_empty());
        assert!(ans.neighbors.len() <= 250);
    }

    #[test]
    fn sibling_selection_is_query_dependent() {
        // Regression for the fixed-seed sibling shuffle: Multi-Partitions
        // Access used to truncate every query's sibling list with the
        // same seeded permutation, so two queries routed to the same
        // parent (and the same primary partition) always loaded the
        // *identical* sibling subset. With lower-bound ranking, the
        // subset follows the query.
        let cluster = Cluster::new(ClusterConfig {
            n_workers: 4,
            ..ClusterConfig::default()
        })
        .unwrap();
        let n = 2000u64;
        let blocks: Vec<Vec<u8>> = (0..n)
            .collect::<Vec<u64>>()
            .chunks(100)
            .map(|chunk| {
                let records: Vec<Record> =
                    chunk.iter().map(|&rid| Record::new(rid, series(rid))).collect();
                encode_records(&records)
            })
            .collect();
        cluster.dfs().write_blocks("data", blocks).unwrap();
        let config = TardisConfig {
            g_max_size: 100,
            l_max_size: 30,
            sampling_fraction: 0.5,
            pth: 3, // cap of 2 siblings → truncation bites often
            ..TardisConfig::default()
        };
        let (index, _) = TardisIndex::build(&cluster, "data", &config).unwrap();
        let cap = config.pth - 1;

        // Group queries by (parent's partition list, own partition): the
        // old code loaded one fixed sibling subset per such group.
        use std::collections::HashMap;
        let mut groups: HashMap<(Vec<u32>, u32), Vec<u64>> = HashMap::new();
        for rid in 0..500u64 {
            let q = series(rid);
            let sig = index.global().converter().sig_of(&q).unwrap();
            let own = index.global().partition_of(&sig);
            let sibs = index.global().sibling_partitions(&sig);
            let others = sibs.iter().filter(|&&p| p != own).count();
            if others > cap {
                groups.entry((sibs, own)).or_default().push(rid);
            }
        }
        let candidates: Vec<&Vec<u64>> = groups.values().filter(|v| v.len() >= 2).collect();
        assert!(
            !candidates.is_empty(),
            "dataset produced no truncated sibling group with ≥ 2 queries"
        );

        let loaded_siblings = |rid: u64| -> (Vec<u64>, u64) {
            let q = series(rid);
            let sig = index.global().converter().sig_of(&q).unwrap();
            let own = index.global().partition_of(&sig) as u64;
            let (_, profile) = knn_approximate_profiled(
                &index,
                &cluster,
                &q,
                5,
                KnnStrategy::MultiPartition,
                &tardis_cluster::Tracer::disabled(),
            )
            .unwrap();
            let sibs: Vec<u64> =
                profile.partition_ids.iter().copied().filter(|&p| p != own).collect();
            (sibs, own)
        };

        // At least one group must show two queries loading different
        // sibling subsets — impossible under the old fixed-seed shuffle.
        let mut found_different = false;
        for rids in &candidates {
            let mut seen: std::collections::HashSet<Vec<u64>> = std::collections::HashSet::new();
            for &rid in rids.iter() {
                seen.insert(loaded_siblings(rid).0);
            }
            if seen.len() > 1 {
                found_different = true;
                break;
            }
        }
        assert!(
            found_different,
            "every same-parent same-primary query group loaded one sibling subset"
        );

        // And the chosen siblings are exactly the lowest-lower-bound
        // ones (mindist ascending, pid tiebreak).
        let rid = candidates[0][0];
        let q = series(rid);
        let sig = index.global().converter().sig_of(&q).unwrap();
        let paa = index.global().converter().paa_of(&q).unwrap();
        let own = index.global().partition_of(&sig);
        let mut others: Vec<u32> = index
            .global()
            .sibling_partitions(&sig)
            .into_iter()
            .filter(|&p| p != own)
            .collect();
        let bounds = index
            .global()
            .partition_lower_bounds(&paa, q.len(), &others)
            .unwrap();
        let mut ranked: Vec<(f64, u32)> =
            bounds.into_iter().zip(others.drain(..)).collect();
        ranked.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then(a.1.cmp(&b.1)));
        let mut expected: Vec<u64> =
            ranked.into_iter().take(cap).map(|(_, p)| p as u64).collect();
        expected.sort_unstable();
        let (got, _) = loaded_siblings(rid);
        assert_eq!(got, expected, "rid {rid}: not the nearest siblings");
    }

    #[test]
    fn refine_partition_separates_abandoned_from_refined() {
        // Regression for the accounting bug: early-abandoned candidates
        // used to be counted as refined. With the heap's k-th distance
        // forced to 0, every candidate is eliminated before a full
        // distance exists: either the PAA pre-filter proves it out of
        // bound, or the block kernel abandons at the first nonzero term.
        // None may be counted as refined.
        let config = TardisConfig {
            l_max_size: 10,
            ..TardisConfig::default()
        };
        let converter = crate::convert::Converter::new(&config);
        let entries: Vec<crate::entry::Entry> = (0..50u64)
            .map(|rid| {
                let ts = series(rid);
                crate::entry::Entry::new(
                    converter.sig_of(&ts).unwrap(),
                    Record::new(rid, ts),
                )
            })
            .collect();
        let local = TardisL::build(entries, &config, None);
        let q = series(1_000); // not among the entries
        let paa = converter.paa_of(&q).unwrap();
        let mut heap = TopK::new(1);
        heap.push(0.0, 99_999); // k-th distance = 0 → everything abandons
        let stats = refine_partition(
            &local,
            &q,
            &paa,
            q.len(),
            f64::INFINITY, // keep every candidate past the prune
            &mut heap,
            None,
            &Span::noop(),
        )
        .unwrap();
        assert_eq!(stats.pruned, 0);
        assert_eq!(stats.refined, 0, "abandoned candidates counted as refined");
        assert_eq!(stats.paa_pruned + stats.abandoned, 50);
        assert_eq!(stats.block, stats.refined + stats.abandoned);
        assert!(stats.paa_pruned > 0, "zero bound must PAA-prune something");
    }

    #[test]
    fn answer_and_profile_counters_agree() {
        let (cluster, index) = build_index(600);
        let q = series(17);
        for strategy in KnnStrategy::ALL {
            let (ans, profile) = knn_approximate_profiled(
                &index,
                &cluster,
                &q,
                10,
                strategy,
                &tardis_cluster::Tracer::disabled(),
            )
            .unwrap();
            assert_eq!(ans.partitions_loaded, profile.partitions_loaded, "{strategy:?}");
            assert_eq!(ans.candidates_refined as u64, profile.candidates_refined);
            assert_eq!(ans.candidates_abandoned as u64, profile.candidates_abandoned);
            assert_eq!(profile.partition_ids.len(), profile.partitions_loaded);
            assert!(profile.spans.is_empty(), "disabled tracer ⇒ no spans");
            // The profiled and unprofiled paths are the same code.
            let plain = knn_approximate(&index, &cluster, &q, 10, strategy).unwrap();
            assert_eq!(plain.neighbors, ans.neighbors, "{strategy:?}");
        }
    }

    #[test]
    fn profiled_query_span_tree_accounts_for_phases() {
        let (cluster, index) = build_index(900);
        let tracer = tardis_cluster::Tracer::new();
        let (_, profile) = knn_approximate_profiled(
            &index,
            &cluster,
            &series(11),
            10,
            KnnStrategy::MultiPartition,
            &tracer,
        )
        .unwrap();
        assert_eq!(profile.spans.len(), 1, "one root span");
        let root = &profile.spans[0];
        assert_eq!(root.name, "knn");
        for phase in ["route", "load", "prune", "refine"] {
            assert!(root.find(phase).is_some(), "missing {phase} span");
        }
        // Sibling scans (if any) carry their own nested load span.
        if profile.partitions_loaded > 1 {
            let sib = root.find("sibling").expect("sibling span");
            assert!(sib.find("load").is_some());
        }
        // Aggregated refine counters across the tree match the profile.
        fn sum_counter(node: &tardis_cluster::SpanNode, name: &str) -> u64 {
            node.counter(name).unwrap_or(0)
                + node.children.iter().map(|c| sum_counter(c, name)).sum::<u64>()
        }
        assert_eq!(
            sum_counter(root, "candidates_refined"),
            profile.candidates_refined
        );
        assert_eq!(
            sum_counter(root, "candidates_abandoned"),
            profile.candidates_abandoned
        );
        assert_eq!(
            sum_counter(root, "partitions_loaded"),
            profile.partitions_loaded as u64
        );
    }

    #[test]
    fn topk_heap_behaviour() {
        let mut h = TopK::new(3);
        assert_eq!(h.kth_distance(), f64::INFINITY);
        h.push(4.0, 1);
        h.push(1.0, 2);
        h.push(9.0, 3);
        assert_eq!(h.kth_distance(), 9.0);
        h.push(2.0, 4); // evicts 9.0
        assert_eq!(h.kth_distance(), 4.0);
        let sorted = h.into_sorted();
        assert_eq!(
            sorted.iter().map(|&(_, r)| r).collect::<Vec<_>>(),
            vec![2, 4, 1]
        );
    }

    #[test]
    fn topk_forced_threshold_caps_kth() {
        let mut h = TopK::new(5);
        h.force_threshold(2.5);
        assert_eq!(h.kth_distance(), 2.5);
        h.push(1.0, 1);
        assert_eq!(h.kth_distance(), 2.5, "still capped while underfull");
    }

    #[test]
    fn topk_rid_evicted_then_repushed_counts_once() {
        let mut h = TopK::new(2);
        h.push(1.0, 1);
        h.push(2.0, 2);
        h.push(0.5, 3); // evicts rid 2
        h.push(0.7, 2); // re-push of the evicted rid must be accepted
        let sorted = h.into_sorted();
        assert_eq!(
            sorted.iter().map(|&(_, r)| r).collect::<Vec<_>>(),
            vec![3, 2]
        );
    }

    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        #[test]
        fn topk_rids_stay_unique_under_eviction_and_repush(
            pushes in prop::collection::vec((0.0f64..100.0, 0u64..12), 0..120),
            k in 1usize..6,
        ) {
            // Small rid range against a long push sequence forces heavy
            // duplication, eviction, and re-push of evicted rids.
            let mut h = TopK::new(k);
            for &(d, rid) in &pushes {
                h.push(d, rid);
            }
            let sorted = h.into_sorted();
            prop_assert!(sorted.len() <= k);
            let rids: std::collections::HashSet<RecordId> =
                sorted.iter().map(|&(_, r)| r).collect();
            prop_assert_eq!(rids.len(), sorted.len(), "duplicate rid survived");
            for w in sorted.windows(2) {
                prop_assert!(w[0].0 <= w[1].0, "not sorted ascending");
            }
        }

        #[test]
        fn topk_kth_distance_monotone_non_increasing(
            pushes in prop::collection::vec((0.0f64..100.0, 0u64..1000), 1..150),
            k in 1usize..6,
        ) {
            let mut h = TopK::new(k);
            let mut prev = h.kth_distance();
            for &(d, rid) in &pushes {
                h.push(d, rid);
                let now = h.kth_distance();
                prop_assert!(now <= prev, "kth rose from {} to {}", prev, now);
                prev = now;
            }
        }

        #[test]
        fn topk_forced_threshold_with_underfull_heap(
            pushes in prop::collection::vec((0.0f64..100.0, 0u64..1000), 0..10),
            k in 10usize..20,
            forced in 0.0f64..50.0,
        ) {
            // Fewer than k members: the natural k-th distance stays
            // infinite, so the forced threshold must rule throughout —
            // and pushes below it must still be accepted.
            let mut h = TopK::new(k);
            h.force_threshold(forced);
            for &(d, rid) in &pushes {
                h.push(d, rid);
                prop_assert!(h.heap.len() < k, "heap unexpectedly full");
                prop_assert_eq!(h.kth_distance(), forced);
            }
            let n_unique: usize = {
                let rids: std::collections::HashSet<RecordId> =
                    pushes.iter().map(|&(_, r)| r).collect();
                rids.len()
            };
            prop_assert_eq!(h.into_sorted().len(), n_unique);
        }
    }
}
