//! kNN-Approximate query processing (§V-B, Algorithm 1).
//!
//! Three strategies of increasing candidate scope (and accuracy):
//!
//! * **Target Node Access** — route to one partition, descend Tardis-L to
//!   the *target node* (deepest node on the query's path holding ≥ k
//!   entries), refine its candidates.
//! * **One Partition Access** — use the k-th distance from the target
//!   node as a threshold, prune the whole partition's sigTree with the
//!   iSAX-T lower bound, and refine the survivors.
//! * **Multi-Partitions Access** — additionally load up to `pth` sibling
//!   partitions (the partition list of the parent node in Tardis-G) in
//!   parallel and apply the same threshold pruning to all of them.

use crate::error::CoreError;
use crate::index::TardisIndex;
use crate::local::TardisL;
use tardis_cluster::Cluster;
use tardis_cluster::rng::SplitMix64;
use tardis_ts::{euclidean_early_abandon, squared_euclidean, RecordId, TimeSeries};

/// The query strategies of §V-B.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KnnStrategy {
    /// Fetch the target node's subtree only.
    TargetNode,
    /// Prune-scan the routed partition.
    OnePartition,
    /// Prune-scan up to `pth` sibling partitions in parallel.
    MultiPartition,
}

impl KnnStrategy {
    /// All strategies, in increasing candidate scope.
    pub const ALL: [KnnStrategy; 3] = [
        KnnStrategy::TargetNode,
        KnnStrategy::OnePartition,
        KnnStrategy::MultiPartition,
    ];

    /// Human-readable name matching the paper.
    pub fn name(&self) -> &'static str {
        match self {
            KnnStrategy::TargetNode => "Target Node Access",
            KnnStrategy::OnePartition => "One Partition Access",
            KnnStrategy::MultiPartition => "Multi-Partitions Access",
        }
    }
}

/// A kNN answer: neighbors plus the work done.
#[derive(Debug, Clone)]
pub struct KnnAnswer {
    /// `(distance, rid)` pairs, ascending by distance, at most `k`.
    pub neighbors: Vec<(f64, RecordId)>,
    /// Partitions loaded.
    pub partitions_loaded: usize,
    /// Candidates whose true distance was evaluated.
    pub candidates_refined: usize,
}

/// Runs one kNN-approximate query.
///
/// # Errors
/// Propagates conversion and DFS errors. `k == 0` yields an empty answer.
pub fn knn_approximate(
    index: &TardisIndex,
    cluster: &Cluster,
    query: &TimeSeries,
    k: usize,
    strategy: KnnStrategy,
) -> Result<KnnAnswer, CoreError> {
    if k == 0 {
        return Ok(KnnAnswer {
            neighbors: Vec::new(),
            partitions_loaded: 0,
            candidates_refined: 0,
        });
    }
    let converter = index.global().converter();
    let sig = converter.sig_of(query)?;
    let paa = converter.paa_of(query)?;
    let n = query.len();

    // Steps 1–2: route to the primary partition and load it.
    let pid = index.global().partition_of(&sig);
    let primary = index.load_partition(cluster, pid)?;
    let mut partitions_loaded = 1;

    // Step 3: the target node's candidates give the initial top-k.
    let target = primary.target_node(&sig, k);
    let mut heap = TopK::new(k);
    let mut refined = 0usize;
    for entry in primary.candidates_under(target) {
        let d = squared_euclidean(query.values(), entry.record.ts.values());
        heap.push(d, entry.rid());
        refined += 1;
    }

    match strategy {
        KnnStrategy::TargetNode => {}
        KnnStrategy::OnePartition => {
            // Threshold = current k-th distance; prune-scan the partition.
            let th = heap.kth_distance().sqrt();
            refined += refine_partition(&primary, query, &paa, n, th, &mut heap)?;
        }
        KnnStrategy::MultiPartition => {
            let th = heap.kth_distance().sqrt();
            // Algorithm 1 lines 4–7: sibling partition list, capped at pth.
            let mut pid_list = index.global().sibling_partitions(&sig);
            pid_list.retain(|&p| p != pid);
            if pid_list.len() > index.config().pth.saturating_sub(1) {
                let mut rng = SplitMix64::new(index.config().seed ^ 0x517B_1E55);
                rng.shuffle(&mut pid_list);
                pid_list.truncate(index.config().pth.saturating_sub(1));
                pid_list.sort_unstable();
            }
            // Scan the primary partition with the threshold first.
            refined += refine_partition(&primary, query, &paa, n, th, &mut heap)?;
            // Load + scan siblings in parallel; merge their survivors.
            type SiblingScan = Result<(Vec<(f64, RecordId)>, usize), CoreError>;
            let sibling_results: Vec<SiblingScan> =
                cluster.pool().par_map(pid_list, |sib| {
                    cluster.metrics().record_task();
                    let local = index.load_partition(cluster, sib)?;
                    let mut local_heap = TopK::new(k);
                    // Seed the sibling heap with the current threshold so
                    // early-abandon kicks in immediately.
                    local_heap.force_threshold(th * th);
                    let count =
                        refine_partition(&local, query, &paa, n, th, &mut local_heap)?;
                    Ok((local_heap.into_sorted(), count))
                });
            for result in sibling_results {
                let (neighbors, count) = result?;
                partitions_loaded += 1;
                refined += count;
                for (d, rid) in neighbors {
                    heap.push(d, rid);
                }
            }
        }
    }

    Ok(KnnAnswer {
        neighbors: heap
            .into_sorted()
            .into_iter()
            .map(|(d, rid)| (d.sqrt(), rid))
            .collect(),
        partitions_loaded,
        candidates_refined: refined,
    })
}

/// Prune-scans one partition with the lower-bound threshold and refines
/// survivors into the heap. Returns the number of candidates refined.
fn refine_partition(
    local: &TardisL,
    query: &TimeSeries,
    paa: &[f64],
    n: usize,
    threshold: f64,
    heap: &mut TopK,
) -> Result<usize, CoreError> {
    let candidates = local.prune_scan(paa, n, threshold)?;
    let mut refined = 0usize;
    for entry in candidates {
        let bound = heap.kth_distance();
        match euclidean_early_abandon(query.values(), entry.record.ts.values(), bound) {
            Some(d) => {
                heap.push(d, entry.rid());
                refined += 1;
            }
            None => refined += 1,
        }
    }
    Ok(refined)
}

/// A bounded max-heap keeping the k smallest (distance², rid) pairs.
/// Rid-unique: the same record pushed twice (the target-node refine and a
/// later partition scan overlap) counts once.
struct TopK {
    k: usize,
    // Max-heap by distance: the root is the current k-th best.
    heap: std::collections::BinaryHeap<HeapItem>,
    members: std::collections::HashSet<RecordId>,
    forced_threshold: Option<f64>,
}

struct HeapItem(f64, RecordId);

impl PartialEq for HeapItem {
    fn eq(&self, other: &Self) -> bool {
        self.0 == other.0 && self.1 == other.1
    }
}
impl Eq for HeapItem {}
impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0
            .partial_cmp(&other.0)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(self.1.cmp(&other.1))
    }
}

impl TopK {
    fn new(k: usize) -> TopK {
        TopK {
            k,
            heap: std::collections::BinaryHeap::with_capacity(k + 1),
            members: std::collections::HashSet::with_capacity(k + 1),
            forced_threshold: None,
        }
    }

    /// Caps the effective k-th distance from outside (used to seed sibling
    /// scans with the primary partition's threshold).
    fn force_threshold(&mut self, distance_sq: f64) {
        self.forced_threshold = Some(distance_sq);
    }

    fn push(&mut self, distance_sq: f64, rid: RecordId) {
        if self.members.contains(&rid) {
            return;
        }
        if self.heap.len() < self.k {
            self.heap.push(HeapItem(distance_sq, rid));
            self.members.insert(rid);
        } else if let Some(top) = self.heap.peek() {
            if distance_sq < top.0 {
                let evicted = self.heap.pop().expect("non-empty");
                self.members.remove(&evicted.1);
                self.heap.push(HeapItem(distance_sq, rid));
                self.members.insert(rid);
            }
        }
    }

    /// Squared distance of the current k-th best (infinite until k items
    /// arrive, unless a threshold was forced).
    fn kth_distance(&self) -> f64 {
        let natural = if self.heap.len() < self.k {
            f64::INFINITY
        } else {
            self.heap.peek().map(|i| i.0).unwrap_or(f64::INFINITY)
        };
        match self.forced_threshold {
            Some(f) => natural.min(f),
            None => natural,
        }
    }

    fn into_sorted(self) -> Vec<(f64, RecordId)> {
        let mut v: Vec<(f64, RecordId)> =
            self.heap.into_iter().map(|HeapItem(d, r)| (d, r)).collect();
        v.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TardisConfig;
    use crate::index::TardisIndex;
    use tardis_cluster::{encode_records, ClusterConfig};
    use tardis_ts::Record;

    fn series(rid: u64) -> TimeSeries {
        let mut x = rid.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut acc = 0.0f32;
        let mut v = Vec::with_capacity(64);
        for _ in 0..64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            acc += ((x >> 40) as f32 / (1u32 << 24) as f32) - 0.5;
            v.push(acc);
        }
        tardis_ts::z_normalize_in_place(&mut v);
        TimeSeries::new(v)
    }

    fn build_index(n: u64) -> (Cluster, TardisIndex) {
        let cluster = Cluster::new(ClusterConfig {
            n_workers: 4,
            ..ClusterConfig::default()
        })
        .unwrap();
        let blocks: Vec<Vec<u8>> = (0..n)
            .collect::<Vec<u64>>()
            .chunks(100)
            .map(|chunk| {
                let records: Vec<Record> =
                    chunk.iter().map(|&rid| Record::new(rid, series(rid))).collect();
                encode_records(&records)
            })
            .collect();
        cluster.dfs().write_blocks("data", blocks).unwrap();
        let config = TardisConfig {
            g_max_size: 150,
            l_max_size: 30,
            sampling_fraction: 0.5,
            pth: 5,
            ..TardisConfig::default()
        };
        let (index, _) = TardisIndex::build(&cluster, "data", &config).unwrap();
        (cluster, index)
    }

    fn brute_force(n: u64, q: &TimeSeries, k: usize) -> Vec<(f64, u64)> {
        let mut all: Vec<(f64, u64)> = (0..n)
            .map(|rid| {
                (
                    squared_euclidean(q.values(), series(rid).values()).sqrt(),
                    rid,
                )
            })
            .collect();
        all.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        all.truncate(k);
        all
    }

    #[test]
    fn returns_k_sorted_neighbors() {
        let (cluster, index) = build_index(600);
        let q = series(7);
        for strategy in KnnStrategy::ALL {
            let ans = knn_approximate(&index, &cluster, &q, 10, strategy).unwrap();
            assert_eq!(ans.neighbors.len(), 10, "{strategy:?}");
            for w in ans.neighbors.windows(2) {
                assert!(w[0].0 <= w[1].0, "{strategy:?} not sorted");
            }
        }
    }

    #[test]
    fn member_query_finds_itself_first() {
        let (cluster, index) = build_index(500);
        let q = series(123);
        for strategy in KnnStrategy::ALL {
            let ans = knn_approximate(&index, &cluster, &q, 5, strategy).unwrap();
            assert_eq!(ans.neighbors[0].1, 123, "{strategy:?}");
            assert!(ans.neighbors[0].0 < 1e-6);
        }
    }

    #[test]
    fn approximate_distances_lower_bounded_by_ground_truth() {
        let (cluster, index) = build_index(500);
        let q = series(42);
        let truth = brute_force(500, &q, 10);
        for strategy in KnnStrategy::ALL {
            let ans = knn_approximate(&index, &cluster, &q, 10, strategy).unwrap();
            for (j, (d, _)) in ans.neighbors.iter().enumerate() {
                assert!(
                    *d + 1e-9 >= truth[j].0,
                    "{strategy:?} rank {j}: {d} < truth {}",
                    truth[j].0
                );
            }
        }
    }

    #[test]
    fn wider_strategies_never_do_worse() {
        // Candidate scope grows TargetNode ⊆ OnePartition ⊆ MultiPartition,
        // so the summed distance of the answer set must not increase.
        let (cluster, index) = build_index(800);
        let score = |s: KnnStrategy, q: &TimeSeries| -> f64 {
            knn_approximate(&index, &cluster, q, 20, s)
                .unwrap()
                .neighbors
                .iter()
                .map(|(d, _)| d)
                .sum()
        };
        for rid in [3u64, 77, 310] {
            let q = series(rid);
            let tn = score(KnnStrategy::TargetNode, &q);
            let op = score(KnnStrategy::OnePartition, &q);
            let mp = score(KnnStrategy::MultiPartition, &q);
            assert!(op <= tn + 1e-6, "rid {rid}: one-partition {op} > target {tn}");
            assert!(mp <= op + 1e-6, "rid {rid}: multi {mp} > one {op}");
        }
    }

    #[test]
    fn multi_partition_loads_more_partitions() {
        let (cluster, index) = build_index(900);
        let q = series(11);
        let single = knn_approximate(&index, &cluster, &q, 10, KnnStrategy::OnePartition).unwrap();
        let multi = knn_approximate(&index, &cluster, &q, 10, KnnStrategy::MultiPartition).unwrap();
        assert_eq!(single.partitions_loaded, 1);
        assert!(multi.partitions_loaded >= single.partitions_loaded);
        // pth bound respected.
        assert!(multi.partitions_loaded <= index.config().pth);
    }

    #[test]
    fn k_zero_is_empty() {
        let (cluster, index) = build_index(200);
        let ans =
            knn_approximate(&index, &cluster, &series(0), 0, KnnStrategy::TargetNode).unwrap();
        assert!(ans.neighbors.is_empty());
        assert_eq!(ans.partitions_loaded, 0);
    }

    #[test]
    fn k_larger_than_partition_still_answers() {
        let (cluster, index) = build_index(300);
        let ans =
            knn_approximate(&index, &cluster, &series(5), 250, KnnStrategy::MultiPartition)
                .unwrap();
        assert!(!ans.neighbors.is_empty());
        assert!(ans.neighbors.len() <= 250);
    }

    #[test]
    fn topk_heap_behaviour() {
        let mut h = TopK::new(3);
        assert_eq!(h.kth_distance(), f64::INFINITY);
        h.push(4.0, 1);
        h.push(1.0, 2);
        h.push(9.0, 3);
        assert_eq!(h.kth_distance(), 9.0);
        h.push(2.0, 4); // evicts 9.0
        assert_eq!(h.kth_distance(), 4.0);
        let sorted = h.into_sorted();
        assert_eq!(
            sorted.iter().map(|&(_, r)| r).collect::<Vec<_>>(),
            vec![2, 4, 1]
        );
    }

    #[test]
    fn topk_forced_threshold_caps_kth() {
        let mut h = TopK::new(5);
        h.force_threshold(2.5);
        assert_eq!(h.kth_distance(), 2.5);
        h.push(1.0, 1);
        assert_eq!(h.kth_distance(), 2.5, "still capped while underfull");
    }
}
