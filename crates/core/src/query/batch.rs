//! Batch query execution: run a workload of queries in parallel across
//! the worker pool.
//!
//! The evaluation (§VI-C) measures workloads of 100 queries; a Spark
//! deployment would execute them as concurrent jobs. This module provides
//! the same throughput-oriented path for applications: queries fan out
//! over the pool, each following the ordinary single-query code, and
//! results return in workload order.

use crate::error::CoreError;
use crate::index::TardisIndex;
use crate::query::exact::{exact_match, ExactMatchOutcome};
use crate::query::knn::{knn_approximate, KnnAnswer, KnnStrategy};
use tardis_cluster::Cluster;
use tardis_ts::TimeSeries;

/// Runs an exact-match workload in parallel; results in input order.
///
/// # Errors
/// The first query error encountered (remaining results are dropped).
pub fn exact_match_batch(
    index: &TardisIndex,
    cluster: &Cluster,
    queries: &[TimeSeries],
    use_bloom: bool,
) -> Result<Vec<ExactMatchOutcome>, CoreError> {
    let results: Vec<Result<ExactMatchOutcome, CoreError>> = cluster
        .pool()
        .par_map(queries.iter().collect(), |q| {
            cluster.metrics().record_task();
            exact_match(index, cluster, q, use_bloom)
        });
    results.into_iter().collect()
}

/// Runs a kNN workload in parallel; results in input order.
///
/// # Errors
/// The first query error encountered (remaining results are dropped).
pub fn knn_batch(
    index: &TardisIndex,
    cluster: &Cluster,
    queries: &[TimeSeries],
    k: usize,
    strategy: KnnStrategy,
) -> Result<Vec<KnnAnswer>, CoreError> {
    let results: Vec<Result<KnnAnswer, CoreError>> = cluster
        .pool()
        .par_map(queries.iter().collect(), |q| {
            cluster.metrics().record_task();
            knn_approximate(index, cluster, q, k, strategy)
        });
    results.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TardisConfig;
    use tardis_cluster::{encode_records, ClusterConfig};
    use tardis_ts::Record;

    fn series(rid: u64) -> TimeSeries {
        let mut x = rid.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut acc = 0.0f32;
        let mut v = Vec::with_capacity(64);
        for _ in 0..64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            acc += ((x >> 40) as f32 / (1u32 << 24) as f32) - 0.5;
            v.push(acc);
        }
        tardis_ts::z_normalize_in_place(&mut v);
        TimeSeries::new(v)
    }

    fn setup(n: u64) -> (Cluster, TardisIndex) {
        let cluster = Cluster::new(ClusterConfig {
            n_workers: 4,
            ..ClusterConfig::default()
        })
        .unwrap();
        let blocks: Vec<Vec<u8>> = (0..n)
            .collect::<Vec<u64>>()
            .chunks(100)
            .map(|chunk| {
                encode_records(
                    &chunk
                        .iter()
                        .map(|&rid| Record::new(rid, series(rid)))
                        .collect::<Vec<_>>(),
                )
            })
            .collect();
        cluster.dfs().write_blocks("data", blocks).unwrap();
        let config = TardisConfig {
            g_max_size: 200,
            l_max_size: 40,
            sampling_fraction: 0.5,
            ..TardisConfig::default()
        };
        let (index, _) = TardisIndex::build(&cluster, "data", &config).unwrap();
        (cluster, index)
    }

    #[test]
    fn batch_exact_matches_sequential() {
        let (cluster, index) = setup(600);
        let queries: Vec<TimeSeries> = (0..30)
            .map(|i| series(if i % 2 == 0 { i * 17 } else { 100_000 + i }))
            .collect();
        let batch = exact_match_batch(&index, &cluster, &queries, true).unwrap();
        assert_eq!(batch.len(), queries.len());
        for (q, out) in queries.iter().zip(&batch) {
            let single = exact_match(&index, &cluster, q, true).unwrap();
            assert_eq!(out.matches, single.matches);
        }
    }

    #[test]
    fn batch_knn_matches_sequential_in_order() {
        let (cluster, index) = setup(600);
        let queries: Vec<TimeSeries> = (0..12).map(|i| series(i * 31)).collect();
        let batch =
            knn_batch(&index, &cluster, &queries, 5, KnnStrategy::OnePartition).unwrap();
        assert_eq!(batch.len(), 12);
        for (q, ans) in queries.iter().zip(&batch) {
            let single =
                knn_approximate(&index, &cluster, q, 5, KnnStrategy::OnePartition).unwrap();
            assert_eq!(ans.neighbors, single.neighbors);
        }
    }

    #[test]
    fn batch_propagates_errors() {
        let (cluster, index) = setup(200);
        let queries = vec![series(1), TimeSeries::new(vec![0.0; 3])];
        assert!(exact_match_batch(&index, &cluster, &queries, true).is_err());
        assert!(knn_batch(&index, &cluster, &queries, 3, KnnStrategy::TargetNode).is_err());
    }

    #[test]
    fn empty_batch_is_empty() {
        let (cluster, index) = setup(200);
        assert!(exact_match_batch(&index, &cluster, &[], true)
            .unwrap()
            .is_empty());
        assert!(knn_batch(&index, &cluster, &[], 3, KnnStrategy::TargetNode)
            .unwrap()
            .is_empty());
    }
}
