//! Batch query execution: a partition-major **shared-scan engine**.
//!
//! The evaluation (§VI-C) measures workloads of 100 queries. Running each
//! query through the single-query code independently deserializes the
//! same partitions over and over whenever queries overlap — and only the
//! block cache softens the blow. This module instead executes a workload
//! in partition-major order:
//!
//! 1. **Plan** — walk Tardis-G once per query (no partition I/O) to
//!    collect the complete set of partitions the query can touch: the
//!    routed partition for exact match, the primary plus capped sibling
//!    list for kNN (all three [`KnnStrategy`] variants), the
//!    Multi-Partitions seed set for exact kNN.
//! 2. **Invert** — turn the per-query plans into a partition → queries
//!    map (`BTreeMap`, so scheduling order is deterministic).
//! 3. **Load** — schedule one load task per *distinct* partition over the
//!    [`WorkerPool`](tardis_cluster::WorkerPool) (`try_par_*`, so fault
//!    injection and task retry apply); each partition's local sigTree and
//!    raw series are deserialized **once** and pinned in the block cache
//!    while in flight.
//! 4. **Scan** — run the per-partition query kernels
//!    ([`scan_primary`] / [`scan_sibling`] / [`exact_visit_partition`] —
//!    the same code the single-query paths execute) against the shared
//!    deserialized partitions, grouped by partition.
//! 5. **Merge** — combine per-query `TopK` state in ascending-pid order
//!    (exactly the order the sequential path uses) and return results in
//!    input order.
//!
//! **Scheduling.** Load and scan stages run as *keyed* pool stages
//! (`try_par_map_keyed`, key = partition id) over the pool's
//! work-stealing deques ([`tardis_cluster::StealQueues`]): per-partition
//! tasks are seeded round-robin across workers, and an idle worker
//! steals from a busy one's deque instead of waiting out the old static
//! wave. One slow partition therefore delays only the queries routed to
//! it; unrelated partitions keep flowing through the other workers. The
//! key also lets the seeded fault plan target a single partition
//! (`FaultPlan::slow_task`) so that property is testable.
//!
//! **Determinism.** Results are bit-identical to sequential single-query
//! execution and independent of pool width: plans are computed in input
//! order, partition groups are scheduled from ordered maps, the pool
//! re-sorts stage results by submission index and surfaces the
//! lowest-indexed error, and every merge folds sibling partials in
//! ascending-pid order — the same tie-breaking path `knn_impl` takes.
//! Worker scheduling (stealing included) can change *when* and *where* a
//! scan runs, never *what* it computes or how it is merged.
//!
//! The naive per-query variants (`*_batch_naive`) are retained as the
//! benchmark baseline and as an equivalence oracle in tests.

use crate::error::CoreError;
use crate::eval::Neighbor;
use crate::global::PartitionId;
use crate::index::{TardisIndex, DELTA_PID_BASE};
use crate::local::TardisL;
use crate::query::degraded::{Completeness, Degraded, DegradedPolicy};
use crate::query::exact::{exact_match, ExactMatchOutcome};
use crate::query::exact_knn::{
    exact_knn, exact_knn_degraded, exact_visit_partition, partition_bound_order, ExactKnnAnswer,
};
use crate::query::knn::{
    knn_approximate, plan_knn, scan_delta, scan_primary, scan_sibling, KnnAnswer, KnnPlan,
    KnnStrategy, PrimaryScan, RefineStats, TopK,
};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use tardis_cluster::{BatchProfile, Cluster, Dfs, QueryProfile, Span, Tracer};
use tardis_ts::{RecordId, TimeSeries};

// ---------------------------------------------------------------------
// Exact match
// ---------------------------------------------------------------------

/// Runs an exact-match workload through the shared-scan engine; results
/// in input order, identical to sequential single-query execution.
///
/// # Errors
/// The first planning error in input order; load/scan errors surface
/// deterministically (lowest-indexed failing partition task).
pub fn exact_match_batch(
    index: &TardisIndex,
    cluster: &Cluster,
    queries: &[TimeSeries],
    use_bloom: bool,
) -> Result<Vec<ExactMatchOutcome>, CoreError> {
    Ok(exact_match_batch_profiled(index, cluster, queries, use_bloom, &Tracer::disabled())?.0)
}

/// [`exact_match_batch`] plus a [`BatchProfile`]: per-query profiles in
/// input order and the batch's physical/shared partition-load counters.
/// Batch-level spans (`batch-exact` → `plan` / `load` / `scan` /
/// `merge`) accumulate in `tracer`; per-query span trees are not
/// reconstructed in batch mode (the batch phases subsume them).
///
/// # Errors
/// Same as [`exact_match_batch`].
pub fn exact_match_batch_profiled(
    index: &TardisIndex,
    cluster: &Cluster,
    queries: &[TimeSeries],
    use_bloom: bool,
    tracer: &Tracer,
) -> Result<(Vec<ExactMatchOutcome>, BatchProfile), CoreError> {
    let root = tracer.root("batch-exact");
    let root_id = root.id();

    // Plan: route every query and run its Bloom probes — the base
    // partition's and every sealed delta's (no partition loads).
    // Sequential, so conversion errors surface in input order.
    let plan_span = root.child("plan");
    let converter = index.global().converter();
    let n_deltas = index.n_deltas();
    let mut target: Vec<Option<PartitionId>> = Vec::with_capacity(queries.len());
    let mut delta_hits: Vec<Vec<usize>> = Vec::with_capacity(queries.len());
    let mut sigs = Vec::with_capacity(queries.len());
    for q in queries {
        let sig = converter.sig_of(q)?;
        let pid = index.global().partition_of(&sig);
        if use_bloom && !index.bloom_test(cluster, pid, sig.nibbles())? {
            target.push(None);
        } else {
            target.push(Some(pid));
        }
        let mut hits = Vec::new();
        for idx in 0..n_deltas {
            if !use_bloom || index.delta_bloom_test(cluster, idx, sig.nibbles())? {
                hits.push(idx);
            }
        }
        delta_hits.push(hits);
        sigs.push(sig);
    }
    plan_span.add("queries", queries.len() as u64);
    drop(plan_span);

    // Invert + load each distinct partition once; deltas demanded by at
    // least one query load once for the whole batch.
    let by_pid = invert(target.iter().enumerate().filter_map(|(i, p)| p.map(|p| (p, i))));
    let load_span = root.child("load");
    let store = load_partitions(index, cluster, by_pid.keys().copied().collect(), &load_span)?;
    let demanded: BTreeSet<usize> = delta_hits.iter().flatten().copied().collect();
    let mut delta_store: HashMap<usize, Arc<TardisL>> = HashMap::new();
    for idx in demanded {
        delta_store.insert(idx, Arc::new(index.load_delta(cluster, idx)?));
    }
    load_span.add("deltas", delta_store.len() as u64);
    drop(load_span);

    // Scan: one task per partition serves every query routed to it.
    let scan_span = root.child("scan");
    let groups: Vec<(PartitionId, Vec<usize>)> = by_pid.into_iter().collect();
    type ExactScan = (PartitionId, Vec<(usize, Vec<RecordId>)>);
    let scans: Vec<ExactScan> =
        cluster
            .pool()
            .try_par_map_keyed(groups, |(pid, _)| *pid as u64, |(pid, qidxs)| {
                let part_span = scan_span.child("partition");
                part_span.add("pid", pid as u64);
                part_span.add("queries", qidxs.len() as u64);
                let local = store[&pid].as_ref();
                let found = qidxs
                    .iter()
                    .map(|&i| (i, local.lookup_exact(&sigs[i], &queries[i])))
                    .collect();
                Ok::<ExactScan, CoreError>((pid, found))
            })?;
    drop(scan_span);

    // Merge in input order.
    let merge_span = root.child("merge");
    let mut matched: Vec<Option<Vec<RecordId>>> = vec![None; queries.len()];
    for (_, items) in scans {
        for (i, m) in items {
            matched[i] = Some(m);
        }
    }
    let mut outcomes = Vec::with_capacity(queries.len());
    let mut profiles = Vec::with_capacity(queries.len());
    for (i, pid) in target.iter().enumerate() {
        if pid.is_none() && delta_hits[i].is_empty() {
            outcomes.push(ExactMatchOutcome {
                matches: Vec::new(),
                bloom_rejected: true,
                partitions_loaded: 0,
            });
            profiles.push(QueryProfile {
                bloom_rejected: 1,
                ..QueryProfile::default()
            });
            continue;
        }
        let mut matches = match pid {
            Some(_) => matched[i].take().expect("scanned"),
            None => Vec::new(),
        };
        let mut partition_ids: Vec<u64> = pid.iter().map(|&p| p as u64).collect();
        for &idx in &delta_hits[i] {
            matches.extend(delta_store[&idx].lookup_exact(&sigs[i], &queries[i]));
            partition_ids.push((DELTA_PID_BASE | idx as u32) as u64);
        }
        matches.sort_unstable();
        matches.dedup();
        let loaded = pid.is_some() as usize + delta_hits[i].len();
        profiles.push(QueryProfile {
            partitions_loaded: loaded,
            partition_ids,
            candidates_refined: matches.len() as u64,
            ..QueryProfile::default()
        });
        outcomes.push(ExactMatchOutcome {
            matches,
            bloom_rejected: false,
            partitions_loaded: loaded,
        });
    }
    drop(merge_span);
    drop(root);

    let batch = finish_batch(profiles, store.len() + delta_store.len(), root_id, tracer);
    Ok((outcomes, batch))
}

/// The naive per-query baseline: each query runs the ordinary
/// single-query path independently over the pool. Retained for
/// benchmarking against the shared-scan engine and as an equivalence
/// oracle.
///
/// # Errors
/// The first query error in input order.
pub fn exact_match_batch_naive(
    index: &TardisIndex,
    cluster: &Cluster,
    queries: &[TimeSeries],
    use_bloom: bool,
) -> Result<Vec<ExactMatchOutcome>, CoreError> {
    cluster
        .pool()
        .par_map(queries.iter().collect(), |q| exact_match(index, cluster, q, use_bloom))
        .into_iter()
        .collect()
}

/// Runs an exact-match workload through the shared-scan engine under a
/// degraded-serving [`DegradedPolicy`]. Queries routed to a partition
/// with no readable replicas return empty matches (`BestEffort`) or fail
/// the batch (`FailFast`). The batch-level [`Completeness`] counts
/// *physical* partitions: `partitions_visited` is the number of distinct
/// partitions deserialized, `partitions_skipped` the distinct partitions
/// the workload demanded but could not load, and `exact` holds only when
/// nothing was skipped (answers then equal fault-free execution).
///
/// # Errors
/// Same as [`exact_match_batch`], plus
/// [`CoreError::PartitionUnavailable`] under `FailFast`.
pub fn exact_match_batch_degraded(
    index: &TardisIndex,
    cluster: &Cluster,
    queries: &[TimeSeries],
    use_bloom: bool,
    policy: DegradedPolicy,
) -> Result<Degraded<Vec<ExactMatchOutcome>>, CoreError> {
    // Plan: route every query and run its Bloom probes (Blooms are
    // memory-resident, so probing needs no partition I/O).
    let converter = index.global().converter();
    let n_deltas = index.n_deltas();
    let mut target: Vec<Option<PartitionId>> = Vec::with_capacity(queries.len());
    let mut delta_hits: Vec<Vec<usize>> = Vec::with_capacity(queries.len());
    let mut sigs = Vec::with_capacity(queries.len());
    for q in queries {
        let sig = converter.sig_of(q)?;
        let pid = index.global().partition_of(&sig);
        if use_bloom && !index.bloom_test(cluster, pid, sig.nibbles())? {
            target.push(None);
        } else {
            target.push(Some(pid));
        }
        let mut hits = Vec::new();
        for idx in 0..n_deltas {
            if !use_bloom || index.delta_bloom_test(cluster, idx, sig.nibbles())? {
                hits.push(idx);
            }
        }
        delta_hits.push(hits);
        sigs.push(sig);
    }

    let by_pid = invert(target.iter().enumerate().filter_map(|(i, p)| p.map(|p| (p, i))));
    let (store, mut skipped) =
        load_partitions_degraded(index, cluster, by_pid.keys().copied().collect(), policy)?;

    // Deltas demanded by at least one query load once; a delta with no
    // readable replicas joins the skip list under its synthetic marker.
    let demanded: BTreeSet<usize> = delta_hits.iter().flatten().copied().collect();
    let mut delta_store: HashMap<usize, Arc<TardisL>> = HashMap::new();
    for idx in demanded {
        match index.load_delta_degraded(cluster, idx, policy)? {
            Some(local) => {
                delta_store.insert(idx, Arc::new(local));
            }
            None => skipped.push(DELTA_PID_BASE | idx as u32),
        }
    }

    // Scan only the partitions that loaded.
    let groups: Vec<(PartitionId, Vec<usize>)> = by_pid
        .into_iter()
        .filter(|(pid, _)| store.contains_key(pid))
        .collect();
    type ExactScan = (PartitionId, Vec<(usize, Vec<RecordId>)>);
    let scans: Vec<ExactScan> =
        cluster
            .pool()
            .try_par_map_keyed(groups, |(pid, _)| *pid as u64, |(pid, qidxs)| {
                let local = store[&pid].as_ref();
                let found = qidxs
                    .iter()
                    .map(|&i| (i, local.lookup_exact(&sigs[i], &queries[i])))
                    .collect();
                Ok::<ExactScan, CoreError>((pid, found))
            })?;

    // Merge in input order; a query whose partition was skipped keeps an
    // empty (not bloom-rejected) outcome.
    let skipped_set: HashSet<PartitionId> = skipped.iter().copied().collect();
    let mut matched: Vec<Option<Vec<RecordId>>> = vec![None; queries.len()];
    for (_, items) in scans {
        for (i, m) in items {
            matched[i] = Some(m);
        }
    }
    let mut outcomes = Vec::with_capacity(queries.len());
    for (i, pid) in target.iter().enumerate() {
        if pid.is_none() && delta_hits[i].is_empty() {
            outcomes.push(ExactMatchOutcome {
                matches: Vec::new(),
                bloom_rejected: true,
                partitions_loaded: 0,
            });
            continue;
        }
        let mut matches = match pid {
            Some(pid) if !skipped_set.contains(pid) => matched[i].take().expect("scanned"),
            _ => Vec::new(),
        };
        let mut loaded = matches!(pid, Some(pid) if !skipped_set.contains(pid)) as usize;
        for &idx in &delta_hits[i] {
            if let Some(local) = delta_store.get(&idx) {
                matches.extend(local.lookup_exact(&sigs[i], &queries[i]));
                loaded += 1;
            }
        }
        matches.sort_unstable();
        matches.dedup();
        outcomes.push(ExactMatchOutcome {
            matches,
            bloom_rejected: false,
            partitions_loaded: loaded,
        });
    }
    let exact = skipped.is_empty();
    Ok(Degraded {
        answer: outcomes,
        completeness: Completeness::from_parts(store.len() + delta_store.len(), skipped, exact),
    })
}

// ---------------------------------------------------------------------
// Approximate kNN
// ---------------------------------------------------------------------

/// Runs a kNN workload through the shared-scan engine; results in input
/// order, identical to sequential single-query execution for every
/// [`KnnStrategy`].
///
/// # Errors
/// The first planning error in input order; load/scan errors surface
/// deterministically (lowest-indexed failing partition task).
pub fn knn_batch(
    index: &TardisIndex,
    cluster: &Cluster,
    queries: &[TimeSeries],
    k: usize,
    strategy: KnnStrategy,
) -> Result<Vec<KnnAnswer>, CoreError> {
    Ok(knn_batch_profiled(index, cluster, queries, k, strategy, &Tracer::disabled())?.0)
}

/// [`knn_batch`] plus a [`BatchProfile`]. Batch-level spans
/// (`batch-knn` → `plan` / `load` / `scan` / `merge`, with per-partition
/// `partition` / `sibling` children) accumulate in `tracer`.
///
/// # Errors
/// Same as [`knn_batch`].
pub fn knn_batch_profiled(
    index: &TardisIndex,
    cluster: &Cluster,
    queries: &[TimeSeries],
    k: usize,
    strategy: KnnStrategy,
    tracer: &Tracer,
) -> Result<(Vec<KnnAnswer>, BatchProfile), CoreError> {
    let root = tracer.root("batch-knn");
    let root_id = root.id();
    if k == 0 {
        // Mirror the single-query contract: k == 0 yields empty answers
        // without planning (so malformed queries do not error).
        drop(root);
        return Ok((
            queries.iter().map(|_| empty_knn_answer()).collect(),
            finish_batch(vec![QueryProfile::default(); queries.len()], 0, root_id, tracer),
        ));
    }
    let out = knn_batch_impl(index, cluster, queries, k, strategy, &root)?;
    drop(root);
    let physical = out.store.len() + out.deltas.len();
    let batch = finish_batch(out.profiles, physical, root_id, tracer);
    Ok((out.answers, batch))
}

/// The naive per-query kNN baseline (see [`exact_match_batch_naive`]).
///
/// # Errors
/// The first query error in input order.
pub fn knn_batch_naive(
    index: &TardisIndex,
    cluster: &Cluster,
    queries: &[TimeSeries],
    k: usize,
    strategy: KnnStrategy,
) -> Result<Vec<KnnAnswer>, CoreError> {
    cluster
        .pool()
        .par_map(queries.iter().collect(), |q| {
            knn_approximate(index, cluster, q, k, strategy)
        })
        .into_iter()
        .collect()
}

/// Runs a kNN workload through the shared-scan engine under a
/// degraded-serving [`DegradedPolicy`]. Unreadable partitions are
/// dropped from every query's candidate scope (`BestEffort`) or fail the
/// batch (`FailFast`): a query whose primary was skipped starts its heap
/// empty with an unbounded sibling threshold, and skipped siblings
/// simply shrink the scope — exactly the semantics of
/// [`knn_approximate_degraded`](crate::query::knn::knn_approximate_degraded)
/// per query. The batch-level [`Completeness`] counts *physical*
/// partitions (distinct deserialized vs distinct demanded-but-dead);
/// `exact` holds only when nothing was skipped, and answers then equal
/// fault-free execution bit for bit.
///
/// # Errors
/// Same as [`knn_batch`], plus [`CoreError::PartitionUnavailable`] under
/// `FailFast`.
pub fn knn_batch_degraded(
    index: &TardisIndex,
    cluster: &Cluster,
    queries: &[TimeSeries],
    k: usize,
    strategy: KnnStrategy,
    policy: DegradedPolicy,
) -> Result<Degraded<Vec<KnnAnswer>>, CoreError> {
    if k == 0 {
        return Ok(Degraded {
            answer: queries.iter().map(|_| empty_knn_answer()).collect(),
            completeness: Completeness::complete(0),
        });
    }
    // Plan (sequential: errors surface in input order).
    let mut plans = Vec::with_capacity(queries.len());
    for q in queries {
        plans.push(plan_knn(index, q, strategy)?);
    }
    let pids: BTreeSet<PartitionId> = plans
        .iter()
        .flat_map(|p| std::iter::once(p.primary).chain(p.siblings.iter().copied()))
        .collect();
    let (store, mut skipped) =
        load_partitions_degraded(index, cluster, pids.into_iter().collect(), policy)?;

    // Sealed deltas load once for the batch; an unreadable delta joins
    // the skip list under its synthetic marker.
    let mut delta_locals: Vec<(usize, Arc<TardisL>)> = Vec::new();
    for idx in 0..index.n_deltas() {
        match index.load_delta_degraded(cluster, idx, policy)? {
            Some(local) => delta_locals.push((idx, Arc::new(local))),
            None => skipped.push(DELTA_PID_BASE | idx as u32),
        }
    }

    let span = Span::noop();

    // Wave A: primary-partition kernels over the partitions that loaded.
    let primary_groups: Vec<(PartitionId, Vec<usize>)> =
        invert(plans.iter().enumerate().map(|(i, p)| (p.primary, i)))
            .into_iter()
            .filter(|(pid, _)| store.contains_key(pid))
            .collect();
    type PrimaryWave = Vec<(usize, PrimaryScan)>;
    let wave_a: Vec<PrimaryWave> = cluster.pool().try_par_map_keyed(
        primary_groups,
        |(pid, _)| *pid as u64,
        |(pid, qidxs)| {
            let local = store[&pid].as_ref();
            qidxs
                .iter()
                .map(|&i| {
                    // Already inside a pool task: the refine cascade must
                    // not fan out onto the pool again.
                    scan_primary(local, &queries[i], &plans[i], k, strategy, None, &span)
                        .map(|s| (i, s))
                })
                .collect::<Result<PrimaryWave, CoreError>>()
        },
    )?;
    let mut primary_scans: Vec<Option<PrimaryScan>> = (0..queries.len()).map(|_| None).collect();
    for group in wave_a {
        for (i, scan) in group {
            primary_scans[i] = Some(scan);
        }
    }

    // Wave B: sibling kernels; a skipped primary leaves the query's
    // threshold unbounded (its heap starts empty).
    let thresholds: Vec<f64> = primary_scans
        .iter()
        .map(|s| s.as_ref().map_or(f64::INFINITY, |s| s.threshold))
        .collect();
    let sibling_groups: Vec<(PartitionId, Vec<usize>)> = invert(
        plans
            .iter()
            .enumerate()
            .flat_map(|(i, p)| p.siblings.iter().map(move |&s| (s, i))),
    )
    .into_iter()
    .filter(|(pid, _)| store.contains_key(pid))
    .collect();
    type SiblingWave = (PartitionId, Vec<(usize, Vec<(f64, RecordId)>, RefineStats)>);
    let wave_b: Vec<SiblingWave> = cluster.pool().try_par_map_keyed(
        sibling_groups,
        |(pid, _)| *pid as u64,
        |(pid, qidxs)| {
            let local = store[&pid].as_ref();
            let scans = qidxs
                .iter()
                .map(|&i| {
                    scan_sibling(local, &queries[i], &plans[i], k, thresholds[i], None, &span)
                        .map(|(neighbors, stats)| (i, neighbors, stats))
                })
                .collect::<Result<Vec<_>, CoreError>>()?;
            Ok::<SiblingWave, CoreError>((pid, scans))
        },
    )?;

    // Merge per query in input order; sibling partials fold in
    // ascending-pid order — identical tie-breaking to the sequential
    // degraded path.
    type SibPartial = (Vec<(f64, RecordId)>, RefineStats);
    let mut partials: Vec<BTreeMap<PartitionId, SibPartial>> =
        (0..queries.len()).map(|_| BTreeMap::new()).collect();
    for (pid, items) in wave_b {
        for (i, neighbors, stats) in items {
            partials[i].insert(pid, (neighbors, stats));
        }
    }
    let mut answers = Vec::with_capacity(queries.len());
    for (i, plan) in plans.iter().enumerate() {
        let mut loaded_pids: Vec<PartitionId> = Vec::new();
        let (mut heap, mut stats) = match primary_scans[i].take() {
            Some(PrimaryScan { heap, stats, .. }) => {
                loaded_pids.push(plan.primary);
                (heap, stats)
            }
            None => (TopK::new(k), RefineStats::default()),
        };
        for (&pid, (neighbors, sib_stats)) in &partials[i] {
            loaded_pids.push(pid);
            stats += *sib_stats;
            for &(d, rid) in neighbors {
                heap.push(d, rid);
            }
        }
        for (idx, local) in &delta_locals {
            stats += scan_delta(
                local.as_ref(),
                &queries[i],
                plan,
                k,
                strategy,
                &mut heap,
                Some(cluster.pool()),
                &span,
            )?;
            loaded_pids.push(DELTA_PID_BASE | *idx as u32);
        }
        loaded_pids.sort_unstable();
        answers.push(KnnAnswer {
            neighbors: heap
                .into_sorted()
                .into_iter()
                .map(|(d, rid)| (d.sqrt(), rid))
                .collect(),
            partitions_loaded: loaded_pids.len(),
            candidates_refined: stats.refined,
            candidates_abandoned: stats.abandoned,
        });
    }
    let exact = skipped.is_empty();
    Ok(Degraded {
        answer: answers,
        completeness: Completeness::from_parts(store.len() + delta_locals.len(), skipped, exact),
    })
}

/// Everything the kNN shared scan produced — kept `pub(crate)` so the
/// exact-kNN batch can reuse the seed phase's deserialized partitions
/// and plans instead of reloading them.
pub(crate) struct KnnBatchOutput {
    pub(crate) answers: Vec<KnnAnswer>,
    pub(crate) profiles: Vec<QueryProfile>,
    pub(crate) plans: Vec<KnnPlan>,
    pub(crate) store: HashMap<PartitionId, Arc<TardisL>>,
    /// Every sealed delta, deserialized once for the batch (ascending
    /// delta order).
    pub(crate) deltas: Vec<Arc<TardisL>>,
}

/// The shared-scan kNN pipeline: plan → invert → load → scan (primary
/// wave, then sibling wave) → merge. `root` hosts the phase spans.
pub(crate) fn knn_batch_impl(
    index: &TardisIndex,
    cluster: &Cluster,
    queries: &[TimeSeries],
    k: usize,
    strategy: KnnStrategy,
    root: &Span,
) -> Result<KnnBatchOutput, CoreError> {
    // Plan (sequential: errors surface in input order).
    let plan_span = root.child("plan");
    let mut plans = Vec::with_capacity(queries.len());
    for q in queries {
        plans.push(plan_knn(index, q, strategy)?);
    }
    plan_span.add("queries", queries.len() as u64);
    drop(plan_span);

    // Invert into the complete distinct-partition set and load each once.
    let pids: BTreeSet<PartitionId> = plans
        .iter()
        .flat_map(|p| std::iter::once(p.primary).chain(p.siblings.iter().copied()))
        .collect();
    let load_span = root.child("load");
    let store = load_partitions(index, cluster, pids.into_iter().collect(), &load_span)?;
    // Every query scans every sealed delta, so each delta deserializes
    // once for the whole batch.
    let deltas: Vec<Arc<TardisL>> = (0..index.n_deltas())
        .map(|idx| Ok(Arc::new(index.load_delta(cluster, idx)?)))
        .collect::<Result<_, CoreError>>()?;
    load_span.add("deltas", deltas.len() as u64);
    drop(load_span);

    let scan_span = root.child("scan");

    // Wave A: primary-partition kernels, grouped by partition.
    let primary_groups: Vec<(PartitionId, Vec<usize>)> =
        invert(plans.iter().enumerate().map(|(i, p)| (p.primary, i)))
            .into_iter()
            .collect();
    type PrimaryWave = Vec<(usize, PrimaryScan)>;
    let wave_a: Vec<PrimaryWave> = cluster.pool().try_par_map_keyed(
        primary_groups,
        |(pid, _)| *pid as u64,
        |(pid, qidxs)| {
            let part_span = scan_span.child("partition");
            part_span.add("pid", pid as u64);
            part_span.add("queries", qidxs.len() as u64);
            let local = store[&pid].as_ref();
            qidxs
                .iter()
                .map(|&i| {
                    // Already inside a pool task: the refine cascade must
                    // not fan out onto the pool again.
                    scan_primary(local, &queries[i], &plans[i], k, strategy, None, &part_span)
                        .map(|s| (i, s))
                })
                .collect::<Result<PrimaryWave, CoreError>>()
        },
    )?;
    let mut primary_scans: Vec<Option<PrimaryScan>> = (0..queries.len()).map(|_| None).collect();
    for group in wave_a {
        for (i, scan) in group {
            primary_scans[i] = Some(scan);
        }
    }

    // Wave B: sibling kernels (Multi-Partitions only), grouped by
    // sibling partition, seeded with each query's wave-A threshold.
    let thresholds: Vec<f64> = primary_scans
        .iter()
        .map(|s| s.as_ref().expect("wave A complete").threshold)
        .collect();
    let sibling_groups: Vec<(PartitionId, Vec<usize>)> = invert(
        plans
            .iter()
            .enumerate()
            .flat_map(|(i, p)| p.siblings.iter().map(move |&s| (s, i))),
    )
    .into_iter()
    .collect();
    type SiblingWave = (PartitionId, Vec<(usize, Vec<(f64, RecordId)>, RefineStats)>);
    let wave_b: Vec<SiblingWave> = cluster.pool().try_par_map_keyed(
        sibling_groups,
        |(pid, _)| *pid as u64,
        |(pid, qidxs)| {
            let part_span = scan_span.child("sibling");
            part_span.add("pid", pid as u64);
            part_span.add("queries", qidxs.len() as u64);
            let local = store[&pid].as_ref();
            let scans = qidxs
                .iter()
                .map(|&i| {
                    scan_sibling(local, &queries[i], &plans[i], k, thresholds[i], None, &part_span)
                        .map(|(neighbors, stats)| (i, neighbors, stats))
                })
                .collect::<Result<Vec<_>, CoreError>>()?;
            Ok::<SiblingWave, CoreError>((pid, scans))
        },
    )?;
    drop(scan_span);

    // Merge per query in input order; sibling partials fold in
    // ascending-pid order (BTreeMap), the exact order `knn_impl` pushes
    // them, so `TopK` tie-breaking is identical to sequential execution.
    let merge_span = root.child("merge");
    type SibPartial = (Vec<(f64, RecordId)>, RefineStats);
    let mut partials: Vec<BTreeMap<PartitionId, SibPartial>> =
        (0..queries.len()).map(|_| BTreeMap::new()).collect();
    for (pid, items) in wave_b {
        for (i, neighbors, stats) in items {
            partials[i].insert(pid, (neighbors, stats));
        }
    }
    let mut answers = Vec::with_capacity(queries.len());
    let mut profiles = Vec::with_capacity(queries.len());
    for (i, plan) in plans.iter().enumerate() {
        let PrimaryScan {
            mut heap,
            mut stats,
            ..
        } = primary_scans[i].take().expect("wave A complete");
        let mut loaded_pids: Vec<PartitionId> = vec![plan.primary];
        for (&pid, (neighbors, sib_stats)) in &partials[i] {
            loaded_pids.push(pid);
            stats += *sib_stats;
            for &(d, rid) in neighbors {
                heap.push(d, rid);
            }
        }
        // Sealed deltas fold in after the siblings, ascending — the same
        // heap-push order `knn_impl` uses, so tie-breaking is identical.
        for (idx, local) in deltas.iter().enumerate() {
            stats += scan_delta(
                local.as_ref(),
                &queries[i],
                plan,
                k,
                strategy,
                &mut heap,
                Some(cluster.pool()),
                &merge_span,
            )?;
            loaded_pids.push(DELTA_PID_BASE | idx as u32);
        }
        loaded_pids.sort_unstable();
        profiles.push(QueryProfile {
            partitions_loaded: loaded_pids.len(),
            partition_ids: loaded_pids.iter().map(|&p| p as u64).collect(),
            candidates_pruned: stats.pruned as u64,
            candidates_refined: stats.refined as u64,
            candidates_abandoned: stats.abandoned as u64,
            lanes_pruned_paa: stats.paa_pruned as u64,
            refine_block_candidates: stats.block as u64,
            ..QueryProfile::default()
        });
        answers.push(KnnAnswer {
            neighbors: heap
                .into_sorted()
                .into_iter()
                .map(|(d, rid)| (d.sqrt(), rid))
                .collect(),
            partitions_loaded: loaded_pids.len(),
            candidates_refined: stats.refined,
            candidates_abandoned: stats.abandoned,
        });
    }
    drop(merge_span);

    Ok(KnnBatchOutput {
        answers,
        profiles,
        plans,
        store,
        deltas,
    })
}

// ---------------------------------------------------------------------
// Exact kNN
// ---------------------------------------------------------------------

/// Runs an exact-kNN workload through the shared-scan engine: the
/// Multi-Partitions seed phase is the shared-scan kNN batch, and the
/// refine phase's bound-ordered partition visits draw from a lazily
/// extended shared partition store (each residual partition is loaded at
/// most once for the whole batch). Answers are identical to sequential
/// [`exact_knn`] execution, in input order.
///
/// # Errors
/// The first planning error in input order; load/scan errors surface
/// deterministically.
pub fn exact_knn_batch(
    index: &TardisIndex,
    cluster: &Cluster,
    queries: &[TimeSeries],
    k: usize,
) -> Result<Vec<ExactKnnAnswer>, CoreError> {
    Ok(exact_knn_batch_profiled(index, cluster, queries, k, &Tracer::disabled())?.0)
}

/// [`exact_knn_batch`] plus a [`BatchProfile`]. Batch-level spans
/// (`batch-exact-knn` → the seed's `batch-knn` subtree phases under
/// `knn`, then `route` and `visit`) accumulate in `tracer`.
///
/// # Errors
/// Same as [`exact_knn_batch`].
pub fn exact_knn_batch_profiled(
    index: &TardisIndex,
    cluster: &Cluster,
    queries: &[TimeSeries],
    k: usize,
    tracer: &Tracer,
) -> Result<(Vec<ExactKnnAnswer>, BatchProfile), CoreError> {
    let root = tracer.root("batch-exact-knn");
    let root_id = root.id();
    if k == 0 {
        drop(root);
        return Ok((
            queries
                .iter()
                .map(|_| ExactKnnAnswer {
                    neighbors: Vec::new(),
                    partitions_loaded: 0,
                    partitions_pruned: 0,
                })
                .collect(),
            finish_batch(vec![QueryProfile::default(); queries.len()], 0, root_id, tracer),
        ));
    }

    // Phase 1: shared-scan Multi-Partitions seed.
    let seed_span = root.child("knn");
    let seed = knn_batch_impl(index, cluster, queries, k, KnnStrategy::MultiPartition, &seed_span)?;
    drop(seed_span);

    // Phase 2: per-query partition bound order (pure global-index CPU).
    let route_span = root.child("route");
    let orders: Vec<Vec<(f64, PartitionId)>> = cluster
        .pool()
        .par_map((0..queries.len()).collect(), |i: usize| {
            partition_bound_order(index, &seed.plans[i].paa, seed.plans[i].n, seed.plans[i].primary)
        })
        .into_iter()
        .collect::<Result<_, CoreError>>()?;
    drop(route_span);

    // Phase 3: per-query bound-ordered visits against a shared store
    // seeded with the phase-1 partitions; residual partitions load
    // lazily, once for the whole batch.
    let visit_span = root.child("visit");
    let shared = SharedPartitionStore::new(index, cluster, seed.store);
    type Visited = (ExactKnnAnswer, QueryProfile);
    let results: Vec<Visited> =
        cluster
            .pool()
            .try_par_map((0..queries.len()).collect::<Vec<usize>>(), |i| {
                let q_span = visit_span.child("query");
                let query = &queries[i];
                let plan = &seed.plans[i];
                let seed_ans = &seed.answers[i];
                let seed_profile = &seed.profiles[i];

                // From here on this is the sequential `exact_knn` body,
                // with partition loads routed through the shared store.
                let mut best: Vec<Neighbor> = seed_ans
                    .neighbors
                    .iter()
                    .map(|&(distance, rid)| Neighbor { distance, rid })
                    .collect();
                best.sort_by(|a, b| {
                    a.distance
                        .partial_cmp(&b.distance)
                        .unwrap_or(std::cmp::Ordering::Equal)
                });
                let mut kth = if best.len() >= k {
                    best[k - 1].distance
                } else {
                    f64::INFINITY
                };
                let mut loaded = seed_ans.partitions_loaded;
                let mut visited: HashSet<PartitionId> = HashSet::new();
                let mut pruned = 0usize;
                let mut visited_pids: Vec<PartitionId> = Vec::new();
                let mut candidates_pruned = seed_profile.candidates_pruned;
                let mut candidates_refined = seed_profile.candidates_refined;
                let mut candidates_abandoned = seed_profile.candidates_abandoned;
                let mut lanes_pruned_paa = seed_profile.lanes_pruned_paa;
                let mut refine_block_candidates = seed_profile.refine_block_candidates;
                let mut pool: Vec<Neighbor> = best;
                for &(bound, pid) in &orders[i] {
                    if bound > kth {
                        pruned += 1;
                        continue;
                    }
                    if !visited.insert(pid) {
                        continue;
                    }
                    let load_span = q_span.child("load");
                    let local = shared.get_or_load(pid)?;
                    load_span.add("partitions_loaded", 1);
                    drop(load_span);
                    loaded += 1;
                    visited_pids.push(pid);
                    let visit = exact_visit_partition(
                        local.as_ref(),
                        query,
                        &plan.paa,
                        plan.n,
                        k,
                        &mut kth,
                        &mut pool,
                        None,
                        &q_span,
                    )?;
                    candidates_pruned += visit.pruned;
                    candidates_refined += visit.refined;
                    candidates_abandoned += visit.abandoned;
                    lanes_pruned_paa += visit.paa_pruned;
                    refine_block_candidates += visit.block;
                }
                // Sealed deltas are always visited (no global lower
                // bound), ascending — same order and accounting as the
                // sequential path, reusing the seed phase's locals.
                for (idx, local) in seed.deltas.iter().enumerate() {
                    let load_span = q_span.child("load");
                    load_span.add("partitions_loaded", 1);
                    drop(load_span);
                    loaded += 1;
                    visited_pids.push(DELTA_PID_BASE | idx as u32);
                    let visit = exact_visit_partition(
                        local.as_ref(),
                        query,
                        &plan.paa,
                        plan.n,
                        k,
                        &mut kth,
                        &mut pool,
                        None,
                        &q_span,
                    )?;
                    candidates_pruned += visit.pruned;
                    candidates_refined += visit.refined;
                    candidates_abandoned += visit.abandoned;
                    lanes_pruned_paa += visit.paa_pruned;
                    refine_block_candidates += visit.block;
                }
                pool.sort_by(|a, b| {
                    a.distance
                        .partial_cmp(&b.distance)
                        .unwrap_or(std::cmp::Ordering::Equal)
                });
                let mut seen = HashSet::new();
                pool.retain(|nb| seen.insert(nb.rid));
                pool.truncate(k);

                let mut partition_ids: Vec<u64> = seed_profile
                    .partition_ids
                    .iter()
                    .copied()
                    .chain(visited_pids.iter().map(|&p| p as u64))
                    .collect();
                partition_ids.sort_unstable();
                partition_ids.dedup();
                let profile = QueryProfile {
                    partitions_loaded: loaded,
                    partition_ids,
                    candidates_pruned,
                    candidates_refined,
                    candidates_abandoned,
                    lanes_pruned_paa,
                    refine_block_candidates,
                    ..QueryProfile::default()
                };
                Ok::<Visited, CoreError>((
                    ExactKnnAnswer {
                        neighbors: pool,
                        partitions_loaded: loaded,
                        partitions_pruned: pruned,
                    },
                    profile,
                ))
            })?;
    drop(visit_span);
    drop(root);

    let physical = shared.physical_loads() + seed.deltas.len();
    let mut answers = Vec::with_capacity(queries.len());
    let mut profiles = Vec::with_capacity(queries.len());
    for (answer, profile) in results {
        answers.push(answer);
        profiles.push(profile);
    }
    let batch = finish_batch(profiles, physical, root_id, tracer);
    Ok((answers, batch))
}

/// The naive per-query exact-kNN baseline (see
/// [`exact_match_batch_naive`]).
///
/// # Errors
/// The first query error in input order.
pub fn exact_knn_batch_naive(
    index: &TardisIndex,
    cluster: &Cluster,
    queries: &[TimeSeries],
    k: usize,
) -> Result<Vec<ExactKnnAnswer>, CoreError> {
    cluster
        .pool()
        .par_map(queries.iter().collect(), |q| exact_knn(index, cluster, q, k))
        .into_iter()
        .collect()
}

/// Runs an exact-kNN workload under a degraded-serving
/// [`DegradedPolicy`], one query at a time over the pool (the per-query
/// path is [`exact_knn_degraded`]). The refine phase's visit schedule
/// depends on each query's evolving k-th distance, so which partitions a
/// query demands is only known mid-flight — a shared partition store
/// cannot pre-plan it, and under degradation the bookkeeping (which
/// skips broke which query's exactness) is per-query anyway. Block-cache
/// sharing still applies across queries.
///
/// The batch-level [`Completeness`] aggregates the per-query reports:
/// `partitions_visited` sums load operations, `partitions_skipped` is
/// the union of skipped partitions, and `exact` holds only when every
/// query's answer is provably exact.
///
/// # Errors
/// The first query error in input order; [`CoreError::PartitionUnavailable`]
/// under `FailFast`.
pub fn exact_knn_batch_degraded(
    index: &TardisIndex,
    cluster: &Cluster,
    queries: &[TimeSeries],
    k: usize,
    policy: DegradedPolicy,
) -> Result<Degraded<Vec<ExactKnnAnswer>>, CoreError> {
    let results: Vec<Degraded<ExactKnnAnswer>> = cluster
        .pool()
        .par_map(queries.iter().collect(), |q| {
            exact_knn_degraded(index, cluster, q, k, policy)
        })
        .into_iter()
        .collect::<Result<_, CoreError>>()?;
    let mut visited = 0usize;
    let mut skipped: Vec<PartitionId> = Vec::new();
    let mut exact = true;
    let mut answers = Vec::with_capacity(results.len());
    for r in results {
        visited += r.completeness.partitions_visited;
        skipped.extend(&r.completeness.partitions_skipped);
        exact &= r.completeness.exact;
        answers.push(r.answer);
    }
    Ok(Degraded {
        answer: answers,
        completeness: Completeness::from_parts(visited, skipped, exact),
    })
}

// ---------------------------------------------------------------------
// Shared machinery
// ---------------------------------------------------------------------

/// Inverts `(pid, query-index)` pairs into an ordered partition →
/// queries map. `BTreeMap` keys give a deterministic scheduling order;
/// query indices stay in input order within each group.
fn invert(pairs: impl Iterator<Item = (PartitionId, usize)>) -> BTreeMap<PartitionId, Vec<usize>> {
    let mut map: BTreeMap<PartitionId, Vec<usize>> = BTreeMap::new();
    for (pid, qidx) in pairs {
        map.entry(pid).or_default().push(qidx);
    }
    map
}

/// Loads each distinct partition once over the pool (`try_par_map`, so
/// task faults inject and retry). Every partition's DFS file is pinned
/// in the block cache while its load is in flight, so concurrent loads
/// cannot evict each other's blocks mid-deserialize.
fn load_partitions(
    index: &TardisIndex,
    cluster: &Cluster,
    pids: Vec<PartitionId>,
    parent: &Span,
) -> Result<HashMap<PartitionId, Arc<TardisL>>, CoreError> {
    parent.add("partitions", pids.len() as u64);
    let loaded: Vec<(PartitionId, Arc<TardisL>)> =
        cluster.pool().try_par_map_keyed(pids, |pid| *pid as u64, |pid| {
            let part_span = parent.child("partition");
            part_span.add("pid", pid as u64);
            let _pin = PinGuard::new(
                cluster.dfs(),
                index.partitions().get(pid as usize).map(|m| m.file.clone()),
            );
            Ok::<_, CoreError>((pid, Arc::new(index.load_partition(cluster, pid)?)))
        })?;
    Ok(loaded.into_iter().collect())
}

/// [`load_partitions`] under a degraded-serving policy: partitions whose
/// every replica is dead or corrupt are quarantined and returned in the
/// skip list (`BestEffort`) or fail the load wave (`FailFast`).
/// Transient faults still retry inside `try_par_map`; only permanent
/// cluster errors degrade. The skip list is ascending and deduplicated.
type DegradedStore = (HashMap<PartitionId, Arc<TardisL>>, Vec<PartitionId>);

fn load_partitions_degraded(
    index: &TardisIndex,
    cluster: &Cluster,
    pids: Vec<PartitionId>,
    policy: DegradedPolicy,
) -> Result<DegradedStore, CoreError> {
    let loaded: Vec<(PartitionId, Option<Arc<TardisL>>)> =
        cluster.pool().try_par_map_keyed(pids, |pid| *pid as u64, |pid| {
            let _pin = PinGuard::new(
                cluster.dfs(),
                index.partitions().get(pid as usize).map(|m| m.file.clone()),
            );
            Ok::<_, CoreError>((
                pid,
                index
                    .load_partition_degraded(cluster, pid, policy)?
                    .map(Arc::new),
            ))
        })?;
    let mut store = HashMap::new();
    let mut skipped = Vec::new();
    for (pid, local) in loaded {
        match local {
            Some(local) => {
                store.insert(pid, local);
            }
            None => skipped.push(pid),
        }
    }
    skipped.sort_unstable();
    Ok((store, skipped))
}

/// Pins a DFS file in the block cache for the guard's lifetime; dropping
/// the guard (including on an error path) unpins it.
struct PinGuard<'a> {
    dfs: &'a Dfs,
    file: Option<String>,
}

impl<'a> PinGuard<'a> {
    fn new(dfs: &'a Dfs, file: Option<String>) -> PinGuard<'a> {
        if let Some(f) = &file {
            dfs.pin_file(f);
        }
        PinGuard { dfs, file }
    }
}

impl Drop for PinGuard<'_> {
    fn drop(&mut self) {
        if let Some(f) = &self.file {
            self.dfs.unpin_file(f);
        }
    }
}

/// A lazily extended shared partition store for the exact-kNN refine
/// phase: per-partition cells, each loaded at most once for the whole
/// batch. The cell's lock is held across the load, so two queries
/// demanding the same partition serialize on it instead of loading
/// twice; a task retried after a fault finds already-loaded partitions
/// cached and the physical-load accounting stays exact.
struct SharedPartitionStore<'a> {
    index: &'a TardisIndex,
    cluster: &'a Cluster,
    cells: Vec<Mutex<Option<Arc<TardisL>>>>,
    /// Physical loads: the seeded partitions plus lazy loads so far.
    physical: AtomicUsize,
}

impl<'a> SharedPartitionStore<'a> {
    fn new(
        index: &'a TardisIndex,
        cluster: &'a Cluster,
        seed: HashMap<PartitionId, Arc<TardisL>>,
    ) -> SharedPartitionStore<'a> {
        let physical = AtomicUsize::new(seed.len());
        let mut cells: Vec<Mutex<Option<Arc<TardisL>>>> =
            (0..index.n_partitions()).map(|_| Mutex::new(None)).collect();
        for (pid, local) in seed {
            if let Some(cell) = cells.get_mut(pid as usize) {
                *cell.get_mut().expect("unpoisoned") = Some(local);
            }
        }
        SharedPartitionStore {
            index,
            cluster,
            cells,
            physical,
        }
    }

    fn get_or_load(&self, pid: PartitionId) -> Result<Arc<TardisL>, CoreError> {
        let cell = self
            .cells
            .get(pid as usize)
            .ok_or(CoreError::UnknownPartition { pid })?;
        let mut slot = cell.lock().expect("unpoisoned");
        if let Some(local) = &*slot {
            return Ok(Arc::clone(local));
        }
        let _pin = PinGuard::new(
            self.cluster.dfs(),
            self.index.partitions().get(pid as usize).map(|m| m.file.clone()),
        );
        let local = Arc::new(self.index.load_partition(self.cluster, pid)?);
        self.physical.fetch_add(1, Ordering::Relaxed);
        *slot = Some(Arc::clone(&local));
        Ok(local)
    }

    fn physical_loads(&self) -> usize {
        self.physical.load(Ordering::Relaxed)
    }
}

/// Assembles the [`BatchProfile`]: physical loads, sharing savings
/// (logical demand minus physical), and the batch span tree.
fn finish_batch(
    profiles: Vec<QueryProfile>,
    physical: usize,
    root_id: Option<u32>,
    tracer: &Tracer,
) -> BatchProfile {
    let logical: usize = profiles.iter().map(|p| p.partitions_loaded).sum();
    let mut batch = BatchProfile {
        queries: profiles,
        partitions_loaded: physical,
        partitions_shared: logical.saturating_sub(physical),
        spans: Vec::new(),
    };
    if let Some(id) = root_id {
        batch.spans = tracer.span_tree_under(id);
    }
    batch
}

fn empty_knn_answer() -> KnnAnswer {
    KnnAnswer {
        neighbors: Vec::new(),
        partitions_loaded: 0,
        candidates_refined: 0,
        candidates_abandoned: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TardisConfig;
    use tardis_cluster::{encode_records, ClusterConfig};
    use tardis_ts::Record;

    fn series(rid: u64) -> TimeSeries {
        let mut x = rid.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut acc = 0.0f32;
        let mut v = Vec::with_capacity(64);
        for _ in 0..64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            acc += ((x >> 40) as f32 / (1u32 << 24) as f32) - 0.5;
            v.push(acc);
        }
        tardis_ts::z_normalize_in_place(&mut v);
        TimeSeries::new(v)
    }

    fn setup(n: u64) -> (Cluster, TardisIndex) {
        let cluster = Cluster::new(ClusterConfig {
            n_workers: 4,
            ..ClusterConfig::default()
        })
        .unwrap();
        let blocks: Vec<Vec<u8>> = (0..n)
            .collect::<Vec<u64>>()
            .chunks(100)
            .map(|chunk| {
                encode_records(
                    &chunk
                        .iter()
                        .map(|&rid| Record::new(rid, series(rid)))
                        .collect::<Vec<_>>(),
                )
            })
            .collect();
        cluster.dfs().write_blocks("data", blocks).unwrap();
        let config = TardisConfig {
            g_max_size: 200,
            l_max_size: 40,
            sampling_fraction: 0.5,
            ..TardisConfig::default()
        };
        let (index, _) = TardisIndex::build(&cluster, "data", &config).unwrap();
        (cluster, index)
    }

    #[test]
    fn batch_exact_matches_sequential() {
        let (cluster, index) = setup(600);
        let queries: Vec<TimeSeries> = (0..30)
            .map(|i| series(if i % 2 == 0 { i * 17 } else { 100_000 + i }))
            .collect();
        for use_bloom in [true, false] {
            let batch = exact_match_batch(&index, &cluster, &queries, use_bloom).unwrap();
            assert_eq!(batch.len(), queries.len());
            for (q, out) in queries.iter().zip(&batch) {
                let single = exact_match(&index, &cluster, q, use_bloom).unwrap();
                assert_eq!(*out, single);
            }
        }
    }

    #[test]
    fn batch_knn_matches_sequential_in_order() {
        let (cluster, index) = setup(600);
        let queries: Vec<TimeSeries> = (0..12).map(|i| series(i * 31)).collect();
        let batch =
            knn_batch(&index, &cluster, &queries, 5, KnnStrategy::OnePartition).unwrap();
        assert_eq!(batch.len(), 12);
        for (q, ans) in queries.iter().zip(&batch) {
            let single =
                knn_approximate(&index, &cluster, q, 5, KnnStrategy::OnePartition).unwrap();
            assert_eq!(ans.neighbors, single.neighbors);
            assert_eq!(ans.partitions_loaded, single.partitions_loaded);
        }
    }

    #[test]
    fn batch_exact_knn_matches_sequential() {
        let (cluster, index) = setup(500);
        let queries: Vec<TimeSeries> = (0..8).map(|i| series(i * 61)).collect();
        let batch = exact_knn_batch(&index, &cluster, &queries, 6).unwrap();
        for (q, ans) in queries.iter().zip(&batch) {
            let single = exact_knn(&index, &cluster, q, 6).unwrap();
            assert_eq!(ans.neighbors.len(), single.neighbors.len());
            for (a, b) in ans.neighbors.iter().zip(&single.neighbors) {
                assert_eq!(a.rid, b.rid);
                assert_eq!(a.distance.to_bits(), b.distance.to_bits());
            }
            assert_eq!(ans.partitions_loaded, single.partitions_loaded);
            assert_eq!(ans.partitions_pruned, single.partitions_pruned);
        }
    }

    #[test]
    fn shared_engine_matches_naive_baseline() {
        let (cluster, index) = setup(700);
        let queries: Vec<TimeSeries> = (0..20).map(|i| series(i * 13)).collect();
        let shared = knn_batch(&index, &cluster, &queries, 5, KnnStrategy::MultiPartition).unwrap();
        let naive =
            knn_batch_naive(&index, &cluster, &queries, 5, KnnStrategy::MultiPartition).unwrap();
        for (a, b) in shared.iter().zip(&naive) {
            assert_eq!(a.neighbors, b.neighbors);
        }
        let shared = exact_match_batch(&index, &cluster, &queries, true).unwrap();
        let naive = exact_match_batch_naive(&index, &cluster, &queries, true).unwrap();
        assert_eq!(shared, naive);
    }

    #[test]
    fn batch_profile_accounts_for_sharing() {
        let (cluster, index) = setup(800);
        // Repeat queries so partition overlap is guaranteed.
        let queries: Vec<TimeSeries> =
            (0..24).map(|i| series((i % 6) * 37)).collect();
        let tracer = Tracer::new();
        let (answers, profile) = knn_batch_profiled(
            &index,
            &cluster,
            &queries,
            5,
            KnnStrategy::MultiPartition,
            &tracer,
        )
        .unwrap();
        assert_eq!(answers.len(), queries.len());
        assert_eq!(profile.queries.len(), queries.len());
        // 24 queries over 6 distinct series must share partitions.
        assert!(profile.logical_loads() > profile.partitions_loaded);
        assert_eq!(
            profile.partitions_shared,
            profile.logical_loads() - profile.partitions_loaded
        );
        // Per-query profiles mirror the sequential counters.
        for (q, qp) in queries.iter().zip(&profile.queries) {
            let (_, single) = crate::query::knn::knn_approximate_profiled(
                &index,
                &cluster,
                q,
                5,
                KnnStrategy::MultiPartition,
                &Tracer::disabled(),
            )
            .unwrap();
            assert_eq!(qp.partitions_loaded, single.partitions_loaded);
            assert_eq!(qp.partition_ids, single.partition_ids);
            assert_eq!(qp.candidates_refined, single.candidates_refined);
        }
        // Batch phase spans present.
        let root = &profile.spans[0];
        assert_eq!(root.name, "batch-knn");
        for phase in ["plan", "load", "scan", "merge"] {
            assert!(root.find(phase).is_some(), "missing {phase} span");
        }
    }

    #[test]
    fn batch_propagates_errors() {
        let (cluster, index) = setup(200);
        let queries = vec![series(1), TimeSeries::new(vec![0.0; 3])];
        assert!(exact_match_batch(&index, &cluster, &queries, true).is_err());
        assert!(knn_batch(&index, &cluster, &queries, 3, KnnStrategy::TargetNode).is_err());
        assert!(exact_knn_batch(&index, &cluster, &queries, 3).is_err());
    }

    #[test]
    fn empty_batch_is_empty() {
        let (cluster, index) = setup(200);
        assert!(exact_match_batch(&index, &cluster, &[], true)
            .unwrap()
            .is_empty());
        assert!(knn_batch(&index, &cluster, &[], 3, KnnStrategy::TargetNode)
            .unwrap()
            .is_empty());
        assert!(exact_knn_batch(&index, &cluster, &[], 3).unwrap().is_empty());
    }

    #[test]
    fn k_zero_batch_is_all_empty_without_errors() {
        let (cluster, index) = setup(200);
        // Mirrors the single-query contract: k == 0 answers before any
        // planning, so even a malformed query cannot error.
        let queries = vec![series(1), TimeSeries::new(vec![0.0; 3])];
        let answers = knn_batch(&index, &cluster, &queries, 0, KnnStrategy::MultiPartition).unwrap();
        assert!(answers.iter().all(|a| a.neighbors.is_empty()));
        let answers = exact_knn_batch(&index, &cluster, &queries, 0).unwrap();
        assert!(answers.iter().all(|a| a.neighbors.is_empty()));
    }
}
