//! Exact kNN search, accelerated by the index (an extension beyond the
//! paper's approximate strategies).
//!
//! The paper notes that exact kNN queries "tend to be very expensive"
//! (§II-A) and answers approximately; the classical exact algorithm is
//! nonetheless a natural completion of the framework, and the lower-bound
//! machinery makes it straightforward:
//!
//! 1. Answer approximately first (Multi-Partitions Access) to obtain a
//!    tight initial k-th distance.
//! 2. Order the remaining partitions by the lower bound of their best
//!    node (`MINDIST(query PAA, covering signature)`).
//! 3. Visit partitions in that order, prune-scanning each with the
//!    current k-th distance; stop as soon as the next partition's lower
//!    bound exceeds it — every unseen candidate is then provably farther.
//!
//! The result is exactly the brute-force answer set (up to ties), with
//! far fewer partition loads on clustered data.

use crate::error::CoreError;
use crate::eval::Neighbor;
use crate::index::TardisIndex;
use crate::query::cascade::{refine_cascade, CascadeSink};
use crate::query::degraded::{Completeness, Degraded, DegradedPolicy};
use crate::query::knn::{knn_approximate_degraded_profiled, knn_impl, KnnStrategy};
use tardis_cluster::{QueryProfile, Span, Tracer, WorkerPool};
use tardis_isax::mindist_paa_sigt_scratch;
use tardis_ts::{RecordId, TimeSeries};

/// An exact kNN answer plus the work done.
#[derive(Debug, Clone)]
pub struct ExactKnnAnswer {
    /// The exact k nearest neighbors, ascending by distance.
    pub neighbors: Vec<Neighbor>,
    /// Partition load operations performed (the approximate seed phase
    /// and the exact refine phase each load; a partition touched by both
    /// counts twice).
    pub partitions_loaded: usize,
    /// Partitions proven skippable by their lower bound.
    pub partitions_pruned: usize,
}

/// Runs an exact kNN query through the index.
///
/// # Errors
/// Propagates conversion and DFS errors. `k == 0` yields an empty answer.
pub fn exact_knn(
    index: &TardisIndex,
    cluster: &tardis_cluster::Cluster,
    query: &TimeSeries,
    k: usize,
) -> Result<ExactKnnAnswer, CoreError> {
    Ok(exact_knn_profiled(index, cluster, query, k, &Tracer::disabled())?.0)
}

/// Runs an exact kNN query and returns its [`QueryProfile`] alongside
/// the answer. Span records (`exact-knn` → the seed's `knn` subtree,
/// `route` for the partition-bound ordering, then `load` / `prune` /
/// `refine` per visited partition) accumulate in `tracer`.
///
/// # Errors
/// Same as [`exact_knn`].
pub fn exact_knn_profiled(
    index: &TardisIndex,
    cluster: &tardis_cluster::Cluster,
    query: &TimeSeries,
    k: usize,
    tracer: &Tracer,
) -> Result<(ExactKnnAnswer, QueryProfile), CoreError> {
    let root = tracer.root("exact-knn");
    let root_id = root.id();
    if k == 0 {
        drop(root);
        return Ok((
            ExactKnnAnswer {
                neighbors: Vec::new(),
                partitions_loaded: 0,
                partitions_pruned: 0,
            },
            QueryProfile::default(),
        ));
    }
    let converter = index.global().converter();
    let sig = converter.sig_of(query)?;
    let paa = converter.paa_of(query)?;
    let n = query.len();

    // Step 1: seed with the approximate answer (its spans nest under a
    // `knn` child of this query's root).
    let (seed, seed_profile) = {
        let seed_span = root.child("knn");
        knn_impl(index, cluster, query, k, KnnStrategy::MultiPartition, &seed_span)?
    };
    let mut best: Vec<Neighbor> = seed
        .neighbors
        .iter()
        .map(|&(distance, rid)| Neighbor { distance, rid })
        .collect();
    best.sort_by(|a, b| {
        a.distance
            .partial_cmp(&b.distance)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut kth = if best.len() >= k {
        best[k - 1].distance
    } else {
        f64::INFINITY
    };
    let mut loaded = seed.partitions_loaded;

    // Step 2: lower-bound every partition and order the visit schedule.
    let route_span = root.child("route");
    let own_pid = index.global().partition_of(&sig);
    let order = partition_bound_order(index, &paa, n, own_pid)?;
    drop(route_span);

    // Step 3: visit in bound order with pruning.
    let mut visited: std::collections::HashSet<u32> = std::collections::HashSet::new();
    // The seed phase loaded the query's own partition and possibly
    // siblings, but re-scanning them is cheap relative to correctness;
    // only the primary is guaranteed fully scanned, so re-scan everything
    // except nothing — correctness first. (Loads are counted once.)
    let mut pruned = 0usize;
    let mut visited_pids: Vec<u32> = Vec::new();
    let mut candidates_pruned = seed_profile.candidates_pruned;
    let mut candidates_refined = seed_profile.candidates_refined;
    let mut candidates_abandoned = seed_profile.candidates_abandoned;
    let mut lanes_pruned_paa = seed_profile.lanes_pruned_paa;
    let mut refine_block_candidates = seed_profile.refine_block_candidates;
    let mut pool: Vec<Neighbor> = best;
    for (bound, pid) in order {
        if bound > kth {
            pruned += 1;
            continue;
        }
        if !visited.insert(pid) {
            continue;
        }
        let load_span = root.child("load");
        let local = index.load_partition(cluster, pid)?;
        load_span.add("partitions_loaded", 1);
        drop(load_span);
        loaded += 1;
        visited_pids.push(pid);
        let visit = exact_visit_partition(
            &local,
            query,
            &paa,
            n,
            k,
            &mut kth,
            &mut pool,
            Some(cluster.pool()),
            &root,
        )?;
        candidates_pruned += visit.pruned;
        candidates_refined += visit.refined;
        candidates_abandoned += visit.abandoned;
        lanes_pruned_paa += visit.paa_pruned;
        refine_block_candidates += visit.block;
    }

    // Step 4: sealed deltas are always visited, in ascending delta
    // order — they carry no global lower bound, and exactness requires
    // every ingested record be considered. The prune-scan inside the
    // visit still eliminates most candidates against the current k-th.
    for idx in 0..index.n_deltas() {
        let load_span = root.child("load");
        let local = index.load_delta(cluster, idx)?;
        load_span.add("partitions_loaded", 1);
        drop(load_span);
        loaded += 1;
        visited_pids.push(crate::index::DELTA_PID_BASE | idx as u32);
        let visit = exact_visit_partition(
            &local,
            query,
            &paa,
            n,
            k,
            &mut kth,
            &mut pool,
            Some(cluster.pool()),
            &root,
        )?;
        candidates_pruned += visit.pruned;
        candidates_refined += visit.refined;
        candidates_abandoned += visit.abandoned;
        lanes_pruned_paa += visit.paa_pruned;
        refine_block_candidates += visit.block;
    }

    pool.sort_by(|a, b| {
        a.distance
            .partial_cmp(&b.distance)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    // Final dedup by rid keeping the closest occurrence.
    let mut seen = std::collections::HashSet::new();
    pool.retain(|nb| seen.insert(nb.rid));
    pool.truncate(k);
    drop(root);

    // Profile: the union of partitions touched by either phase,
    // ascending (load *operations* are counted in `partitions_loaded`,
    // so a partition visited by both phases counts twice there).
    let mut partition_ids: Vec<u64> = seed_profile
        .partition_ids
        .iter()
        .copied()
        .chain(visited_pids.iter().map(|&p| p as u64))
        .collect();
    partition_ids.sort_unstable();
    partition_ids.dedup();
    let mut profile = QueryProfile {
        partitions_loaded: loaded,
        partition_ids,
        candidates_pruned,
        candidates_refined,
        candidates_abandoned,
        lanes_pruned_paa,
        refine_block_candidates,
        ..QueryProfile::default()
    };
    if let Some(id) = root_id {
        profile.spans = tracer.span_tree_under(id);
    }
    Ok((
        ExactKnnAnswer {
            neighbors: pool,
            partitions_loaded: loaded,
            partitions_pruned: pruned,
        },
        profile,
    ))
}

/// Runs an exact kNN query under a degraded-serving [`DegradedPolicy`].
///
/// Exactness bookkeeping is asymmetric between the two phases:
///
/// * **Seed-phase skips don't break exactness.** The approximate seed
///   only tightens the prune bound; a looser bound makes the visit phase
///   scan *more* partitions, never fewer, so correctness is unaffected.
/// * **A visit-phase skip of a pruned-in partition breaks exactness.**
///   If a partition's lower bound is within the current k-th distance
///   but no replica can serve it, true neighbors may be missing — the
///   answer downgrades to best-effort (`Completeness::exact == false`).
///
/// Both phases' skips are reported in `partitions_skipped`.
/// `partitions_visited` counts load *operations* across both phases,
/// matching [`ExactKnnAnswer::partitions_loaded`] semantics.
///
/// # Errors
/// Same as [`exact_knn`], plus
/// [`CoreError::PartitionUnavailable`] under `FailFast` for a
/// quarantined partition.
pub fn exact_knn_degraded(
    index: &TardisIndex,
    cluster: &tardis_cluster::Cluster,
    query: &TimeSeries,
    k: usize,
    policy: DegradedPolicy,
) -> Result<Degraded<ExactKnnAnswer>, CoreError> {
    if k == 0 {
        return Ok(Degraded {
            answer: ExactKnnAnswer {
                neighbors: Vec::new(),
                partitions_loaded: 0,
                partitions_pruned: 0,
            },
            completeness: Completeness::complete(0),
        });
    }
    let converter = index.global().converter();
    let sig = converter.sig_of(query)?;
    let paa = converter.paa_of(query)?;
    let n = query.len();

    // Step 1: seed approximately under the same policy.
    let (seed, _) =
        knn_approximate_degraded_profiled(index, cluster, query, k, KnnStrategy::MultiPartition, policy)?;
    let mut skipped: Vec<u32> = seed.completeness.partitions_skipped.clone();
    let mut visited_ops = seed.completeness.partitions_visited;
    let mut pool: Vec<Neighbor> = seed
        .answer
        .neighbors
        .iter()
        .map(|&(distance, rid)| Neighbor { distance, rid })
        .collect();
    pool.sort_by(|a, b| {
        a.distance
            .partial_cmp(&b.distance)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut kth = if pool.len() >= k {
        pool[k - 1].distance
    } else {
        f64::INFINITY
    };
    let mut loaded = seed.answer.partitions_loaded;

    // Step 2: lower-bound every partition and order the visit schedule.
    let own_pid = index.global().partition_of(&sig);
    let order = partition_bound_order(index, &paa, n, own_pid)?;

    // Step 3: visit in bound order with pruning; a pruned-in partition
    // that cannot be served downgrades the exactness claim.
    let span = Span::noop();
    let mut visited: std::collections::HashSet<u32> = std::collections::HashSet::new();
    let mut pruned = 0usize;
    let mut exact = true;
    for (bound, pid) in order {
        if bound > kth {
            pruned += 1;
            continue;
        }
        if !visited.insert(pid) {
            continue;
        }
        match index.load_partition_degraded(cluster, pid, policy)? {
            Some(local) => {
                loaded += 1;
                visited_ops += 1;
                exact_visit_partition(
                    &local,
                    query,
                    &paa,
                    n,
                    k,
                    &mut kth,
                    &mut pool,
                    Some(cluster.pool()),
                    &span,
                )?;
            }
            None => {
                skipped.push(pid);
                exact = false;
            }
        }
    }

    // Sealed deltas: always pruned-in (no global lower bound exists for
    // them), so a skipped delta breaks exactness just like a skipped
    // pruned-in base partition.
    for idx in 0..index.n_deltas() {
        let marker = crate::index::DELTA_PID_BASE | idx as u32;
        match index.load_delta_degraded(cluster, idx, policy)? {
            Some(local) => {
                loaded += 1;
                visited_ops += 1;
                exact_visit_partition(
                    &local,
                    query,
                    &paa,
                    n,
                    k,
                    &mut kth,
                    &mut pool,
                    Some(cluster.pool()),
                    &span,
                )?;
            }
            None => {
                skipped.push(marker);
                exact = false;
            }
        }
    }

    pool.sort_by(|a, b| {
        a.distance
            .partial_cmp(&b.distance)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut seen = std::collections::HashSet::new();
    pool.retain(|nb| seen.insert(nb.rid));
    pool.truncate(k);
    Ok(Degraded {
        answer: ExactKnnAnswer {
            neighbors: pool,
            partitions_loaded: loaded,
            partitions_pruned: pruned,
        },
        completeness: Completeness::from_parts(visited_ops, skipped, exact),
    })
}

/// Lower-bounds every partition for one query and returns the visit
/// schedule `(bound, pid)` sorted ascending by bound.
///
/// A cheap sound bound per partition: walk all global leaves once and
/// take the minimum `MINDIST(query PAA, leaf signature)` among leaves
/// assigned to each partition (a partition's covering node is at least as
/// coarse as its leaves, so the leaf minimum lower-bounds every series it
/// holds). The query's own partition is pinned to bound 0 — partitions
/// with no assigned leaf (possible only for fallback routing targets)
/// must not be skipped on an infinite bound.
pub(crate) fn partition_bound_order(
    index: &TardisIndex,
    paa: &[f64],
    n: usize,
    own_pid: u32,
) -> Result<Vec<(f64, u32)>, CoreError> {
    let global = index.global();
    let mut part_bound = vec![f64::INFINITY; index.n_partitions()];
    let tree = global.tree();
    let mut scratch: Vec<u16> = Vec::new();
    for leaf in tree.leaf_ids() {
        let node = tree.node(leaf);
        let bound = mindist_paa_sigt_scratch(paa, &node.sig, n, &mut scratch)?;
        if let Some(pid) = global_leaf_pid(global, leaf) {
            let slot = &mut part_bound[pid as usize];
            if bound < *slot {
                *slot = bound;
            }
        }
    }
    part_bound[own_pid as usize] = 0.0;
    let mut order: Vec<(f64, u32)> = part_bound
        .iter()
        .enumerate()
        .map(|(pid, &b)| (b, pid as u32))
        .collect();
    order.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
    Ok(order)
}

/// Candidate accounting of one exact-kNN partition visit.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct ExactVisitStats {
    /// Candidates eliminated by the node-level lower bound.
    pub(crate) pruned: u64,
    /// Fully computed raw-series distances.
    pub(crate) refined: u64,
    /// Distance computations cut off early.
    pub(crate) abandoned: u64,
    /// Candidates eliminated by the PAA lower-bound pre-filter.
    pub(crate) paa_pruned: u64,
    /// Candidates that entered the lane/block distance kernels.
    pub(crate) block: u64,
}

/// Cascade sink of one exact visit: the bound is the k-th distance fixed
/// at visit entry (the pool is only re-tightened after the partition),
/// accepted candidates join the pool.
struct VisitSink<'a> {
    bound_sq: f64,
    pool: &'a mut Vec<Neighbor>,
}

impl CascadeSink for VisitSink<'_> {
    fn bound_sq(&self) -> f64 {
        self.bound_sq
    }
    fn accept(&mut self, rid: RecordId, d_sq: f64) {
        self.pool.push(Neighbor {
            distance: d_sq.sqrt(),
            rid,
        });
    }
}

/// Per-partition kernel of the exact refine phase: prune-scan with the
/// current k-th distance, run survivors through the refine cascade into
/// the candidate pool, then re-tighten `kth`. Opens `prune` / `refine`
/// spans under `parent`. Shared verbatim between the sequential visit
/// loop and the batch engine's residual phase, so both produce identical
/// pools.
#[allow(clippy::too_many_arguments)]
pub(crate) fn exact_visit_partition(
    local: &crate::local::TardisL,
    query: &TimeSeries,
    paa: &[f64],
    n: usize,
    k: usize,
    kth: &mut f64,
    pool: &mut Vec<Neighbor>,
    workers: Option<&WorkerPool>,
    parent: &tardis_cluster::Span,
) -> Result<ExactVisitStats, CoreError> {
    let mut stats = ExactVisitStats::default();
    let prune_span = parent.child("prune");
    let survivors = local.prune_scan(paa, n, *kth)?;
    stats.pruned = local.len().saturating_sub(survivors.len()) as u64;
    prune_span.add("candidates_pruned", stats.pruned);
    drop(prune_span);
    let refine_span = parent.child("refine");
    let mut sink = VisitSink {
        bound_sq: *kth * *kth,
        pool,
    };
    let cascade = refine_cascade(local.block(), query, paa, survivors, workers, &mut sink);
    stats.refined = cascade.refined as u64;
    stats.abandoned = cascade.abandoned as u64;
    stats.paa_pruned = cascade.paa_pruned as u64;
    stats.block = cascade.block_candidates as u64;
    refine_span.add("lanes_pruned_paa", stats.paa_pruned);
    refine_span.add("refine_block_candidates", stats.block);
    refine_span.add("candidates_refined", stats.refined);
    refine_span.add("candidates_abandoned", stats.abandoned);
    drop(refine_span);
    // Re-tighten the k-th distance.
    pool.sort_by(|a, b| {
        a.distance
            .partial_cmp(&b.distance)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    pool.dedup_by_key(|nb| nb.rid);
    pool.truncate(4 * k.max(8));
    if pool.len() >= k {
        *kth = pool[k - 1].distance;
    }
    Ok(stats)
}

/// The partition assigned to a global leaf, if any.
fn global_leaf_pid(
    global: &crate::global::TardisG,
    leaf: tardis_sigtree::NodeId,
) -> Option<u32> {
    let sig = &global.tree().node(leaf).sig;
    global.leaf_partition(sig)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TardisConfig;
    use crate::eval::ground_truth_knn;
    use tardis_cluster::{encode_records, Cluster, ClusterConfig};
    use tardis_ts::Record;

    fn series(rid: u64) -> TimeSeries {
        let mut x = rid.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut acc = 0.0f32;
        let mut v = Vec::with_capacity(64);
        for _ in 0..64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            acc += ((x >> 40) as f32 / (1u32 << 24) as f32) - 0.5;
            v.push(acc);
        }
        tardis_ts::z_normalize_in_place(&mut v);
        TimeSeries::new(v)
    }

    fn setup(n: u64) -> (Cluster, TardisIndex) {
        let cluster = Cluster::new(ClusterConfig {
            n_workers: 4,
            ..ClusterConfig::default()
        })
        .unwrap();
        let blocks: Vec<Vec<u8>> = (0..n)
            .collect::<Vec<u64>>()
            .chunks(100)
            .map(|chunk| {
                encode_records(
                    &chunk
                        .iter()
                        .map(|&rid| Record::new(rid, series(rid)))
                        .collect::<Vec<_>>(),
                )
            })
            .collect();
        cluster.dfs().write_blocks("data", blocks).unwrap();
        let config = TardisConfig {
            g_max_size: 200,
            l_max_size: 40,
            sampling_fraction: 0.5,
            pth: 4,
            ..TardisConfig::default()
        };
        let (index, _) = TardisIndex::build(&cluster, "data", &config).unwrap();
        (cluster, index)
    }

    #[test]
    fn exact_knn_matches_brute_force() {
        let (cluster, index) = setup(900);
        for qrid in [3u64, 333, 777] {
            let q = series(qrid);
            let truth = ground_truth_knn(&cluster, "data", &q, 12).unwrap();
            let got = exact_knn(&index, &cluster, &q, 12).unwrap();
            assert_eq!(got.neighbors.len(), 12, "qrid {qrid}");
            for (a, b) in got.neighbors.iter().zip(&truth) {
                assert!(
                    (a.distance - b.distance).abs() < 1e-9,
                    "qrid {qrid}: {} vs {}",
                    a.distance,
                    b.distance
                );
            }
        }
    }

    #[test]
    fn exact_knn_absent_query_matches_brute_force() {
        let (cluster, index) = setup(600);
        let q = series(123_456); // not in the dataset
        let truth = ground_truth_knn(&cluster, "data", &q, 7).unwrap();
        let got = exact_knn(&index, &cluster, &q, 7).unwrap();
        for (a, b) in got.neighbors.iter().zip(&truth) {
            assert!((a.distance - b.distance).abs() < 1e-9);
        }
    }

    #[test]
    fn exact_knn_k_zero_and_k_beyond() {
        let (cluster, index) = setup(200);
        let empty = exact_knn(&index, &cluster, &series(0), 0).unwrap();
        assert!(empty.neighbors.is_empty());
        let all = exact_knn(&index, &cluster, &series(0), 500).unwrap();
        assert!(all.neighbors.len() <= 500);
        // Sorted ascending.
        for w in all.neighbors.windows(2) {
            assert!(w[0].distance <= w[1].distance);
        }
    }

    #[test]
    fn profiled_exact_knn_nests_seed_under_root() {
        let (cluster, index) = setup(600);
        let tracer = Tracer::new();
        let (ans, profile) =
            exact_knn_profiled(&index, &cluster, &series(9), 5, &tracer).unwrap();
        assert_eq!(ans.neighbors.len(), 5);
        assert_eq!(profile.partitions_loaded, ans.partitions_loaded);
        assert!(!profile.partition_ids.is_empty());
        assert_eq!(profile.spans.len(), 1);
        let root = &profile.spans[0];
        assert_eq!(root.name, "exact-knn");
        // The approximate seed phase nests inside this query's tree.
        let seed = root.find("knn").expect("seed span");
        assert!(seed.find("route").is_some());
        assert!(root.find("load").is_some());
        assert!(root.find("prune").is_some());
        assert!(root.find("refine").is_some());
    }

    #[test]
    fn exact_knn_reports_work() {
        let (cluster, index) = setup(900);
        let got = exact_knn(&index, &cluster, &series(55), 5).unwrap();
        assert!(got.partitions_loaded >= 1);
        assert!(
            got.partitions_loaded + got.partitions_pruned
                >= index.n_partitions().min(got.partitions_loaded + got.partitions_pruned)
        );
    }
}
