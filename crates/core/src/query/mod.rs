//! Query processing (§V): exact-match and kNN-approximate strategies.

pub mod batch;
pub(crate) mod cascade;
pub mod degraded;
pub mod exact;
pub mod exact_knn;
pub mod range;
pub mod knn;
