//! Exact ε-range queries (an extension beyond the paper).
//!
//! `range(q, ε)` returns *every* record within Euclidean distance ε of
//! the query — the other classical similarity query next to kNN, and the
//! basis of density-based analytics (DBSCAN-style clustering, duplicate
//! clusters, anomaly neighborhoods). The lower-bound machinery makes it
//! exact and index-accelerated:
//!
//! * a partition can be skipped when the MINDIST of every global leaf
//!   assigned to it exceeds ε;
//! * within a partition, the Tardis-L prune-scan with threshold ε
//!   collects candidates, which the refine step verifies with
//!   early-abandoning distances.
//!
//! Soundness follows from `MINDIST ≤ ED`; completeness from scanning
//! every partition whose bound does not exceed ε.

use crate::error::CoreError;
use crate::eval::Neighbor;
use crate::index::TardisIndex;
use crate::local::TardisL;
use crate::query::cascade::{refine_cascade, CascadeSink};
use crate::query::degraded::{Completeness, Degraded, DegradedPolicy};
use tardis_isax::mindist_paa_sigt_scratch;
use tardis_ts::{RecordId, TimeSeries};

/// A range-query answer plus the work done.
#[derive(Debug, Clone)]
pub struct RangeAnswer {
    /// Every record within ε, ascending by distance.
    pub matches: Vec<Neighbor>,
    /// Partitions loaded.
    pub partitions_loaded: usize,
    /// Partitions skipped by their lower bound.
    pub partitions_pruned: usize,
    /// Candidates whose true distance was evaluated.
    pub candidates_refined: usize,
}

/// Runs an exact ε-range query.
///
/// # Errors
/// Propagates conversion and DFS errors; a negative `epsilon` yields an
/// empty answer.
pub fn range_query(
    index: &TardisIndex,
    cluster: &tardis_cluster::Cluster,
    query: &TimeSeries,
    epsilon: f64,
) -> Result<RangeAnswer, CoreError> {
    if epsilon < 0.0 {
        return Ok(RangeAnswer {
            matches: Vec::new(),
            partitions_loaded: 0,
            partitions_pruned: 0,
            candidates_refined: 0,
        });
    }
    let converter = index.global().converter();
    let paa = converter.paa_of(query)?;
    let n = query.len();
    let (qualifying, pruned) = qualifying_partitions(index, &paa, n, epsilon)?;

    type PartScan = Result<(Vec<Neighbor>, usize), CoreError>;
    let scans: Vec<PartScan> = cluster.pool().par_map(qualifying.clone(), |pid| {
        let local = index.load_partition(cluster, pid)?;
        scan_partition_range(&local, query, &paa, n, epsilon)
    });
    // Sealed deltas have no global-leaf bound and are small: scan every
    // one and merge at the answer layer (the final sort makes the order
    // canonical regardless of which store a match came from).
    let delta_idxs: Vec<usize> = (0..index.n_deltas()).collect();
    let delta_scans: Vec<PartScan> = cluster.pool().par_map(delta_idxs, |idx| {
        let local = index.load_delta(cluster, idx)?;
        scan_partition_range(&local, query, &paa, n, epsilon)
    });

    let mut matches = Vec::new();
    let mut refined = 0usize;
    for scan in scans.into_iter().chain(delta_scans) {
        let (found, r) = scan?;
        matches.extend(found);
        refined += r;
    }
    sort_range_matches(&mut matches);
    Ok(RangeAnswer {
        matches,
        partitions_loaded: qualifying.len() + index.n_deltas(),
        partitions_pruned: pruned,
        candidates_refined: refined,
    })
}

/// Runs an exact ε-range query under a degraded-serving
/// [`DegradedPolicy`]: qualifying partitions with no readable replicas
/// are skipped (`BestEffort`) or fail the query (`FailFast`). Any skip
/// breaks the completeness claim — matches inside the skipped partition
/// cannot be ruled out — so `exact` holds only when nothing was skipped.
///
/// # Errors
/// Same as [`range_query`], plus
/// [`CoreError::PartitionUnavailable`] under `FailFast` for a
/// quarantined partition.
pub fn range_query_degraded(
    index: &TardisIndex,
    cluster: &tardis_cluster::Cluster,
    query: &TimeSeries,
    epsilon: f64,
    policy: DegradedPolicy,
) -> Result<Degraded<RangeAnswer>, CoreError> {
    if epsilon < 0.0 {
        return Ok(Degraded {
            answer: RangeAnswer {
                matches: Vec::new(),
                partitions_loaded: 0,
                partitions_pruned: 0,
                candidates_refined: 0,
            },
            completeness: Completeness::complete(0),
        });
    }
    let converter = index.global().converter();
    let paa = converter.paa_of(query)?;
    let n = query.len();
    let (qualifying, pruned) = qualifying_partitions(index, &paa, n, epsilon)?;

    type PartScan = Result<Option<(Vec<Neighbor>, usize)>, CoreError>;
    let scans: Vec<PartScan> = cluster.pool().par_map(qualifying.clone(), |pid| {
        match index.load_partition_degraded(cluster, pid, policy)? {
            Some(local) => scan_partition_range(&local, query, &paa, n, epsilon).map(Some),
            None => Ok(None),
        }
    });
    let delta_idxs: Vec<usize> = (0..index.n_deltas()).collect();
    let delta_scans: Vec<PartScan> = cluster.pool().par_map(delta_idxs.clone(), |idx| {
        match index.load_delta_degraded(cluster, idx, policy)? {
            Some(local) => scan_partition_range(&local, query, &paa, n, epsilon).map(Some),
            None => Ok(None),
        }
    });

    let mut matches = Vec::new();
    let mut refined = 0usize;
    let mut skipped: Vec<u32> = Vec::new();
    // `par_map` preserves input order, so the zips are exact.
    for (&pid, scan) in qualifying.iter().zip(scans) {
        match scan? {
            Some((found, r)) => {
                matches.extend(found);
                refined += r;
            }
            None => skipped.push(pid),
        }
    }
    for (&idx, scan) in delta_idxs.iter().zip(delta_scans) {
        match scan? {
            Some((found, r)) => {
                matches.extend(found);
                refined += r;
            }
            None => skipped.push(crate::index::DELTA_PID_BASE | idx as u32),
        }
    }
    sort_range_matches(&mut matches);
    let visited = qualifying.len() + delta_idxs.len() - skipped.len();
    let exact = skipped.is_empty();
    Ok(Degraded {
        answer: RangeAnswer {
            matches,
            partitions_loaded: visited,
            partitions_pruned: pruned,
            candidates_refined: refined,
        },
        completeness: Completeness::from_parts(visited, skipped, exact),
    })
}

/// Partitions whose lower bound admits matches within ε, plus the count
/// of provably skippable partitions. The bound per partition is the
/// minimum `MINDIST(query PAA, leaf signature)` over its global leaves;
/// partitions with no leaf bound (fallback routing targets) must be
/// scanned to stay complete.
fn qualifying_partitions(
    index: &TardisIndex,
    paa: &[f64],
    n: usize,
    epsilon: f64,
) -> Result<(Vec<u32>, usize), CoreError> {
    let global = index.global();
    let tree = global.tree();
    let mut part_bound = vec![f64::INFINITY; index.n_partitions()];
    let mut scratch: Vec<u16> = Vec::new();
    for leaf in tree.leaf_ids() {
        let node = tree.node(leaf);
        let bound = mindist_paa_sigt_scratch(paa, &node.sig, n, &mut scratch)?;
        if let Some(pid) = global.leaf_partition(&node.sig) {
            let slot = &mut part_bound[pid as usize];
            if bound < *slot {
                *slot = bound;
            }
        }
    }
    for slot in part_bound.iter_mut() {
        if !slot.is_finite() {
            *slot = 0.0;
        }
    }
    let qualifying: Vec<u32> = part_bound
        .iter()
        .enumerate()
        .filter(|(_, &b)| b <= epsilon)
        .map(|(pid, _)| pid as u32)
        .collect();
    let pruned = index.n_partitions() - qualifying.len();
    Ok((qualifying, pruned))
}

struct RangeSink {
    bound_sq: f64,
    found: Vec<Neighbor>,
}

impl CascadeSink for RangeSink {
    fn bound_sq(&self) -> f64 {
        self.bound_sq
    }
    fn accept(&mut self, rid: RecordId, d_sq: f64) {
        self.found.push(Neighbor {
            distance: d_sq.sqrt(),
            rid,
        });
    }
}

/// Prune-scan plus refine of one loaded partition. `candidates_refined`
/// keeps its historical meaning: prune-scan survivors entering
/// per-candidate evaluation (the cascade may PAA-prune some before a
/// full distance). Runs the cascade inline — callers are already inside
/// a pool task.
fn scan_partition_range(
    local: &TardisL,
    query: &TimeSeries,
    paa: &[f64],
    n: usize,
    epsilon: f64,
) -> Result<(Vec<Neighbor>, usize), CoreError> {
    let candidates = local.prune_scan(paa, n, epsilon)?;
    let refined = candidates.len();
    let mut sink = RangeSink {
        bound_sq: epsilon * epsilon,
        found: Vec::new(),
    };
    refine_cascade(local.block(), query, paa, candidates, None, &mut sink);
    Ok((sink.found, refined))
}

/// Canonical result order: ascending by distance with rid tie-break.
fn sort_range_matches(matches: &mut [Neighbor]) {
    matches.sort_by(|a, b| {
        a.distance
            .partial_cmp(&b.distance)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.rid.cmp(&b.rid))
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TardisConfig;
    use tardis_cluster::{encode_records, Cluster, ClusterConfig};
    use tardis_ts::{squared_euclidean, Record};

    fn series(rid: u64) -> TimeSeries {
        let mut x = rid.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut acc = 0.0f32;
        let mut v = Vec::with_capacity(64);
        for _ in 0..64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            acc += ((x >> 40) as f32 / (1u32 << 24) as f32) - 0.5;
            v.push(acc);
        }
        tardis_ts::z_normalize_in_place(&mut v);
        TimeSeries::new(v)
    }

    fn setup(n: u64) -> (Cluster, TardisIndex) {
        let cluster = Cluster::new(ClusterConfig {
            n_workers: 4,
            ..ClusterConfig::default()
        })
        .unwrap();
        let blocks: Vec<Vec<u8>> = (0..n)
            .collect::<Vec<u64>>()
            .chunks(100)
            .map(|chunk| {
                encode_records(
                    &chunk
                        .iter()
                        .map(|&rid| Record::new(rid, series(rid)))
                        .collect::<Vec<_>>(),
                )
            })
            .collect();
        cluster.dfs().write_blocks("data", blocks).unwrap();
        let config = TardisConfig {
            g_max_size: 200,
            l_max_size: 40,
            sampling_fraction: 0.5,
            ..TardisConfig::default()
        };
        let (index, _) = TardisIndex::build(&cluster, "data", &config).unwrap();
        (cluster, index)
    }

    fn brute_range(n: u64, q: &TimeSeries, epsilon: f64) -> Vec<(f64, u64)> {
        let mut out: Vec<(f64, u64)> = (0..n)
            .filter_map(|rid| {
                let d = squared_euclidean(q.values(), series(rid).values()).sqrt();
                (d <= epsilon).then_some((d, rid))
            })
            .collect();
        out.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then(a.1.cmp(&b.1)));
        out
    }

    #[test]
    fn range_matches_brute_force() {
        let (cluster, index) = setup(800);
        for (qrid, eps) in [(5u64, 6.0), (400, 7.5), (799, 5.0)] {
            let q = series(qrid);
            let got = range_query(&index, &cluster, &q, eps).unwrap();
            let want = brute_range(800, &q, eps);
            assert_eq!(got.matches.len(), want.len(), "qrid {qrid} eps {eps}");
            for (a, (d, rid)) in got.matches.iter().zip(&want) {
                assert_eq!(a.rid, *rid);
                assert!((a.distance - d).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn self_is_always_in_range() {
        let (cluster, index) = setup(500);
        let q = series(123);
        let got = range_query(&index, &cluster, &q, 0.0).unwrap();
        assert!(got.matches.iter().any(|m| m.rid == 123 && m.distance == 0.0));
    }

    #[test]
    fn tiny_epsilon_finds_only_self() {
        let (cluster, index) = setup(500);
        let q = series(77);
        let got = range_query(&index, &cluster, &q, 1e-6).unwrap();
        assert_eq!(got.matches.len(), 1);
        assert_eq!(got.matches[0].rid, 77);
    }

    #[test]
    fn negative_epsilon_is_empty() {
        let (cluster, index) = setup(200);
        let got = range_query(&index, &cluster, &series(0), -1.0).unwrap();
        assert!(got.matches.is_empty());
        assert_eq!(got.partitions_loaded, 0);
    }

    #[test]
    fn small_epsilon_prunes_partitions() {
        let (cluster, index) = setup(900);
        let q = series(9);
        let tight = range_query(&index, &cluster, &q, 3.0).unwrap();
        let loose = range_query(&index, &cluster, &q, 50.0).unwrap();
        assert!(tight.partitions_loaded <= loose.partitions_loaded);
        assert_eq!(
            loose.partitions_loaded + loose.partitions_pruned,
            index.n_partitions()
        );
        // Wide ε covers everything.
        assert_eq!(loose.matches.len(), 900);
    }

    #[test]
    fn results_sorted_ascending() {
        let (cluster, index) = setup(400);
        let got = range_query(&index, &cluster, &series(1), 8.0).unwrap();
        for w in got.matches.windows(2) {
            assert!(w[0].distance <= w[1].distance);
        }
    }
}
