//! Exact-Match query processing (§V-A).
//!
//! Steps: (1) convert the query to its iSAX-T signature; (2) traverse
//! Tardis-G to identify the partition; (3) test the partition's Bloom
//! filter — a negative terminates with zero results and, crucially, zero
//! partition loads; (4) on a positive, load the partition, traverse
//! Tardis-L to the leaf, and compare series bit-for-bit.
//!
//! The non-Bloom variant skips step 3 and always loads the identified
//! partition ("takes more time with the same query accuracy").

use crate::error::CoreError;
use crate::index::TardisIndex;
use crate::local::TardisL;
use crate::query::degraded::{Completeness, Degraded, DegradedPolicy};
use tardis_cluster::{Cluster, QueryProfile, Tracer};
use tardis_ts::{RecordId, TimeSeries};

/// What an exact-match query did and found.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExactMatchOutcome {
    /// Record ids whose series equal the query exactly (empty = absent),
    /// ascending and deduplicated — the canonical order, identical
    /// whether matches came from the base, a sealed delta, or both.
    pub matches: Vec<RecordId>,
    /// Whether the Bloom filters short-circuited the query (base *and*
    /// every sealed delta rejected it).
    pub bloom_rejected: bool,
    /// Partitions loaded from the DFS (base partition plus any sealed
    /// deltas whose filter admitted the signature).
    pub partitions_loaded: usize,
}

/// Aggregate statistics over a workload of exact-match queries.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExactMatchStats {
    /// Queries executed.
    pub queries: u64,
    /// Queries answered positively.
    pub hits: u64,
    /// Queries rejected by the Bloom filter without a partition load.
    pub bloom_rejections: u64,
    /// Total partitions loaded.
    pub partitions_loaded: u64,
}

impl ExactMatchStats {
    /// Accumulates one outcome.
    pub fn absorb(&mut self, outcome: &ExactMatchOutcome) {
        self.queries += 1;
        if !outcome.matches.is_empty() {
            self.hits += 1;
        }
        if outcome.bloom_rejected {
            self.bloom_rejections += 1;
        }
        self.partitions_loaded += outcome.partitions_loaded as u64;
    }
}

/// Runs one exact-match query.
///
/// `use_bloom` selects between the Bloom-filtered algorithm and the
/// non-Bloom variant of §V-A.
///
/// # Errors
/// Propagates conversion and DFS errors;
/// [`CoreError::QueryLengthMismatch`] if the query length differs from the
/// indexed series length (detected at conversion).
pub fn exact_match(
    index: &TardisIndex,
    cluster: &Cluster,
    query: &TimeSeries,
    use_bloom: bool,
) -> Result<ExactMatchOutcome, CoreError> {
    Ok(exact_match_profiled(index, cluster, query, use_bloom, &Tracer::disabled())?.0)
}

/// Runs one exact-match query and returns its [`QueryProfile`] alongside
/// the outcome. Span records (`exact-match` → `route` / `prune` /
/// `load` / `refine`; the `prune` span is the Bloom test, which prunes
/// partition loads) accumulate in `tracer`; with a disabled tracer the
/// profile carries the work counters but an empty span tree.
///
/// # Errors
/// Same as [`exact_match`].
pub fn exact_match_profiled(
    index: &TardisIndex,
    cluster: &Cluster,
    query: &TimeSeries,
    use_bloom: bool,
    tracer: &Tracer,
) -> Result<(ExactMatchOutcome, QueryProfile), CoreError> {
    let root = tracer.root("exact-match");
    let root_id = root.id();
    let finish = |root: tardis_cluster::Span,
                  outcome: ExactMatchOutcome,
                  mut profile: QueryProfile| {
        drop(root);
        if let Some(id) = root_id {
            profile.spans = tracer.span_tree_under(id);
        }
        Ok((outcome, profile))
    };

    // Step 2: global traversal.
    let route_span = root.child("route");
    let converter = index.global().converter();
    let sig = converter.sig_of(query)?;
    let pid = index.global().partition_of(&sig);
    drop(route_span);

    // Step 3: Bloom tests — the base partition and every sealed delta.
    // A query absent everywhere terminates with zero loads.
    let prune_span = root.child("prune");
    let base_positive = !use_bloom || index.bloom_test(cluster, pid, sig.nibbles())?;
    let mut delta_hits: Vec<usize> = Vec::new();
    for idx in 0..index.n_deltas() {
        if !use_bloom || index.delta_bloom_test(cluster, idx, sig.nibbles())? {
            delta_hits.push(idx);
        }
    }
    if !base_positive && delta_hits.is_empty() {
        prune_span.add("bloom_rejected", 1);
        drop(prune_span);
        return finish(
            root,
            ExactMatchOutcome {
                matches: Vec::new(),
                bloom_rejected: true,
                partitions_loaded: 0,
            },
            QueryProfile {
                bloom_rejected: 1,
                ..QueryProfile::default()
            },
        );
    }
    drop(prune_span);

    // Step 4: load the base partition and admitted deltas, look up the
    // leaf in each, and merge at the answer layer (canonical order:
    // ascending rid, deduplicated).
    let load_span = root.child("load");
    let base_local = if base_positive {
        Some(index.load_partition(cluster, pid)?)
    } else {
        None
    };
    let delta_locals: Vec<TardisL> = delta_hits
        .iter()
        .map(|&idx| index.load_delta(cluster, idx))
        .collect::<Result<_, CoreError>>()?;
    let loaded = usize::from(base_local.is_some()) + delta_locals.len();
    load_span.add("partitions_loaded", loaded as u64);
    drop(load_span);
    let refine_span = root.child("refine");
    let mut matches = Vec::new();
    if let Some(local) = &base_local {
        matches.extend(local.lookup_exact(&sig, query));
    }
    for local in &delta_locals {
        matches.extend(local.lookup_exact(&sig, query));
    }
    matches.sort_unstable();
    matches.dedup();
    refine_span.add("candidates_refined", matches.len() as u64);
    drop(refine_span);
    let n_matches = matches.len() as u64;
    let mut partition_ids: Vec<u64> = Vec::new();
    if base_local.is_some() {
        partition_ids.push(pid as u64);
    }
    partition_ids.extend(
        delta_hits
            .iter()
            .map(|&idx| (crate::index::DELTA_PID_BASE | idx as u32) as u64),
    );
    finish(
        root,
        ExactMatchOutcome {
            matches,
            bloom_rejected: false,
            partitions_loaded: loaded,
        },
        QueryProfile {
            partitions_loaded: loaded,
            partition_ids,
            candidates_refined: n_matches,
            ..QueryProfile::default()
        },
    )
}

/// Runs one exact-match query under a degraded-serving [`DegradedPolicy`]:
/// when the routed partition has no readable replicas, `BestEffort`
/// returns an empty, non-exact answer whose [`Completeness`] names the
/// skipped partition, while `FailFast` propagates the storage failure
/// (or [`CoreError::PartitionUnavailable`] once quarantined).
///
/// With every partition healthy the answer equals [`exact_match`].
///
/// # Errors
/// Same as [`exact_match`], plus [`CoreError::PartitionUnavailable`]
/// under `FailFast` for a quarantined partition.
pub fn exact_match_degraded(
    index: &TardisIndex,
    cluster: &Cluster,
    query: &TimeSeries,
    use_bloom: bool,
    policy: DegradedPolicy,
) -> Result<Degraded<ExactMatchOutcome>, CoreError> {
    Ok(exact_match_degraded_profiled(index, cluster, query, use_bloom, policy)?.0)
}

/// [`exact_match_degraded`] plus the query's [`QueryProfile`] (spans are
/// not collected — the degraded path reports coverage through the
/// [`Completeness`] instead).
///
/// # Errors
/// Same as [`exact_match_degraded`].
pub fn exact_match_degraded_profiled(
    index: &TardisIndex,
    cluster: &Cluster,
    query: &TimeSeries,
    use_bloom: bool,
    policy: DegradedPolicy,
) -> Result<(Degraded<ExactMatchOutcome>, QueryProfile), CoreError> {
    use crate::index::DELTA_PID_BASE;
    let converter = index.global().converter();
    let sig = converter.sig_of(query)?;
    let pid = index.global().partition_of(&sig);
    let base_positive = !use_bloom || index.bloom_test(cluster, pid, sig.nibbles())?;
    let mut delta_hits: Vec<usize> = Vec::new();
    for idx in 0..index.n_deltas() {
        if !use_bloom || index.delta_bloom_test(cluster, idx, sig.nibbles())? {
            delta_hits.push(idx);
        }
    }
    if !base_positive && delta_hits.is_empty() {
        return Ok((
            Degraded {
                answer: ExactMatchOutcome {
                    matches: Vec::new(),
                    bloom_rejected: true,
                    partitions_loaded: 0,
                },
                completeness: Completeness::complete(0),
            },
            QueryProfile {
                bloom_rejected: 1,
                ..QueryProfile::default()
            },
        ));
    }
    let mut matches = Vec::new();
    let mut partition_ids: Vec<u64> = Vec::new();
    let mut skipped: Vec<u32> = Vec::new();
    let mut loaded = 0usize;
    if base_positive {
        match index.load_partition_degraded(cluster, pid, policy)? {
            Some(local) => {
                matches.extend(local.lookup_exact(&sig, query));
                partition_ids.push(pid as u64);
                loaded += 1;
            }
            None => skipped.push(pid),
        }
    }
    for &idx in &delta_hits {
        let marker = DELTA_PID_BASE | idx as u32;
        match index.load_delta_degraded(cluster, idx, policy)? {
            Some(local) => {
                matches.extend(local.lookup_exact(&sig, query));
                partition_ids.push(marker as u64);
                loaded += 1;
            }
            None => skipped.push(marker),
        }
    }
    matches.sort_unstable();
    matches.dedup();
    let n_matches = matches.len() as u64;
    let exact = skipped.is_empty();
    let n_skipped = skipped.len() as u64;
    Ok((
        Degraded {
            answer: ExactMatchOutcome {
                matches,
                bloom_rejected: false,
                partitions_loaded: loaded,
            },
            completeness: Completeness::from_parts(loaded, skipped, exact),
        },
        QueryProfile {
            partitions_loaded: loaded,
            partition_ids,
            candidates_refined: n_matches,
            partitions_skipped: n_skipped,
            ..QueryProfile::default()
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TardisConfig;
    use crate::index::TardisIndex;
    use tardis_cluster::{encode_records, ClusterConfig};
    use tardis_ts::Record;

    fn series(rid: u64) -> TimeSeries {
        let mut x = rid.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut acc = 0.0f32;
        let mut v = Vec::with_capacity(64);
        for _ in 0..64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            acc += ((x >> 40) as f32 / (1u32 << 24) as f32) - 0.5;
            v.push(acc);
        }
        tardis_ts::z_normalize_in_place(&mut v);
        TimeSeries::new(v)
    }

    fn build_index(n: u64) -> (Cluster, TardisIndex) {
        let cluster = Cluster::new(ClusterConfig {
            n_workers: 4,
            ..ClusterConfig::default()
        })
        .unwrap();
        let blocks: Vec<Vec<u8>> = (0..n)
            .collect::<Vec<u64>>()
            .chunks(100)
            .map(|chunk| {
                let records: Vec<Record> =
                    chunk.iter().map(|&rid| Record::new(rid, series(rid))).collect();
                encode_records(&records)
            })
            .collect();
        cluster.dfs().write_blocks("data", blocks).unwrap();
        let config = TardisConfig {
            g_max_size: 200,
            l_max_size: 50,
            sampling_fraction: 0.5,
            ..TardisConfig::default()
        };
        let (index, _) = TardisIndex::build(&cluster, "data", &config).unwrap();
        (cluster, index)
    }

    #[test]
    fn finds_every_member() {
        let (cluster, index) = build_index(800);
        for rid in (0..800).step_by(97) {
            let out = exact_match(&index, &cluster, &series(rid), true).unwrap();
            assert_eq!(out.matches, vec![rid], "rid {rid}");
            assert!(!out.bloom_rejected);
            assert_eq!(out.partitions_loaded, 1);
        }
    }

    #[test]
    fn misses_absent_queries() {
        let (cluster, index) = build_index(500);
        let mut stats = ExactMatchStats::default();
        for rid in 10_000..10_050u64 {
            let out = exact_match(&index, &cluster, &series(rid), true).unwrap();
            assert!(out.matches.is_empty(), "rid {rid} falsely matched");
            stats.absorb(&out);
        }
        // The Bloom filter should reject most absent queries without any
        // partition load.
        assert!(
            stats.bloom_rejections >= 40,
            "only {} bloom rejections",
            stats.bloom_rejections
        );
        assert!(stats.partitions_loaded <= 10);
    }

    #[test]
    fn non_bloom_variant_same_answers_more_loads() {
        let (cluster, index) = build_index(400);
        for rid in [5u64, 399, 12_345] {
            let with = exact_match(&index, &cluster, &series(rid), true).unwrap();
            let without = exact_match(&index, &cluster, &series(rid), false).unwrap();
            assert_eq!(with.matches, without.matches, "rid {rid}");
            assert!(!without.bloom_rejected);
            assert_eq!(without.partitions_loaded, 1, "non-bloom always loads");
        }
    }

    #[test]
    fn recall_is_total_over_a_workload() {
        // §VI-C1: "the recall rates are all 100%".
        let (cluster, index) = build_index(600);
        let mut stats = ExactMatchStats::default();
        for rid in 0..60u64 {
            let out = exact_match(&index, &cluster, &series(rid * 10), true).unwrap();
            assert_eq!(out.matches, vec![rid * 10]);
            stats.absorb(&out);
        }
        assert_eq!(stats.hits, 60);
        assert_eq!(stats.queries, 60);
        assert_eq!(stats.bloom_rejections, 0);
    }

    #[test]
    fn profiled_exact_match_spans_and_counters() {
        let (cluster, index) = build_index(500);
        // Present query: route → prune → load → refine, one partition.
        let tracer = Tracer::new();
        let (out, profile) =
            exact_match_profiled(&index, &cluster, &series(42), true, &tracer).unwrap();
        assert_eq!(out.matches, vec![42]);
        assert_eq!(profile.partitions_loaded, 1);
        assert_eq!(profile.partition_ids.len(), 1);
        assert_eq!(profile.candidates_refined, 1);
        assert_eq!(profile.bloom_rejected, 0);
        let root = &profile.spans[0];
        assert_eq!(root.name, "exact-match");
        for phase in ["route", "prune", "load", "refine"] {
            assert!(root.find(phase).is_some(), "missing {phase}");
        }
        // Bloom-rejected query: no load/refine spans, no partitions.
        let mut rejected = None;
        for rid in 10_000..10_050u64 {
            let (out, profile) =
                exact_match_profiled(&index, &cluster, &series(rid), true, &Tracer::new())
                    .unwrap();
            if out.bloom_rejected {
                rejected = Some(profile);
                break;
            }
        }
        let profile = rejected.expect("some absent query bloom-rejected");
        assert_eq!(profile.partitions_loaded, 0);
        assert_eq!(profile.bloom_rejected, 1);
        let root = &profile.spans[0];
        assert!(root.find("prune").is_some());
        assert!(root.find("load").is_none(), "rejected query loaded nothing");
        assert_eq!(root.find("prune").unwrap().counter("bloom_rejected"), Some(1));
        // The non-Bloom variant also profiles (prune span runs, rejects
        // nothing).
        let (out, profile) =
            exact_match_profiled(&index, &cluster, &series(7), false, &Tracer::new()).unwrap();
        assert_eq!(out.matches, vec![7]);
        assert_eq!(profile.partitions_loaded, 1);
        assert!(profile.spans[0].find("refine").is_some());
    }

    #[test]
    fn length_mismatch_is_an_error() {
        let (cluster, index) = build_index(100);
        let short = TimeSeries::new(vec![0.0; 3]);
        assert!(exact_match(&index, &cluster, &short, true).is_err());
    }
}
