//! Exact-Match query processing (§V-A).
//!
//! Steps: (1) convert the query to its iSAX-T signature; (2) traverse
//! Tardis-G to identify the partition; (3) test the partition's Bloom
//! filter — a negative terminates with zero results and, crucially, zero
//! partition loads; (4) on a positive, load the partition, traverse
//! Tardis-L to the leaf, and compare series bit-for-bit.
//!
//! The non-Bloom variant skips step 3 and always loads the identified
//! partition ("takes more time with the same query accuracy").

use crate::error::CoreError;
use crate::index::TardisIndex;
use tardis_cluster::Cluster;
use tardis_ts::{RecordId, TimeSeries};

/// What an exact-match query did and found.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExactMatchOutcome {
    /// Record ids whose series equal the query exactly (empty = absent).
    pub matches: Vec<RecordId>,
    /// Whether the Bloom filter short-circuited the query.
    pub bloom_rejected: bool,
    /// Partitions loaded from the DFS (0 or 1 for exact match).
    pub partitions_loaded: usize,
}

/// Aggregate statistics over a workload of exact-match queries.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExactMatchStats {
    /// Queries executed.
    pub queries: u64,
    /// Queries answered positively.
    pub hits: u64,
    /// Queries rejected by the Bloom filter without a partition load.
    pub bloom_rejections: u64,
    /// Total partitions loaded.
    pub partitions_loaded: u64,
}

impl ExactMatchStats {
    /// Accumulates one outcome.
    pub fn absorb(&mut self, outcome: &ExactMatchOutcome) {
        self.queries += 1;
        if !outcome.matches.is_empty() {
            self.hits += 1;
        }
        if outcome.bloom_rejected {
            self.bloom_rejections += 1;
        }
        self.partitions_loaded += outcome.partitions_loaded as u64;
    }
}

/// Runs one exact-match query.
///
/// `use_bloom` selects between the Bloom-filtered algorithm and the
/// non-Bloom variant of §V-A.
///
/// # Errors
/// Propagates conversion and DFS errors;
/// [`CoreError::QueryLengthMismatch`] if the query length differs from the
/// indexed series length (detected at conversion).
pub fn exact_match(
    index: &TardisIndex,
    cluster: &Cluster,
    query: &TimeSeries,
    use_bloom: bool,
) -> Result<ExactMatchOutcome, CoreError> {
    let converter = index.global().converter();
    let sig = converter.sig_of(query)?;

    // Step 2: global traversal.
    let pid = index.global().partition_of(&sig);

    // Step 3: Bloom test.
    if use_bloom && !index.bloom_test(cluster, pid, sig.nibbles())? {
        return Ok(ExactMatchOutcome {
            matches: Vec::new(),
            bloom_rejected: true,
            partitions_loaded: 0,
        });
    }

    // Step 4: load the partition and look up the leaf.
    let local = index.load_partition(cluster, pid)?;
    let matches = local.lookup_exact(&sig, query);
    Ok(ExactMatchOutcome {
        matches,
        bloom_rejected: false,
        partitions_loaded: 1,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TardisConfig;
    use crate::index::TardisIndex;
    use tardis_cluster::{encode_records, ClusterConfig};
    use tardis_ts::Record;

    fn series(rid: u64) -> TimeSeries {
        let mut x = rid.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut acc = 0.0f32;
        let mut v = Vec::with_capacity(64);
        for _ in 0..64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            acc += ((x >> 40) as f32 / (1u32 << 24) as f32) - 0.5;
            v.push(acc);
        }
        tardis_ts::z_normalize_in_place(&mut v);
        TimeSeries::new(v)
    }

    fn build_index(n: u64) -> (Cluster, TardisIndex) {
        let cluster = Cluster::new(ClusterConfig {
            n_workers: 4,
            ..ClusterConfig::default()
        })
        .unwrap();
        let blocks: Vec<Vec<u8>> = (0..n)
            .collect::<Vec<u64>>()
            .chunks(100)
            .map(|chunk| {
                let records: Vec<Record> =
                    chunk.iter().map(|&rid| Record::new(rid, series(rid))).collect();
                encode_records(&records)
            })
            .collect();
        cluster.dfs().write_blocks("data", blocks).unwrap();
        let config = TardisConfig {
            g_max_size: 200,
            l_max_size: 50,
            sampling_fraction: 0.5,
            ..TardisConfig::default()
        };
        let (index, _) = TardisIndex::build(&cluster, "data", &config).unwrap();
        (cluster, index)
    }

    #[test]
    fn finds_every_member() {
        let (cluster, index) = build_index(800);
        for rid in (0..800).step_by(97) {
            let out = exact_match(&index, &cluster, &series(rid), true).unwrap();
            assert_eq!(out.matches, vec![rid], "rid {rid}");
            assert!(!out.bloom_rejected);
            assert_eq!(out.partitions_loaded, 1);
        }
    }

    #[test]
    fn misses_absent_queries() {
        let (cluster, index) = build_index(500);
        let mut stats = ExactMatchStats::default();
        for rid in 10_000..10_050u64 {
            let out = exact_match(&index, &cluster, &series(rid), true).unwrap();
            assert!(out.matches.is_empty(), "rid {rid} falsely matched");
            stats.absorb(&out);
        }
        // The Bloom filter should reject most absent queries without any
        // partition load.
        assert!(
            stats.bloom_rejections >= 40,
            "only {} bloom rejections",
            stats.bloom_rejections
        );
        assert!(stats.partitions_loaded <= 10);
    }

    #[test]
    fn non_bloom_variant_same_answers_more_loads() {
        let (cluster, index) = build_index(400);
        for rid in [5u64, 399, 12_345] {
            let with = exact_match(&index, &cluster, &series(rid), true).unwrap();
            let without = exact_match(&index, &cluster, &series(rid), false).unwrap();
            assert_eq!(with.matches, without.matches, "rid {rid}");
            assert!(!without.bloom_rejected);
            assert_eq!(without.partitions_loaded, 1, "non-bloom always loads");
        }
    }

    #[test]
    fn recall_is_total_over_a_workload() {
        // §VI-C1: "the recall rates are all 100%".
        let (cluster, index) = build_index(600);
        let mut stats = ExactMatchStats::default();
        for rid in 0..60u64 {
            let out = exact_match(&index, &cluster, &series(rid * 10), true).unwrap();
            assert_eq!(out.matches, vec![rid * 10]);
            stats.absorb(&out);
        }
        assert_eq!(stats.hits, 60);
        assert_eq!(stats.queries, 60);
        assert_eq!(stats.bloom_rejections, 0);
    }

    #[test]
    fn length_mismatch_is_an_error() {
        let (cluster, index) = build_index(100);
        let short = TimeSeries::new(vec![0.0; 3]);
        assert!(exact_match(&index, &cluster, &short, true).is_err());
    }
}
