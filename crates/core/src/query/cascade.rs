//! The refine cascade: PAA pre-filter → block early-abandon kernel, with
//! an optional deterministic `WorkerPool` fan-out for large candidate
//! sets.
//!
//! Every refine site (primary scan, sibling scan, exact-kNN visit, range
//! scan) funnels its prune-scan survivors through [`refine_cascade`]:
//!
//! 1. **PAA pre-filter** — when the partition block carries a PAA sidecar,
//!    every candidate's weighted PAA distance (a lower bound on its true
//!    squared distance) is tested against the sink's entry bound; provably
//!    out-of-bound candidates are dropped before any full-resolution
//!    values are touched (`lanes_pruned_paa`).
//! 2. **Block early-abandon kernel** — survivors go through the 8-lane
//!    early-abandon kernel over the contiguous arena, cache-linearly.
//!
//! # Determinism
//!
//! Results must be bit-identical whether or not a pool is available (the
//! sequential path hands the cascade a pool; the batch waves, which
//! already run inside `par_map`, do not). Mode selection therefore
//! depends only on the survivor count:
//!
//! * **< [`PAR_FANOUT_MIN`] survivors** — sequential: one candidate at a
//!   time, re-reading the sink's bound before each so a tightening k-th
//!   distance abandons later candidates as soon as possible (the same
//!   cadence the scalar refine loop historically used).
//! * **≥ [`PAR_FANOUT_MIN`] survivors** — fan-out: every chunk of
//!   [`PAR_CHUNK`] uses the *same* bound (read once at mode entry), chunk
//!   results are merged into the sink in chunk order. With a pool the
//!   chunks run on worker threads; without one they run inline — same
//!   bound, same order, same bits either way.

use crate::block::SeriesBlock;
use tardis_cluster::WorkerPool;
use tardis_ts::{
    euclidean_early_abandon_block, euclidean_early_abandon_lanes, paa_prefilter_block, RecordId,
    TimeSeries,
};

/// Candidate-set size at which the cascade fans out over the pool.
pub(crate) const PAR_FANOUT_MIN: usize = 1024;
/// Chunk size in fan-out mode (fixed bound).
pub(crate) const PAR_CHUNK: usize = 256;

/// Where refined candidates land, and where the abandon bound comes from.
/// One implementation wraps the kNN `TopK` heap (bound tightens as
/// neighbors arrive); fixed-bound sites (exact-kNN visit, range scan)
/// return a constant.
pub(crate) trait CascadeSink {
    /// Current squared-distance bound for abandoning/pruning.
    fn bound_sq(&self) -> f64;
    /// Accepts a candidate whose full squared distance is within bound.
    fn accept(&mut self, rid: RecordId, d_sq: f64);
}

/// Work accounting for one cascade pass. `block_candidates` = `refined` +
/// `abandoned` (every candidate entering the block kernel ends in exactly
/// one of the two).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct CascadeStats {
    /// Candidates eliminated by the PAA lower-bound pre-filter.
    pub(crate) paa_pruned: usize,
    /// Candidates that entered the block early-abandon kernel.
    pub(crate) block_candidates: usize,
    /// Fully computed raw-series distances.
    pub(crate) refined: usize,
    /// Distance computations cut off early by the bound.
    pub(crate) abandoned: usize,
}

/// Runs the candidates (block indices) through the cascade into `sink`.
pub(crate) fn refine_cascade<S: CascadeSink>(
    block: &SeriesBlock,
    query: &TimeSeries,
    query_paa: &[f64],
    candidates: Vec<u32>,
    pool: Option<&WorkerPool>,
    sink: &mut S,
) -> CascadeStats {
    let mut stats = CascadeStats::default();
    let entry_bound = sink.bound_sq();

    // Stage 1: PAA pre-filter. Only sound/meaningful when the sidecar
    // matches the query's PAA resolution and the series lengths line up;
    // an infinite bound prunes nothing, so skip the pass entirely.
    let survivors = if entry_bound.is_finite()
        && block.has_paa()
        && block.paa_width() == query_paa.len()
        && block.series_len() == query.len()
    {
        let mut kept = Vec::with_capacity(candidates.len());
        stats.paa_pruned = paa_prefilter_block(
            query_paa,
            block.paa_weights(),
            block.paa_values(),
            block.paa_width(),
            &candidates,
            entry_bound,
            &mut kept,
        );
        kept
    } else {
        candidates
    };
    stats.block_candidates = survivors.len();

    // Stage 2: block early-abandon kernel.
    if survivors.len() < PAR_FANOUT_MIN {
        for &idx in &survivors {
            let r = run_one(block, query, idx, sink.bound_sq());
            merge_one(block, sink, &mut stats, idx, r);
        }
    } else {
        // Fixed bound + chunk-order merge: identical results with any
        // pool width, or with no pool at all.
        let bound = sink.bound_sq();
        let chunks: Vec<&[u32]> = survivors.chunks(PAR_CHUNK).collect();
        let per_chunk: Vec<Vec<(u32, Option<f64>)>> = match pool {
            Some(pool) => pool.par_map(chunks, |chunk| {
                let mut out = Vec::with_capacity(chunk.len());
                run_chunk(block, query, chunk, bound, |idx, r| out.push((idx, r)));
                out
            }),
            None => chunks
                .into_iter()
                .map(|chunk| {
                    let mut out = Vec::with_capacity(chunk.len());
                    run_chunk(block, query, chunk, bound, |idx, r| out.push((idx, r)));
                    out
                })
                .collect(),
        };
        for chunk in per_chunk {
            for (idx, r) in chunk {
                merge_one(block, sink, &mut stats, idx, r);
            }
        }
    }
    stats
}

#[inline]
fn run_one(block: &SeriesBlock, query: &TimeSeries, idx: u32, bound: f64) -> Option<f64> {
    let row = block.series(idx as usize);
    if row.len() == query.len() {
        euclidean_early_abandon_lanes(query.values(), row, bound)
    } else {
        // Length-mismatched candidate can never be an exact kNN of the
        // query; treat as abandoned.
        None
    }
}

#[inline]
fn run_chunk(
    block: &SeriesBlock,
    query: &TimeSeries,
    chunk: &[u32],
    bound: f64,
    mut sink: impl FnMut(u32, Option<f64>),
) {
    match block.uniform_stride() {
        Some(stride) if stride == query.len() => {
            euclidean_early_abandon_block(query.values(), block.values(), stride, chunk, bound, sink)
        }
        _ => {
            for &idx in chunk {
                let row = block.series(idx as usize);
                let r = if row.len() == query.len() {
                    euclidean_early_abandon_lanes(query.values(), row, bound)
                } else {
                    // Length-mismatched candidate can never be an exact
                    // kNN of the query; treat as abandoned.
                    None
                };
                sink(idx, r);
            }
        }
    }
}

#[inline]
fn merge_one<S: CascadeSink>(
    block: &SeriesBlock,
    sink: &mut S,
    stats: &mut CascadeStats,
    idx: u32,
    r: Option<f64>,
) {
    match r {
        Some(d_sq) => {
            sink.accept(block.rid(idx as usize), d_sq);
            stats.refined += 1;
        }
        None => stats.abandoned += 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::SeriesBlockBuilder;
    use tardis_ts::squared_euclidean_lanes;

    struct CollectSink {
        bound: f64,
        got: Vec<(RecordId, f64)>,
    }

    impl CascadeSink for CollectSink {
        fn bound_sq(&self) -> f64 {
            self.bound
        }
        fn accept(&mut self, rid: RecordId, d_sq: f64) {
            self.got.push((rid, d_sq));
        }
    }

    fn series(seed: u64, len: usize) -> Vec<f32> {
        let mut x = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        (0..len)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                ((x >> 40) as f32 / (1u32 << 24) as f32) - 0.5
            })
            .collect()
    }

    fn block(n: u64, len: usize) -> SeriesBlock {
        let mut b = SeriesBlockBuilder::new(8);
        for rid in 0..n {
            b.push(rid, &series(rid, len));
        }
        b.finish()
    }

    #[test]
    fn infinite_bound_refines_everything() {
        let blk = block(100, 64);
        let q = TimeSeries::new(series(999, 64));
        let paa = tardis_isax::paa(q.values(), 8).unwrap();
        let mut sink = CollectSink {
            bound: f64::INFINITY,
            got: Vec::new(),
        };
        let stats = refine_cascade(&blk, &q, &paa, (0..100).collect(), None, &mut sink);
        assert_eq!(stats.paa_pruned, 0, "infinite bound skips the pre-filter");
        assert_eq!(stats.block_candidates, 100);
        assert_eq!(stats.refined, 100);
        assert_eq!(stats.abandoned, 0);
        assert_eq!(sink.got.len(), 100);
        for &(rid, d) in &sink.got {
            let expect = squared_euclidean_lanes(q.values(), blk.series(rid as usize));
            assert_eq!(d.to_bits(), expect.to_bits());
        }
    }

    #[test]
    fn counters_partition_the_candidate_set() {
        let blk = block(200, 64);
        let q = TimeSeries::new(series(5, 64)); // equals stored rid 5
        let paa = tardis_isax::paa(q.values(), 8).unwrap();
        let mut sink = CollectSink {
            bound: 1.0,
            got: Vec::new(),
        };
        let stats = refine_cascade(&blk, &q, &paa, (0..200).collect(), None, &mut sink);
        assert_eq!(
            stats.paa_pruned + stats.block_candidates,
            200,
            "pre-filter splits the set"
        );
        assert_eq!(stats.refined + stats.abandoned, stats.block_candidates);
        // The self-match must survive both stages (lower bound is 0).
        assert!(sink.got.iter().any(|&(rid, d)| rid == 5 && d == 0.0));
        assert!(stats.paa_pruned > 0, "tight bound prunes something");
    }

    #[test]
    fn fanout_and_sequential_merge_identically() {
        // Enough survivors to trip PAR_FANOUT_MIN; fixed bound so the
        // sequential small-chunk path is not exercised. Pool-backed and
        // inline execution must produce bitwise-identical accept streams.
        let n = (PAR_FANOUT_MIN + 500) as u64;
        let blk = block(n, 32);
        let q = TimeSeries::new(series(4_242, 32));
        let paa = tardis_isax::paa(q.values(), 8).unwrap();
        let run = |pool: Option<&WorkerPool>| {
            let mut sink = CollectSink {
                bound: f64::INFINITY,
                got: Vec::new(),
            };
            let stats = refine_cascade(&blk, &q, &paa, (0..n as u32).collect(), pool, &mut sink);
            (stats, sink.got)
        };
        let (s_none, g_none) = run(None);
        for width in [1usize, 2, 7] {
            let pool = WorkerPool::new(width);
            let (s_pool, g_pool) = run(Some(&pool));
            assert_eq!(s_none, s_pool, "stats differ at width {width}");
            assert_eq!(g_none.len(), g_pool.len());
            for (a, b) in g_none.iter().zip(&g_pool) {
                assert_eq!(a.0, b.0, "rid order differs at width {width}");
                assert_eq!(a.1.to_bits(), b.1.to_bits(), "distance bits differ");
            }
        }
    }

    #[test]
    fn prefilter_never_drops_within_bound_candidates() {
        // Soundness: any candidate whose true squared distance ≤ bound
        // must be accepted (the PAA distance lower-bounds the true one).
        let blk = block(300, 64);
        let q = TimeSeries::new(series(17, 64));
        let paa = tardis_isax::paa(q.values(), 8).unwrap();
        for bound in [0.5, 2.0, 10.0, 50.0] {
            let mut sink = CollectSink {
                bound,
                got: Vec::new(),
            };
            refine_cascade(&blk, &q, &paa, (0..300).collect(), None, &mut sink);
            let accepted: std::collections::HashSet<RecordId> =
                sink.got.iter().map(|&(r, _)| r).collect();
            for rid in 0..300u64 {
                let d = squared_euclidean_lanes(q.values(), blk.series(rid as usize));
                if d <= bound {
                    assert!(accepted.contains(&rid), "bound {bound}: rid {rid} (d²={d}) lost");
                }
            }
        }
    }

    #[test]
    fn sidecarless_block_skips_prefilter() {
        // Non-uniform lengths disable the sidecar; the cascade must fall
        // back to per-candidate kernels without pruning anything.
        let mut b = SeriesBlockBuilder::new(8);
        b.push(0, &series(0, 64));
        b.push(1, &series(1, 48));
        b.push(2, &series(2, 64));
        let blk = b.finish();
        let q = TimeSeries::new(series(9, 64));
        let paa = tardis_isax::paa(q.values(), 8).unwrap();
        let mut sink = CollectSink {
            bound: f64::INFINITY,
            got: Vec::new(),
        };
        let stats = refine_cascade(&blk, &q, &paa, vec![0, 1, 2], None, &mut sink);
        assert_eq!(stats.paa_pruned, 0);
        // The length-mismatched candidate abandons; the others refine.
        assert_eq!(stats.refined, 2);
        assert_eq!(stats.abandoned, 1);
    }
}
