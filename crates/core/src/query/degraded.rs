//! Degraded-mode query serving.
//!
//! Replication masks single-replica loss transparently, but when *every*
//! replica of a partition's block is dead or corrupt the query layer has
//! to choose: fail the query, or answer from the partitions that are
//! still reachable. [`DegradedPolicy`] makes that choice explicit, and
//! every degraded entry point returns a [`Degraded`] wrapper whose
//! [`Completeness`] report says exactly which partitions were skipped and
//! whether the answer still carries its full guarantee.
//!
//! The first permanent storage failure a partition load hits quarantines
//! the partition in [`Metrics`](tardis_cluster::Metrics) (per-partition
//! failure counters plus an unavailable set), so later queries skip it —
//! or fail fast with [`CoreError::PartitionUnavailable`] — without
//! re-walking the dead blocks. A successful `Dfs::scrub` followed by
//! `Metrics::reset_partition_health` lifts the quarantine.

use crate::error::CoreError;
use crate::index::TardisIndex;
use crate::local::TardisL;
use tardis_cluster::Cluster;

/// How a query responds to a partition with no readable replicas.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DegradedPolicy {
    /// Propagate the storage failure (or
    /// [`CoreError::PartitionUnavailable`] once quarantined). This is
    /// what the plain, non-degraded entry points do.
    #[default]
    FailFast,
    /// Skip unreachable partitions and answer from the rest, reporting
    /// the gap in the [`Completeness`].
    BestEffort,
}

/// Which partitions a degraded query actually covered.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Completeness {
    /// Partition loads performed (matches the answer's
    /// `partitions_loaded` accounting).
    pub partitions_visited: usize,
    /// Partitions skipped because no replica could serve them, ascending
    /// and deduplicated.
    pub partitions_skipped: Vec<u32>,
    /// Whether the answer still carries the full guarantee of its query
    /// type. Exact match / range / exact kNN: equality with fault-free
    /// execution. A skip does not always break it — exact kNN stays
    /// exact when only seed-phase partitions were skipped and every
    /// pruned-in partition of the refine phase was visited.
    pub exact: bool,
}

impl Completeness {
    /// A fully served query: nothing skipped, guarantee intact.
    pub fn complete(partitions_visited: usize) -> Completeness {
        Completeness {
            partitions_visited,
            partitions_skipped: Vec::new(),
            exact: true,
        }
    }

    /// Normalizes a skip list into a report: sorted, deduplicated, with
    /// `exact` as given (callers decide whether the skips broke the
    /// guarantee).
    pub(crate) fn from_parts(
        partitions_visited: usize,
        mut partitions_skipped: Vec<u32>,
        exact: bool,
    ) -> Completeness {
        partitions_skipped.sort_unstable();
        partitions_skipped.dedup();
        Completeness {
            partitions_visited,
            partitions_skipped,
            exact,
        }
    }

    /// True when no partition was skipped.
    pub fn is_complete(&self) -> bool {
        self.partitions_skipped.is_empty()
    }
}

/// An answer produced under a [`DegradedPolicy`], with its coverage
/// report attached.
#[derive(Debug, Clone)]
pub struct Degraded<T> {
    /// The (possibly partial) answer.
    pub answer: T,
    /// Which partitions the query covered and what that means for the
    /// answer's guarantee.
    pub completeness: Completeness,
}

impl TardisIndex {
    /// Loads a partition under a degraded-serving policy.
    ///
    /// * An already-quarantined partition is not touched: `FailFast`
    ///   returns [`CoreError::PartitionUnavailable`], `BestEffort`
    ///   returns `Ok(None)` and bumps the skip counter.
    /// * A load that fails with a *permanent* storage error (every
    ///   replica of some block dead or corrupt) records the failure
    ///   against the partition and quarantines it, then resolves the
    ///   same way.
    /// * Transient storage errors (a retry budget exhausted on an
    ///   injected fault) and logical errors propagate under both
    ///   policies — skipping them would make best-effort answers
    ///   nondeterministic.
    ///
    /// # Errors
    /// [`CoreError::UnknownPartition`], [`CoreError::PartitionUnavailable`]
    /// (fail-fast), or the underlying load error as described above.
    pub fn load_partition_degraded(
        &self,
        cluster: &Cluster,
        pid: u32,
        policy: DegradedPolicy,
    ) -> Result<Option<TardisL>, CoreError> {
        use tardis_cluster::MaybeTransient;
        if self.partitions().get(pid as usize).is_none() {
            return Err(CoreError::UnknownPartition { pid });
        }
        let metrics = cluster.metrics();
        if !metrics.partition_available(pid) {
            return match policy {
                DegradedPolicy::FailFast => Err(CoreError::PartitionUnavailable { pid }),
                DegradedPolicy::BestEffort => {
                    metrics.record_partition_skipped();
                    Ok(None)
                }
            };
        }
        match self.load_partition(cluster, pid) {
            Ok(local) => Ok(Some(local)),
            Err(e @ CoreError::Cluster(_)) if !e.is_transient() => {
                metrics.record_partition_failure(pid);
                metrics.mark_partition_unavailable(pid);
                match policy {
                    DegradedPolicy::FailFast => Err(e),
                    DegradedPolicy::BestEffort => {
                        metrics.record_partition_skipped();
                        Ok(None)
                    }
                }
            }
            Err(e) => Err(e),
        }
    }

    /// Loads sealed delta `idx` under a degraded-serving policy,
    /// mirroring [`Self::load_partition_degraded`]. Deltas share the
    /// base partitions' quarantine machinery under the synthetic id
    /// `DELTA_PID_BASE | idx`, so a dead delta is skipped (or fails
    /// fast) without colliding with any base partition's health
    /// accounting.
    ///
    /// # Errors
    /// [`CoreError::UnknownPartition`], [`CoreError::PartitionUnavailable`]
    /// (fail-fast), or the underlying load error.
    ///
    /// [`DELTA_PID_BASE`]: crate::index::DELTA_PID_BASE
    pub fn load_delta_degraded(
        &self,
        cluster: &Cluster,
        idx: usize,
        policy: DegradedPolicy,
    ) -> Result<Option<TardisL>, CoreError> {
        use crate::index::DELTA_PID_BASE;
        use tardis_cluster::MaybeTransient;
        let marker = DELTA_PID_BASE | idx as u32;
        if self.deltas().get(idx).is_none() {
            return Err(CoreError::UnknownPartition { pid: marker });
        }
        let metrics = cluster.metrics();
        if !metrics.partition_available(marker) {
            return match policy {
                DegradedPolicy::FailFast => Err(CoreError::PartitionUnavailable { pid: marker }),
                DegradedPolicy::BestEffort => {
                    metrics.record_partition_skipped();
                    Ok(None)
                }
            };
        }
        match self.load_delta(cluster, idx) {
            Ok(local) => Ok(Some(local)),
            Err(e @ CoreError::Cluster(_)) if !e.is_transient() => {
                metrics.record_partition_failure(marker);
                metrics.mark_partition_unavailable(marker);
                match policy {
                    DegradedPolicy::FailFast => Err(e),
                    DegradedPolicy::BestEffort => {
                        metrics.record_partition_skipped();
                        Ok(None)
                    }
                }
            }
            Err(e) => Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn completeness_helpers() {
        let c = Completeness::complete(3);
        assert_eq!(c.partitions_visited, 3);
        assert!(c.is_complete());
        assert!(c.exact);

        let c = Completeness::from_parts(2, vec![5, 1, 5], false);
        assert_eq!(c.partitions_skipped, vec![1, 5]);
        assert!(!c.is_complete());
        assert!(!c.exact);

        // Callers may keep `exact` despite skips (seed-only skips).
        let c = Completeness::from_parts(2, vec![7], true);
        assert!(c.exact);
        assert!(!c.is_complete());
    }

    #[test]
    fn policy_default_is_fail_fast() {
        assert_eq!(DegradedPolicy::default(), DegradedPolicy::FailFast);
    }
}
