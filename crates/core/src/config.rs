//! TARDIS configuration (Table I notation, Table II defaults).

use crate::error::CoreError;
use tardis_isax::breakpoints::MAX_CARD_BITS;

/// Configuration of the whole TARDIS framework.
///
/// Defaults follow Table II of the paper, with the partition capacity
/// (`g_max_size`) left to the caller since it scales with the deployment
/// (the paper derives it from the HDFS block size: ~110,000 records per
/// 128 MB block for length-256 series).
#[derive(Debug, Clone, PartialEq)]
pub struct TardisConfig {
    /// Word length `w` — number of PAA segments (Table II: 8).
    pub word_len: usize,
    /// Initial cardinality bits `b`; every signature carries `b` planes
    /// and the trees are at most `b` layers deep (Table II: 64 = 2^6).
    pub initial_card_bits: u8,
    /// `G-MaxSize`: split threshold of Tardis-G leaves = partition
    /// capacity in records.
    pub g_max_size: usize,
    /// `L-MaxSize`: split threshold of Tardis-L leaves (Table II: 1,000).
    pub l_max_size: usize,
    /// Block-level sampling fraction for global-index statistics
    /// (Table II: 10%).
    pub sampling_fraction: f64,
    /// `pth`: maximum partitions loaded by Multi-Partitions Access
    /// (Table II: 40).
    pub pth: usize,
    /// Bloom filter false-positive target per partition.
    pub bloom_fpp: f64,
    /// Whether partition Bloom filters are built at all (disable for the
    /// Figure 12 overhead ablation; exact-match then behaves like the
    /// non-Bloom variant regardless of the query flag).
    pub bloom_enabled: bool,
    /// Whether partition Bloom filters stay resident in master memory
    /// (§V-A: "it resides in memory or is read from disk with low
    /// latency").
    pub bloom_in_memory: bool,
    /// Clustered index (records stored in partitions, the headline
    /// configuration) vs un-clustered (partitions store signatures +
    /// record ids only).
    pub clustered: bool,
    /// Seed for sampling and any tie-breaking randomness.
    pub seed: u64,
}

impl Default for TardisConfig {
    fn default() -> Self {
        TardisConfig {
            word_len: 8,
            initial_card_bits: 6,
            g_max_size: 10_000,
            l_max_size: 1_000,
            sampling_fraction: 0.10,
            pth: 40,
            bloom_fpp: 0.005,
            bloom_enabled: true,
            bloom_in_memory: true,
            clustered: true,
            seed: 0x7A12_D15C,
        }
    }
}

impl TardisConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    /// [`CoreError::InvalidConfig`] describing the first violation.
    pub fn validate(&self) -> Result<(), CoreError> {
        if self.word_len == 0 || self.word_len > 32 || self.word_len % 4 != 0 {
            return Err(CoreError::InvalidConfig {
                reason: "word_len must be a multiple of 4 in 4..=32".into(),
            });
        }
        if self.initial_card_bits == 0 || self.initial_card_bits > MAX_CARD_BITS {
            return Err(CoreError::InvalidConfig {
                reason: format!("initial_card_bits must be in 1..={MAX_CARD_BITS}"),
            });
        }
        if self.g_max_size == 0 {
            return Err(CoreError::InvalidConfig {
                reason: "g_max_size must be positive".into(),
            });
        }
        if self.l_max_size == 0 {
            return Err(CoreError::InvalidConfig {
                reason: "l_max_size must be positive".into(),
            });
        }
        if !(self.sampling_fraction > 0.0 && self.sampling_fraction <= 1.0) {
            return Err(CoreError::InvalidConfig {
                reason: "sampling_fraction must be in (0, 1]".into(),
            });
        }
        if self.pth == 0 {
            return Err(CoreError::InvalidConfig {
                reason: "pth must be positive".into(),
            });
        }
        if !(self.bloom_fpp > 0.0 && self.bloom_fpp < 1.0) {
            return Err(CoreError::InvalidConfig {
                reason: "bloom_fpp must be in (0, 1)".into(),
            });
        }
        Ok(())
    }

    /// The initial cardinality `2^b`.
    pub fn initial_cardinality(&self) -> u32 {
        1 << self.initial_card_bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid_and_matches_table2() {
        let c = TardisConfig::default();
        c.validate().unwrap();
        assert_eq!(c.word_len, 8);
        assert_eq!(c.initial_cardinality(), 64);
        assert_eq!(c.l_max_size, 1000);
        assert_eq!(c.sampling_fraction, 0.10);
        assert_eq!(c.pth, 40);
        assert!(c.clustered);
    }

    #[test]
    fn rejects_bad_word_len() {
        for w in [0usize, 3, 5, 36] {
            let c = TardisConfig {
                word_len: w,
                ..Default::default()
            };
            assert!(c.validate().is_err(), "w={w}");
        }
    }

    #[test]
    fn rejects_bad_cardinality() {
        for b in [0u8, 10] {
            let c = TardisConfig {
                initial_card_bits: b,
                ..Default::default()
            };
            assert!(c.validate().is_err(), "b={b}");
        }
    }

    #[test]
    fn rejects_bad_fractions() {
        for f in [0.0f64, -0.5, 1.5] {
            let c = TardisConfig {
                sampling_fraction: f,
                ..Default::default()
            };
            assert!(c.validate().is_err(), "f={f}");
        }
        let c = TardisConfig {
            bloom_fpp: 0.0,
            ..Default::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn rejects_zero_sizes() {
        for field in 0..3 {
            let mut c = TardisConfig::default();
            match field {
                0 => c.g_max_size = 0,
                1 => c.l_max_size = 0,
                _ => c.pth = 0,
            }
            assert!(c.validate().is_err(), "field {field}");
        }
    }

    #[test]
    fn full_sampling_is_allowed() {
        let c = TardisConfig {
            sampling_fraction: 1.0,
            ..Default::default()
        };
        c.validate().unwrap();
    }
}
