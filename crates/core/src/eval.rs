//! Ground truth and search-quality metrics (§VI-C2).
//!
//! * [`recall`] — Equation 5: `|G(q) ∩ R(q)| / |G(q)|`.
//! * [`error_ratio`] — Equation 6: mean of `ED(q, rⱼ) / ED(q, gⱼ)` over
//!   ranks `j`, ≥ 1 with 1 the ideal.
//! * [`ground_truth_knn`] — exact kNN by a parallel brute-force scan over
//!   the dataset blocks (practical at reproduction scale; the paper's
//!   faster threshold-filter shortcut exists as
//!   [`ground_truth_knn_filtered`]).

use crate::error::CoreError;
use crate::index::TardisIndex;
use crate::query::knn::KnnStrategy;
use std::collections::HashSet;
use tardis_cluster::{decode_records, Cluster};
use tardis_ts::{squared_euclidean, Record, RecordId, TimeSeries};

/// One exact neighbor: distance and record id.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Neighbor {
    /// Euclidean distance to the query.
    pub distance: f64,
    /// The neighbor's record id.
    pub rid: RecordId,
}

/// Exact kNN by brute force: scans every block of `dataset_file` in
/// parallel and merges per-block top-k sets.
///
/// # Errors
/// Propagates DFS and decoding errors.
pub fn ground_truth_knn(
    cluster: &Cluster,
    dataset_file: &str,
    query: &TimeSeries,
    k: usize,
) -> Result<Vec<Neighbor>, CoreError> {
    if k == 0 {
        return Ok(Vec::new());
    }
    let block_ids = cluster.dfs().list_blocks(dataset_file)?;
    let per_block: Vec<Result<Vec<Neighbor>, CoreError>> =
        cluster.pool().par_map(block_ids, |id| {
            let bytes = cluster.dfs().read_block(&id)?;
            let records: Vec<Record> = decode_records(&bytes)?;
            cluster.metrics().record_task();
            let mut local: Vec<Neighbor> = records
                .iter()
                .map(|r| Neighbor {
                    distance: squared_euclidean(query.values(), r.ts.values()).sqrt(),
                    rid: r.rid,
                })
                .collect();
            local.sort_by(|a, b| {
                a.distance
                    .partial_cmp(&b.distance)
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            local.truncate(k);
            Ok(local)
        });
    let mut merged = Vec::with_capacity(k * per_block.len());
    for block in per_block {
        merged.extend(block?);
    }
    merged.sort_by(|a, b| {
        a.distance
            .partial_cmp(&b.distance)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    merged.truncate(k);
    Ok(merged)
}

/// The paper's faster ground-truth method (§VI-C2): use the index's lower
/// bounds to filter partitions and nodes with a distance threshold (7.5 in
/// the paper), then take the top-k among surviving candidates. Falls back
/// to the brute-force scan when fewer than `k` candidates survive.
///
/// # Errors
/// Propagates DFS, conversion, and decoding errors.
pub fn ground_truth_knn_filtered(
    index: &TardisIndex,
    cluster: &Cluster,
    dataset_file: &str,
    query: &TimeSeries,
    k: usize,
    threshold: f64,
) -> Result<Vec<Neighbor>, CoreError> {
    if k == 0 {
        return Ok(Vec::new());
    }
    let converter = index.global().converter();
    let paa = converter.paa_of(query)?;
    let n = query.len();
    // Filter partitions by the lower bound of their covering node: a
    // partition can be skipped when every candidate in it is provably
    // farther than the threshold.
    let mut survivors: Vec<Neighbor> = Vec::new();
    for pid in 0..index.n_partitions() as u32 {
        let local = index.load_partition(cluster, pid)?;
        for idx in local.prune_scan(&paa, n, threshold)? {
            let d = squared_euclidean(query.values(), local.block().series(idx as usize)).sqrt();
            if d <= threshold {
                survivors.push(Neighbor {
                    distance: d,
                    rid: local.block().rid(idx as usize),
                });
            }
        }
    }
    if survivors.len() < k {
        return ground_truth_knn(cluster, dataset_file, query, k);
    }
    survivors.sort_by(|a, b| {
        a.distance
            .partial_cmp(&b.distance)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    survivors.truncate(k);
    Ok(survivors)
}

/// Recall (Equation 5): `|G(q) ∩ R(q)| / |G(q)|` — the fraction of exact
/// neighbor *ids* recovered. Set semantics: duplicate ids in the result
/// count once.
///
/// Returns 1.0 for an empty ground truth (vacuous).
pub fn recall(result: &[(f64, RecordId)], truth: &[Neighbor]) -> f64 {
    if truth.is_empty() {
        return 1.0;
    }
    let truth_ids: HashSet<RecordId> = truth.iter().map(|n| n.rid).collect();
    let result_ids: HashSet<RecordId> = result.iter().map(|&(_, rid)| rid).collect();
    truth_ids.intersection(&result_ids).count() as f64 / truth_ids.len() as f64
}

/// Error ratio (Equation 6): mean over ranks of
/// `ED(q, rⱼ) / ED(q, gⱼ)`, ≥ 1, ideal 1. Zero distances (the query is a
/// dataset member) are floored at a small epsilon on both sides so the
/// member rank contributes 1 rather than 0/0.
///
/// Ranks beyond the result length contribute nothing; an empty result
/// yields `f64::INFINITY` when the truth is non-empty.
pub fn error_ratio(result: &[(f64, RecordId)], truth: &[Neighbor]) -> f64 {
    if truth.is_empty() {
        return 1.0;
    }
    if result.is_empty() {
        return f64::INFINITY;
    }
    const EPS: f64 = 1e-9;
    let k = truth.len().min(result.len());
    let sum: f64 = (0..k)
        .map(|j| result[j].0.max(EPS) / truth[j].distance.max(EPS))
        .sum();
    sum / k as f64
}

/// Convenience: runs a strategy over a query set and aggregates recall,
/// error ratio, and mean query time against the provided ground truths.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QualitySummary {
    /// Mean recall over the workload.
    pub recall: f64,
    /// Mean error ratio over the workload.
    pub error_ratio: f64,
    /// Mean wall-clock per query.
    pub avg_query_time: std::time::Duration,
    /// Mean partitions loaded per query.
    pub avg_partitions_loaded: f64,
}

/// Evaluates a kNN strategy over queries with precomputed ground truths.
///
/// # Panics
/// Panics if `queries` and `truths` lengths differ or are empty.
///
/// # Errors
/// Propagates query errors.
pub fn evaluate_strategy(
    index: &TardisIndex,
    cluster: &Cluster,
    queries: &[TimeSeries],
    truths: &[Vec<Neighbor>],
    k: usize,
    strategy: KnnStrategy,
) -> Result<QualitySummary, CoreError> {
    assert_eq!(queries.len(), truths.len(), "queries/truths mismatch");
    assert!(!queries.is_empty(), "need at least one query");
    let mut recall_sum = 0.0;
    let mut ratio_sum = 0.0;
    let mut loads = 0usize;
    let t0 = std::time::Instant::now();
    for (q, truth) in queries.iter().zip(truths) {
        let ans = crate::query::knn::knn_approximate(index, cluster, q, k, strategy)?;
        recall_sum += recall(&ans.neighbors, truth);
        ratio_sum += error_ratio(&ans.neighbors, truth);
        loads += ans.partitions_loaded;
    }
    let n = queries.len() as f64;
    Ok(QualitySummary {
        recall: recall_sum / n,
        error_ratio: ratio_sum / n,
        avg_query_time: t0.elapsed() / queries.len() as u32,
        avg_partitions_loaded: loads as f64 / n,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nb(distance: f64, rid: u64) -> Neighbor {
        Neighbor { distance, rid }
    }

    #[test]
    fn recall_basics() {
        let truth = vec![nb(0.0, 1), nb(1.0, 2), nb(2.0, 3), nb(3.0, 4)];
        let result = vec![(0.0, 1u64), (1.5, 9), (2.0, 3), (9.0, 8)];
        assert_eq!(recall(&result, &truth), 0.5);
        assert_eq!(recall(&[], &truth), 0.0);
        assert_eq!(recall(&result, &[]), 1.0);
    }

    #[test]
    fn recall_perfect() {
        let truth = vec![nb(0.0, 1), nb(1.0, 2)];
        let result = vec![(0.0, 2u64), (0.1, 1)];
        assert_eq!(recall(&result, &truth), 1.0);
    }

    #[test]
    fn error_ratio_ideal_is_one() {
        let truth = vec![nb(1.0, 1), nb(2.0, 2)];
        let result = vec![(1.0, 1u64), (2.0, 2)];
        assert!((error_ratio(&result, &truth) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn error_ratio_above_one_for_worse_results() {
        let truth = vec![nb(1.0, 1), nb(2.0, 2)];
        let result = vec![(2.0, 9u64), (4.0, 8)];
        assert!((error_ratio(&result, &truth) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn error_ratio_handles_zero_distance_member() {
        // Query is a dataset member: g₁ = 0 and r₁ = 0 → contributes 1.
        let truth = vec![nb(0.0, 1), nb(2.0, 2)];
        let result = vec![(0.0, 1u64), (2.0, 2)];
        assert!((error_ratio(&result, &truth) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn error_ratio_empty_result_is_infinite() {
        let truth = vec![nb(1.0, 1)];
        assert!(error_ratio(&[], &truth).is_infinite());
        assert_eq!(error_ratio(&[], &[]), 1.0);
    }

    #[test]
    fn error_ratio_truncates_to_shorter() {
        let truth = vec![nb(1.0, 1), nb(2.0, 2), nb(3.0, 3)];
        let result = vec![(1.0, 1u64)];
        assert!((error_ratio(&result, &truth) - 1.0).abs() < 1e-12);
    }
}
