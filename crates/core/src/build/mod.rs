//! Bounded-memory (bottom-up) index construction.
//!
//! The default build path ([`crate::index::TardisIndex::build`])
//! materializes every converted record of every partition in RAM at
//! once, which caps practical builds well below the scales the paper
//! targets. This module provides the Coconut-style alternative: because
//! iSAX-T signatures are *sortable* byte strings, the index can be
//! constructed bottom-up from a globally sorted entry stream at a peak
//! memory bounded by the sort-run budget instead of the dataset size.
//!
//! [`extsort`] implements the pipeline; see
//! [`crate::index::TardisIndex::build_sorted`] for the public entry
//! point.

pub mod extsort;

pub use extsort::SortedBuildOptions;
