//! External-sort bottom-up build: sorted runs on the DFS, a k-way merge
//! in global signature order, and leaf-streamed partition construction.
//!
//! The pipeline replaces the in-memory build's read-all/shuffle-all/
//! build-all steps with four bounded-memory stages:
//!
//! 1. **Scan + convert in waves.** Dataset blocks are read and converted
//!    in parallel a wave at a time; each converted entry is tagged with
//!    its target partition id and its global dataset position (`seq`).
//! 2. **Spill sorted runs.** Once the buffered entries exceed the run
//!    budget, they are sorted by the merge key and written to the
//!    replicated DFS as `extsort-run-*` files — checksum-framed blocks
//!    like any other, so run I/O inherits fault injection, retries, and
//!    scrub coverage for free. Runs are deleted after a successful
//!    merge.
//! 3. **k-way merge.** Run cursors stream one block at a time; a binary
//!    heap yields entries in `(pid, signature descending, seq)` order.
//! 4. **Leaf-streamed partition writes.** Each partition is materialized
//!    exactly once, in merge order, by a writer that replays the
//!    Tardis-L split rules on the open (descending) path only — closed
//!    subtrees are reduced to size accounting, emitted leaves go
//!    straight to clustered DFS blocks, and at most one partition's
//!    draft state is alive at a time.
//!
//! **Byte-identity contract.** The output is byte-identical to the
//! in-memory build — same partition files, Bloom sidecars, metadata, and
//! therefore identical query answers. The merge key makes this work:
//!
//! * The in-memory shuffle concatenates per-block buckets in dataset
//!   block order, so a partition's insertion order equals global dataset
//!   order — replicated here by the `seq` tiebreak.
//! * `SigTree::subtree_leaves` emits leaves in *descending* plane-key
//!   order (stack DFS over ascending `BTreeMap` children), and fixed
//!   length signatures sort lexicographically exactly like their
//!   plane-key vectors — so descending signature order visits entries
//!   grouped by final leaf, in on-disk leaf order.
//! * Within a leaf the real tree keeps insertion (`seq`) order, so each
//!   closed leaf's buffered entries are re-sorted by `seq` before
//!   emission.
//! * A leaf's identity depends only on the signature multiset: a node is
//!   internal exactly when its subtree count exceeds `l_max_size` and it
//!   sits above `initial_card_bits` — which the writer can decide online
//!   from prefix counts, holding only the open path plus undecided
//!   entry groups (at most `l_max_size` entries per open layer).

use crate::config::TardisConfig;
use crate::entry::{encode_clustered_block, Entry, SigEntry};
use crate::error::CoreError;
use crate::global::{PartitionId, TardisG};
use crate::index::{BuildReport, PartitionMeta, PARTITION_BLOCK_RECORDS};
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::time::Instant;
use tardis_bloom::BloomFilter;
use tardis_cluster::{
    decode_records, encode_records, BlockId, Broadcast, Cluster, ClusterError, Decode, Encode,
    Tracer,
};
use tardis_isax::SigT;
use tardis_ts::Record;

/// DFS name prefix of spilled run files (`extsort-run-00000`, …).
pub const RUN_FILE_PREFIX: &str = "extsort-run-";

/// Records per spilled run block. Small enough that one in-flight block
/// per run cursor stays negligible next to the run budget.
const RUN_BLOCK_RECORDS: usize = 512;

/// Dataset blocks read + converted per parallel wave. Bounds the raw
/// bytes in flight between budget checks; the run buffer itself is
/// bounded by [`SortedBuildOptions::run_budget_bytes`].
const SCAN_WAVE_BLOCKS: usize = 16;

/// Tuning knobs of [`crate::index::TardisIndex::build_sorted`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SortedBuildOptions {
    /// Approximate bytes of converted entries buffered in memory before
    /// a sorted run is spilled to the DFS. Peak build memory scales with
    /// this budget (plus one partition's draft state), not the dataset.
    pub run_budget_bytes: usize,
}

impl Default for SortedBuildOptions {
    fn default() -> Self {
        SortedBuildOptions {
            run_budget_bytes: 32 << 20,
        }
    }
}

/// Everything `TardisIndex::build_sorted` needs to assemble the handle.
pub(crate) struct SortedBuildOutput {
    pub global: TardisG,
    pub parts: Vec<PartitionMeta>,
    pub blooms: Vec<Option<BloomFilter>>,
    pub report: BuildReport,
    pub dataset_block_records: usize,
}

/// One spilled entry: merge key fields plus the converted entry.
struct RunRecord {
    pid: PartitionId,
    seq: u64,
    entry: Entry,
}

impl Encode for RunRecord {
    fn encode(&self, buf: &mut bytes::BytesMut) {
        use bytes::BufMut;
        buf.put_u32_le(self.pid);
        buf.put_u64_le(self.seq);
        self.entry.encode(buf);
    }

    fn encoded_len_hint(&self) -> usize {
        12 + self.entry.encoded_len_hint()
    }
}

impl Decode for RunRecord {
    fn decode(buf: &mut &[u8]) -> Result<Self, ClusterError> {
        use bytes::Buf;
        if buf.len() < 12 {
            return Err(ClusterError::Codec {
                context: "run record header",
            });
        }
        let pid = buf.get_u32_le();
        let seq = buf.get_u64_le();
        let entry = Entry::decode(buf)?;
        Ok(RunRecord { pid, seq, entry })
    }
}

/// The global merge order: partition id ascending, signature
/// *descending* (on-disk leaf order), dataset position ascending
/// (in-leaf insertion order). Total — `seq` is globally unique.
fn merge_cmp(a: &RunRecord, b: &RunRecord) -> Ordering {
    a.pid
        .cmp(&b.pid)
        .then_with(|| b.entry.sig.cmp(&a.entry.sig))
        .then_with(|| a.seq.cmp(&b.seq))
}

/// In-memory footprint estimate of one buffered run record, used
/// against the run budget.
fn run_record_bytes(entry: &Entry) -> usize {
    std::mem::size_of::<RunRecord>()
        + entry.sig.nibbles().len()
        + entry.record.ts.len() * std::mem::size_of::<f32>()
}

/// Sorts and spills the buffered records as run `idx`, clearing the
/// buffer (capacity is retained for the next run).
fn spill_run(
    cluster: &Cluster,
    idx: usize,
    records: &mut Vec<RunRecord>,
) -> Result<String, CoreError> {
    records.sort_unstable_by(merge_cmp);
    let file = format!("{RUN_FILE_PREFIX}{idx:05}");
    for chunk in records.chunks(RUN_BLOCK_RECORDS) {
        cluster.dfs().append_block(&file, &encode_records(chunk))?;
    }
    records.clear();
    Ok(file)
}

/// Streams one spilled run back in order, one DFS block in memory at a
/// time. Reads go through the normal replicated path, so injected
/// faults are retried like any other block read.
struct RunCursor<'a> {
    cluster: &'a Cluster,
    blocks: Vec<BlockId>,
    next_block: usize,
    items: std::vec::IntoIter<RunRecord>,
}

impl<'a> RunCursor<'a> {
    fn new(cluster: &'a Cluster, file: &str) -> Result<RunCursor<'a>, CoreError> {
        Ok(RunCursor {
            cluster,
            blocks: cluster.dfs().list_blocks(file)?,
            next_block: 0,
            items: Vec::new().into_iter(),
        })
    }

    fn next(&mut self) -> Result<Option<RunRecord>, CoreError> {
        loop {
            if let Some(r) = self.items.next() {
                return Ok(Some(r));
            }
            if self.next_block >= self.blocks.len() {
                return Ok(None);
            }
            let bytes = self.cluster.dfs().read_block(&self.blocks[self.next_block])?;
            self.next_block += 1;
            self.items = decode_records::<RunRecord>(&bytes)?.into_iter();
        }
    }
}

/// Heap adapter inverting [`merge_cmp`] so `BinaryHeap::pop` yields the
/// globally smallest record.
struct HeapItem {
    rec: RunRecord,
    src: usize,
}

impl PartialEq for HeapItem {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for HeapItem {}
impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> Ordering {
        merge_cmp(&other.rec, &self.rec).then_with(|| other.src.cmp(&self.src))
    }
}

/// k-way merge over run cursors.
struct RunMerger<'a> {
    cursors: Vec<RunCursor<'a>>,
    heap: BinaryHeap<HeapItem>,
}

impl<'a> RunMerger<'a> {
    fn new(cluster: &'a Cluster, files: &[String]) -> Result<RunMerger<'a>, CoreError> {
        let mut cursors = Vec::with_capacity(files.len());
        let mut heap = BinaryHeap::with_capacity(files.len());
        for (src, file) in files.iter().enumerate() {
            let mut cursor = RunCursor::new(cluster, file)?;
            if let Some(rec) = cursor.next()? {
                heap.push(HeapItem { rec, src });
            }
            cursors.push(cursor);
        }
        Ok(RunMerger { cursors, heap })
    }

    fn next(&mut self) -> Result<Option<RunRecord>, CoreError> {
        let Some(top) = self.heap.pop() else {
            return Ok(None);
        };
        if let Some(rec) = self.cursors[top.src].next()? {
            self.heap.push(HeapItem { rec, src: top.src });
        }
        Ok(Some(top.rec))
    }
}

/// Number of leading bit-planes `a` and `b` share (0..=`max_bits`).
fn common_layers(a: &SigT, b: &SigT, max_bits: u8) -> u8 {
    let npp = a.nibbles_per_plane();
    let (an, bn) = (a.nibbles(), b.nibbles());
    for layer in 0..max_bits as usize {
        if an[layer * npp..(layer + 1) * npp] != bn[layer * npp..(layer + 1) * npp] {
            return layer as u8;
        }
    }
    max_bits
}

/// Semantic size of one tree node at `layer` with `n_children` links —
/// must mirror `sigtree::Node::mem_bytes` (packed signature + child
/// links + count + header) for `index_bytes` parity.
fn node_mem(config: &TardisConfig, layer: u8, n_children: usize) -> usize {
    let sig_nibbles = layer as usize * (config.word_len / 4);
    sig_nibbles.div_ceil(2) + n_children * 8 + 4 + 8
}

/// An entry buffered while its final leaf is still undecided.
struct PendingEntry {
    seq: u64,
    entry: Entry,
}

/// One open node on the writer's descending path.
///
/// Entries are buffered at the deepest node (`open_items`); when a node
/// closes undecided its entries bubble up as one *group* per closed
/// child. A node that crosses the split threshold becomes internal for
/// good and flushes its groups as final leaves; a node that closes
/// below the threshold under an internal parent *is* a final leaf.
struct DraftNode {
    layer: u8,
    count: u64,
    n_children: usize,
    internal: bool,
    /// Closed-child groups awaiting this node's internal/leaf decision,
    /// in close (descending-signature) order.
    groups: Vec<Vec<PendingEntry>>,
    /// Raw entries (deepest node only).
    open_items: Vec<PendingEntry>,
    /// Deepest node decided as a final max-depth leaf while still open:
    /// its entries stream straight to the block emitter.
    streaming: bool,
}

impl DraftNode {
    fn new(layer: u8) -> DraftNode {
        DraftNode {
            layer,
            count: 0,
            n_children: 0,
            internal: false,
            groups: Vec::new(),
            open_items: Vec::new(),
            streaming: false,
        }
    }
}

/// Builds one partition from its merged entry stream, holding only the
/// open tree path, undecided entry groups, and one pending output block
/// — never the whole partition. Produces byte-identical DFS files and
/// metadata to `persist_partition` over the same entries.
struct PartitionStreamWriter<'a> {
    cluster: &'a Cluster,
    config: &'a TardisConfig,
    pid: PartitionId,
    part_file: String,
    bloom_file: String,
    bloom: Option<BloomFilter>,
    stack: Vec<DraftNode>,
    prev_sig: Option<SigT>,
    /// Accumulated `Node::mem_bytes` of finalized nodes.
    node_bytes: usize,
    n_entries: u64,
    /// Entries awaiting the next clustered block write.
    pending: Vec<Entry>,
    wrote_block: bool,
}

impl<'a> PartitionStreamWriter<'a> {
    fn new(
        cluster: &'a Cluster,
        config: &'a TardisConfig,
        pid: PartitionId,
        expected_records: usize,
    ) -> Result<PartitionStreamWriter<'a>, CoreError> {
        let part_file = format!("part-{pid:05}");
        let bloom_file = format!("bloom-{pid:05}");
        // Same clean-slate delete the in-memory persist does. The Bloom
        // filter is sized from the total records routed to this pid
        // (known from the spill phase) — identical to sizing from the
        // materialized entry vector.
        cluster.dfs().delete_file(&part_file)?;
        let bloom = config
            .bloom_enabled
            .then(|| BloomFilter::with_capacity(expected_records.max(16), config.bloom_fpp));
        Ok(PartitionStreamWriter {
            cluster,
            config,
            pid,
            part_file,
            bloom_file,
            bloom,
            stack: Vec::new(),
            prev_sig: None,
            node_bytes: 0,
            n_entries: 0,
            pending: Vec::with_capacity(PARTITION_BLOCK_RECORDS.min(4096)),
            wrote_block: false,
        })
    }

    /// Feeds the next entry in merge order (signature descending, then
    /// `seq` ascending).
    fn push(&mut self, seq: u64, entry: Entry) -> Result<(), CoreError> {
        let max_bits = self.config.initial_card_bits;
        if let Some(filter) = self.bloom.as_mut() {
            filter.insert(entry.sig.nibbles());
        }
        self.n_entries += 1;
        match self.prev_sig.take() {
            None => {
                debug_assert!(self.stack.is_empty());
                for layer in 0..=max_bits {
                    self.stack.push(DraftNode::new(layer));
                }
            }
            Some(prev) => {
                let d = common_layers(&prev, &entry.sig, max_bits);
                self.close_to_depth(d)?;
                for layer in (d + 1)..=max_bits {
                    self.stack.push(DraftNode::new(layer));
                }
            }
        }
        for node in &mut self.stack {
            node.count += 1;
        }
        self.promote_internal()?;
        self.prev_sig = Some(entry.sig.clone());
        // Deliver the entry. `initial_card_bits >= 1` (validated), so the
        // deepest node always has a parent on the stack.
        let parent_internal = self.stack[self.stack.len() - 2].internal;
        if parent_internal {
            // Max-depth node under an internal parent is a final leaf no
            // matter how large it grows; its entries arrive in seq order
            // (single signature), so stream them out immediately.
            let deepest = self.stack.last_mut().expect("path open");
            deepest.streaming = true;
            let buffered = std::mem::take(&mut deepest.open_items);
            for item in buffered {
                self.emit_entry(item.entry)?;
            }
            self.emit_entry(entry)?;
        } else {
            self.stack
                .last_mut()
                .expect("path open")
                .open_items
                .push(PendingEntry { seq, entry });
        }
        Ok(())
    }

    /// Marks open nodes whose count crossed the split threshold as
    /// internal, flushing their buffered groups as final leaves — top
    /// down, so shallower (lexicographically later-closing) groups emit
    /// before deeper ones, matching on-disk leaf order.
    fn promote_internal(&mut self) -> Result<(), CoreError> {
        let threshold = self.config.l_max_size as u64;
        let max_bits = self.config.initial_card_bits;
        let mut i = 0;
        while i < self.stack.len() {
            let node = &mut self.stack[i];
            if !node.internal && node.layer < max_bits && node.count > threshold {
                node.internal = true;
                let child_layer = node.layer + 1;
                let groups = std::mem::take(&mut node.groups);
                for group in groups {
                    self.emit_leaf(child_layer, group)?;
                    self.stack[i].n_children += 1;
                }
            }
            i += 1;
        }
        Ok(())
    }

    /// Closes open nodes deeper than `depth`, deepest first.
    fn close_to_depth(&mut self, depth: u8) -> Result<(), CoreError> {
        while self.stack.last().map(|n| n.layer).unwrap_or(0) > depth {
            let node = self.stack.pop().expect("non-empty stack");
            self.close_node(node)?;
        }
        Ok(())
    }

    /// Finalizes a closed node into its parent (the new stack top).
    fn close_node(&mut self, node: DraftNode) -> Result<(), CoreError> {
        let parent = self.stack.last_mut().expect("closed node has a parent");
        if node.internal {
            // Children already emitted/accounted; the node itself is a
            // finalized interior node.
            debug_assert!(node.groups.is_empty() && node.open_items.is_empty());
            self.node_bytes += node_mem(self.config, node.layer, node.n_children);
            parent.n_children += 1;
        } else if node.streaming {
            // Decided max-depth leaf; entries already emitted in order.
            debug_assert!(node.groups.is_empty() && node.open_items.is_empty());
            self.node_bytes += node_mem(self.config, node.layer, 0);
            parent.n_children += 1;
        } else {
            // Undecided: merge buffered descendants into one group. If
            // the parent is already internal this group is a final leaf
            // child; otherwise its fate bubbles up with the parent.
            let mut merged: Vec<PendingEntry> =
                Vec::with_capacity(node.groups.iter().map(Vec::len).sum::<usize>() + node.open_items.len());
            for group in node.groups {
                merged.extend(group);
            }
            merged.extend(node.open_items);
            if parent.internal {
                parent.n_children += 1;
                let layer = node.layer;
                self.emit_leaf(layer, merged)?;
            } else {
                parent.groups.push(merged);
            }
        }
        Ok(())
    }

    /// Emits one finalized leaf: entries restored to insertion (`seq`)
    /// order, then appended to the clustered output.
    fn emit_leaf(&mut self, layer: u8, mut items: Vec<PendingEntry>) -> Result<(), CoreError> {
        items.sort_unstable_by_key(|p| p.seq);
        for item in items {
            self.emit_entry(item.entry)?;
        }
        self.node_bytes += node_mem(self.config, layer, 0);
        Ok(())
    }

    fn emit_entry(&mut self, entry: Entry) -> Result<(), CoreError> {
        self.pending.push(entry);
        if self.pending.len() >= PARTITION_BLOCK_RECORDS {
            self.flush_block()?;
        }
        Ok(())
    }

    /// Writes the pending entries as one partition block (the same
    /// chunking `persist_partition` applies to its ordered entry list).
    fn flush_block(&mut self) -> Result<(), CoreError> {
        if self.pending.is_empty() {
            return Ok(());
        }
        let bytes = if self.config.clustered {
            encode_clustered_block(&self.pending, self.config.word_len)
        } else {
            let sigs: Vec<SigEntry> = self
                .pending
                .iter()
                .map(|e| SigEntry::new(e.sig.clone(), e.record.rid))
                .collect();
            encode_records(&sigs)
        };
        self.cluster.dfs().append_block(&self.part_file, &bytes)?;
        self.wrote_block = true;
        self.pending.clear();
        Ok(())
    }

    /// Seals the partition: closes the remaining path, flushes the tail
    /// block, persists the Bloom sidecar, and returns metadata identical
    /// to the in-memory `persist_partition`.
    fn finish(mut self) -> Result<(PartitionMeta, Option<BloomFilter>), CoreError> {
        if self.stack.is_empty() {
            // Empty partition: the tree is a bare root leaf.
            self.node_bytes += node_mem(self.config, 0, 0);
        } else {
            self.close_to_depth(0)?;
            let root = self.stack.pop().expect("root remains");
            debug_assert!(self.stack.is_empty());
            if root.internal {
                debug_assert!(root.groups.is_empty() && root.open_items.is_empty());
                self.node_bytes += node_mem(self.config, 0, root.n_children);
            } else {
                let mut merged: Vec<PendingEntry> = Vec::new();
                for group in root.groups {
                    merged.extend(group);
                }
                merged.extend(root.open_items);
                self.emit_leaf(0, merged)?;
            }
        }
        self.flush_block()?;
        if !self.wrote_block {
            // Parity with the in-memory path: an empty partition still
            // persists one empty block.
            let bytes = if self.config.clustered {
                encode_clustered_block(&[], self.config.word_len)
            } else {
                encode_records::<SigEntry>(&[])
            };
            self.cluster.dfs().append_block(&self.part_file, &bytes)?;
        }
        let bloom_bytes = self.bloom.as_ref().map(BloomFilter::mem_bytes).unwrap_or(0);
        if let Some(filter) = &self.bloom {
            self.cluster.dfs().delete_file(&self.bloom_file)?;
            self.cluster
                .dfs()
                .append_block(&self.bloom_file, &filter.to_bytes())?;
        }
        let sig_nibbles = self.config.initial_card_bits as usize * (self.config.word_len / 4);
        let per_entry = sig_nibbles.div_ceil(2) + 8;
        let index_bytes = crate::local::TardisL::tree_struct_bytes()
            + self.node_bytes
            + per_entry * self.n_entries as usize;
        let meta = PartitionMeta {
            pid: self.pid,
            n_records: self.n_entries,
            file: self.part_file,
            bloom_file: self.bloom_file,
            index_bytes,
            bloom_bytes,
        };
        let resident = if self.config.bloom_in_memory {
            self.bloom
        } else {
            None
        };
        Ok((meta, resident))
    }
}

/// The full sorted-build pipeline; see the module docs. Called by
/// [`crate::index::TardisIndex::build_sorted_profiled`], which owns the
/// public API surface and assembles the index handle.
pub(crate) fn build_sorted_impl(
    cluster: &Cluster,
    dataset_file: &str,
    config: &TardisConfig,
    opts: &SortedBuildOptions,
    tracer: &Tracer,
) -> Result<SortedBuildOutput, CoreError> {
    config.validate()?;
    let root = tracer.root("build");
    let mut report = BuildReport::default();

    // ---- Step 1: global index (identical to the in-memory path). ----
    let global = TardisG::build_traced(cluster, dataset_file, config, &root)?;
    report.global = global.breakdown;
    report.global_index_bytes = global.mem_bytes();
    let n_partitions = global.n_partitions();
    let partitioner = Broadcast::new(global, report.global_index_bytes, cluster.metrics());

    // ---- Step 2: scan + convert in waves, spilling sorted runs. ----
    let t0 = Instant::now();
    let read_span = root.child("read-convert");
    // Sweep stale runs from an aborted predecessor before appending.
    cluster.dfs().delete_files_with_prefix(RUN_FILE_PREFIX)?;
    let block_ids = cluster.dfs().list_blocks(dataset_file)?;
    let converter = *partitioner.converter();
    let mut pid_counts = vec![0u64; n_partitions];
    let mut run_files: Vec<String> = Vec::new();
    let mut buffer: Vec<RunRecord> = Vec::new();
    let mut buffered_bytes = 0usize;
    let mut n_records = 0u64;
    let mut dataset_block_records = 0usize;
    for wave in block_ids.chunks(SCAN_WAVE_BLOCKS) {
        let per_block: Vec<Vec<(PartitionId, Entry)>> = cluster.pool().try_par_map(
            wave.to_vec(),
            |id| -> Result<Vec<(PartitionId, Entry)>, CoreError> {
                let bytes = cluster.dfs().read_block(&id)?;
                let records: Vec<Record> = decode_records(&bytes)?;
                cluster.metrics().record_task();
                records
                    .into_iter()
                    .map(|r| {
                        let sig = converter.sig_of(&r.ts)?;
                        let pid = partitioner.partition_of(&sig);
                        Ok((pid, Entry::new(sig, r)))
                    })
                    .collect()
            },
        )?;
        // Sequential seq assignment in block order replicates the
        // in-memory shuffle's concatenation order exactly.
        for entries in per_block {
            dataset_block_records = dataset_block_records.max(entries.len());
            for (pid, entry) in entries {
                pid_counts[pid as usize] += 1;
                buffered_bytes += run_record_bytes(&entry);
                buffer.push(RunRecord {
                    pid,
                    seq: n_records,
                    entry,
                });
                n_records += 1;
            }
            if buffered_bytes >= opts.run_budget_bytes && !buffer.is_empty() {
                run_files.push(spill_run(cluster, run_files.len(), &mut buffer)?);
                buffered_bytes = 0;
            }
        }
    }
    if !buffer.is_empty() {
        run_files.push(spill_run(cluster, run_files.len(), &mut buffer)?);
    }
    drop(buffer);
    read_span.add("records", n_records);
    read_span.add("runs", run_files.len() as u64);
    drop(read_span);
    report.read_convert = t0.elapsed();
    report.n_records = n_records;
    report.n_partitions = n_partitions;

    // ---- Step 3: open the k-way merge (the shuffle analogue). ----
    let t_merge = Instant::now();
    let merge_span = root.child("merge");
    let mut merger = RunMerger::new(cluster, &run_files)?;
    drop(merge_span);
    report.shuffle = t_merge.elapsed();

    // ---- Step 4: leaf-streamed partition builds, one pid at a time. ----
    let t1 = Instant::now();
    let local_span = root.child("local-build");
    let mut parts = Vec::with_capacity(n_partitions);
    let mut blooms = Vec::with_capacity(n_partitions);
    let mut next = merger.next()?;
    for pid in 0..n_partitions as PartitionId {
        cluster.metrics().record_task();
        let part_span = local_span.child("partition");
        part_span.add("pid", pid as u64);
        let mut writer =
            PartitionStreamWriter::new(cluster, config, pid, pid_counts[pid as usize] as usize)?;
        while let Some(rec) = next.take() {
            if rec.pid != pid {
                next = Some(rec);
                break;
            }
            writer.push(rec.seq, rec.entry)?;
            next = merger.next()?;
        }
        let (meta, bloom) = writer.finish()?;
        part_span.add("records", meta.n_records);
        drop(part_span);
        report.local_index_bytes += meta.index_bytes;
        report.bloom_bytes += meta.bloom_bytes;
        parts.push(meta);
        blooms.push(bloom);
    }
    debug_assert!(next.is_none(), "merged entries beyond the partition space");
    local_span.add("partitions", parts.len() as u64);
    drop(local_span);
    report.local_build = t1.elapsed();

    // ---- Success: retire the runs. ----
    for file in &run_files {
        cluster.dfs().delete_file(file)?;
    }

    let global = partitioner.value().clone();
    Ok(SortedBuildOutput {
        global,
        parts,
        blooms,
        report,
        dataset_block_records: dataset_block_records.max(1),
    })
}
