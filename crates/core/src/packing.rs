//! Leaf-partitions packing (§IV-B, Definition 5).
//!
//! Sibling leaf nodes under one internal (or root) node are packed into as
//! few partitions as possible without exceeding a capacity — a bin-packing
//! problem solved with First Fit Decreasing (FFD), the paper's choice:
//! O(n log n), worst-case performance ratio 3/2.

/// Result of packing: each inner vector lists the item keys of one bin.
pub type Packing<K> = Vec<Vec<K>>;

/// First Fit Decreasing bin packing.
///
/// Items larger than the capacity get a dedicated bin each (the paper's
/// leaves never exceed the capacity by construction, but a max-depth leaf
/// that could not split can; dedicating a bin keeps the invariant "every
/// item is placed" without splitting items).
///
/// Deterministic: ties in size keep the input order (stable sort).
///
/// ```
/// use tardis_core::packing::ffd_pack;
///
/// // Four sibling leaves of sizes 5, 5, 5, 5 fit in two capacity-10 bins.
/// let bins = ffd_pack(vec![("a", 5), ("b", 5), ("c", 5), ("d", 5)], 10);
/// assert_eq!(bins.len(), 2);
/// ```
///
/// # Panics
/// Panics if `capacity == 0`.
pub fn ffd_pack<K>(items: Vec<(K, u64)>, capacity: u64) -> Packing<K> {
    assert!(capacity > 0, "capacity must be positive");
    let mut items = items;
    // Decreasing by size; stable so equal sizes keep input order.
    items.sort_by_key(|item| std::cmp::Reverse(item.1));
    let mut bins: Vec<(u64, Vec<K>)> = Vec::new();
    for (key, size) in items {
        if size >= capacity {
            // Oversized (or exactly full) item: dedicated bin.
            bins.push((size, vec![key]));
            continue;
        }
        match bins
            .iter_mut()
            .find(|(used, _)| *used + size <= capacity)
        {
            Some((used, keys)) => {
                *used += size;
                keys.push(key);
            }
            None => bins.push((size, vec![key])),
        }
    }
    bins.into_iter().map(|(_, keys)| keys).collect()
}

/// Lower bound on the number of bins: `ceil(total / capacity)`.
pub fn bin_lower_bound(total: u64, capacity: u64) -> u64 {
    total.div_ceil(capacity)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sizes_of(packing: &Packing<u64>, items: &[(u64, u64)]) -> Vec<u64> {
        packing
            .iter()
            .map(|bin| {
                bin.iter()
                    .map(|k| items.iter().find(|(key, _)| key == k).unwrap().1)
                    .sum()
            })
            .collect()
    }

    #[test]
    fn all_items_placed_exactly_once() {
        let items: Vec<(u64, u64)> = (0..20).map(|i| (i, (i % 7) + 1)).collect();
        let packing = ffd_pack(items.clone(), 10);
        let mut placed: Vec<u64> = packing.iter().flatten().copied().collect();
        placed.sort_unstable();
        assert_eq!(placed, (0..20).collect::<Vec<u64>>());
    }

    #[test]
    fn capacity_respected_for_normal_items() {
        let items: Vec<(u64, u64)> = (0..30).map(|i| (i, (i * 13 % 9) + 1)).collect();
        let packing = ffd_pack(items.clone(), 12);
        for size in sizes_of(&packing, &items) {
            assert!(size <= 12, "bin size {size}");
        }
    }

    #[test]
    fn oversized_items_get_dedicated_bins() {
        let items = vec![(1u64, 100u64), (2, 3), (3, 100)];
        let packing = ffd_pack(items, 10);
        // Two dedicated bins + one for the small item.
        assert_eq!(packing.len(), 3);
        let dedicated: Vec<_> = packing.iter().filter(|b| b.len() == 1).collect();
        assert!(dedicated.len() >= 2);
    }

    #[test]
    fn exact_fit_uses_minimum_bins() {
        // Items 5,5,5,5 with capacity 10 → exactly 2 bins.
        let items = vec![(1u64, 5u64), (2, 5), (3, 5), (4, 5)];
        let packing = ffd_pack(items, 10);
        assert_eq!(packing.len(), 2);
    }

    #[test]
    fn classic_ffd_case() {
        // FFD is optimal here: sizes 7,6,5,4,3,2,1 with capacity 9
        // → optimal 4 bins hold total 28 ≤ 36 but pairing is constrained:
        //   (7,2) (6,3) (5,4) (1) — FFD finds 4.
        let items: Vec<(u64, u64)> = [7u64, 6, 5, 4, 3, 2, 1]
            .iter()
            .enumerate()
            .map(|(i, &s)| (i as u64, s))
            .collect();
        let packing = ffd_pack(items.clone(), 9);
        assert_eq!(packing.len(), 4);
        for size in sizes_of(&packing, &items) {
            assert!(size <= 9);
        }
    }

    #[test]
    fn within_three_halves_of_lower_bound() {
        // Random-ish workload: FFD ≤ (3/2)·OPT + 1 ≤ (3/2)·LB + 1.
        let items: Vec<(u64, u64)> = (0..200)
            .map(|i| (i, (i * 2654435761u64 % 50) + 1))
            .collect();
        let total: u64 = items.iter().map(|(_, s)| s).sum();
        let capacity = 64;
        let packing = ffd_pack(items, capacity);
        let lb = bin_lower_bound(total, capacity);
        assert!(
            (packing.len() as u64) <= lb * 3 / 2 + 1,
            "bins {} vs lower bound {}",
            packing.len(),
            lb
        );
    }

    #[test]
    fn deterministic() {
        let items: Vec<(u64, u64)> = (0..50).map(|i| (i, i % 10 + 1)).collect();
        assert_eq!(ffd_pack(items.clone(), 15), ffd_pack(items, 15));
    }

    #[test]
    fn empty_input_gives_no_bins() {
        let packing: Packing<u64> = ffd_pack(Vec::new(), 10);
        assert!(packing.is_empty());
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        ffd_pack(vec![(1u64, 1u64)], 0);
    }

    #[test]
    fn lower_bound_math() {
        assert_eq!(bin_lower_bound(0, 10), 0);
        assert_eq!(bin_lower_bound(10, 10), 1);
        assert_eq!(bin_lower_bound(11, 10), 2);
    }
}
