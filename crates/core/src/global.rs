//! **Tardis-G** — the centralized global index (§IV-B).
//!
//! Construction pipeline (all four steps are timed separately for the
//! Figure 11 breakdown):
//!
//! 1. **Data preprocessing** — block-level sampling; sampled blocks are
//!    read and converted in parallel to `(isaxt(b), freq)` pairs by one
//!    map-reduce job.
//! 2. **Node statistics** — layer by layer in ascending order, the base
//!    pairs are aggregated to per-node frequencies `(isaxt(i), freq(i))`;
//!    nodes whose *estimated full-dataset* frequency fits `G-MaxSize`
//!    become leaves and their base pairs are filtered out; overfull nodes
//!    continue to the next layer.
//! 3. **Skeleton building** — the collected statistics are inserted into a
//!    sigTree on the master, layer by layer.
//! 4. **Partition assignment** — under each internal (or root) node, the
//!    sibling leaf nodes are FFD-packed into partitions of capacity
//!    `G-MaxSize`; assigned partition ids are synchronized into the id
//!    lists of all ancestor nodes ("to facilitate future information
//!    retrieval of sibling nodes").

use crate::config::TardisConfig;
use crate::convert::Converter;
use crate::error::CoreError;
use crate::packing::ffd_pack;
use std::collections::HashMap;
use std::time::{Duration, Instant};
use tardis_cluster::{decode_records, Cluster, Dataset};
use tardis_isax::SigT;
use tardis_sigtree::{Descend, NodeId, SigTree, SigTreeConfig};
use tardis_ts::Record;

/// Identifier of a data partition.
pub type PartitionId = u32;

/// Wall-clock breakdown of the global-index construction (Figure 11).
#[derive(Debug, Clone, Copy, Default)]
pub struct GlobalBuildBreakdown {
    /// Step 1: sample blocks, convert, aggregate base pairs.
    pub sampling: Duration,
    /// Step 2: layer-by-layer node statistics.
    pub statistics: Duration,
    /// Step 3: skeleton building on the master.
    pub skeleton: Duration,
    /// Step 4: FFD partition assignment.
    pub packing: Duration,
}

impl GlobalBuildBreakdown {
    /// Total global-index construction time.
    pub fn total(&self) -> Duration {
        self.sampling + self.statistics + self.skeleton + self.packing
    }
}

/// The global index: a skeleton sigTree whose leaves map to partitions.
#[derive(Debug, Clone)]
pub struct TardisG {
    tree: SigTree<SigT>,
    /// Leaf node → its assigned partition.
    leaf_pid: HashMap<NodeId, PartitionId>,
    /// Every node → sorted ids of all partitions under it (the paper's
    /// "id list" synchronized to ancestors).
    node_pids: HashMap<NodeId, Vec<PartitionId>>,
    /// Number of partitions assigned.
    n_partitions: usize,
    converter: Converter,
    /// How the build went (timings for Figure 11).
    pub breakdown: GlobalBuildBreakdown,
    /// Number of sampled records that fed the statistics.
    pub sampled_records: u64,
}

impl TardisG {
    /// Builds the global index from the dataset stored in DFS file
    /// `dataset_file` (blocks of encoded [`Record`]s).
    ///
    /// # Errors
    /// Propagates configuration, DFS, and representation errors.
    pub fn build(
        cluster: &Cluster,
        dataset_file: &str,
        config: &TardisConfig,
    ) -> Result<TardisG, CoreError> {
        Self::build_traced(cluster, dataset_file, config, &tardis_cluster::Span::noop())
    }

    /// [`Self::build`] with build-step spans (`sample`, `stats`,
    /// `skeleton`, `pack`) opened under `parent`.
    ///
    /// # Errors
    /// Propagates configuration, DFS, and representation errors.
    pub fn build_traced(
        cluster: &Cluster,
        dataset_file: &str,
        config: &TardisConfig,
        parent: &tardis_cluster::Span,
    ) -> Result<TardisG, CoreError> {
        config.validate()?;
        let converter = Converter::new(config);
        let mut breakdown = GlobalBuildBreakdown::default();

        // ------ Step 1: data preprocessing (block-level sampling). ------
        let sample_span = parent.child("sample");
        let t0 = Instant::now();
        let block_ids =
            cluster
                .dfs()
                .sample_block_ids(dataset_file, config.sampling_fraction, config.seed)?;
        let per_block: Vec<Result<Vec<(SigT, u64)>, CoreError>> =
            cluster.pool().par_map(block_ids, |id| {
                let bytes = cluster.dfs().read_block(&id)?;
                let records: Vec<Record> = decode_records(&bytes)?;
                cluster.metrics().record_task();
                records
                    .iter()
                    .map(|r| Ok((converter.sig_of(&r.ts)?, 1u64)))
                    .collect()
            });
        let mut pairs = Vec::new();
        for block in per_block {
            pairs.extend(block?);
        }
        let sampled_records = pairs.len() as u64;
        // Reduce to (isaxt(b), freq(b)).
        let n_workers = cluster.pool().n_workers();
        let base: Vec<(SigT, u64)> = Dataset::from_items(pairs, n_workers.max(1))
            .reduce_by_key(cluster.pool(), cluster.metrics(), n_workers.max(1), |a, b| {
                *a += b
            })
            .collect();
        breakdown.sampling = t0.elapsed();
        sample_span.add("sampled_records", sampled_records);
        drop(sample_span);

        // ------ Step 2: node statistics, layer by layer. ------
        let stats_span = parent.child("stats");
        let t1 = Instant::now();
        // Estimated full-dataset count per sampled record.
        let scale = 1.0 / config.sampling_fraction;
        let capacity = config.g_max_size as u64;
        let max_bits = config.initial_card_bits;
        // Per layer: the (sig(layer), freq) node statistics to insert.
        let mut layer_stats: Vec<Vec<(SigT, u64)>> = Vec::new();
        let mut active: Vec<(SigT, u64)> = base;
        for layer in 1..=max_bits {
            if active.is_empty() {
                break;
            }
            // Aggregate the active base pairs at this layer's prefix.
            let aggregated: Vec<(SigT, u64)> =
                Dataset::from_items(std::mem::take(&mut active), n_workers.max(1))
                    .map(cluster.pool(), |(sig, freq)| {
                        (sig.drop_right(layer).expect("layer <= bits"), (sig, freq))
                    })
                    .into_partitions()
                    .into_iter()
                    .flatten()
                    .fold(
                        HashMap::<SigT, (u64, Vec<(SigT, u64)>)>::new(),
                        |mut acc, (prefix, (sig, freq))| {
                            let slot = acc.entry(prefix).or_default();
                            slot.0 += freq;
                            slot.1.push((sig, freq));
                            acc
                        },
                    )
                    .into_iter()
                    .map(|(prefix, (freq, members))| {
                        // Members of overfull nodes continue to the next
                        // layer (unless this is the last one).
                        let estimated = (freq as f64 * scale).round() as u64;
                        if estimated > capacity && layer < max_bits {
                            active.extend(members);
                        }
                        (prefix, freq)
                    })
                    .collect();
            layer_stats.push(aggregated);
        }
        breakdown.statistics = t1.elapsed();
        drop(stats_span);

        // ------ Step 3: skeleton building on the master. ------
        let skeleton_span = parent.child("skeleton");
        let t2 = Instant::now();
        let mut tree: SigTree<SigT> =
            SigTree::new(SigTreeConfig::skeleton(config.word_len, max_bits));
        let mut total = 0u64;
        for (li, layer) in layer_stats.iter().enumerate() {
            // Deterministic insertion order.
            let mut sorted: Vec<&(SigT, u64)> = layer.iter().collect();
            sorted.sort_by(|a, b| a.0.cmp(&b.0));
            for (sig, freq) in sorted {
                // Scale sampled frequencies to full-dataset estimates.
                let estimated = ((*freq as f64) * scale).round().max(1.0) as u64;
                tree.insert_stat(sig.clone(), estimated);
                if li == 0 {
                    total += estimated;
                }
            }
        }
        tree.set_root_count(total);
        breakdown.skeleton = t2.elapsed();
        skeleton_span.add("tree_nodes", tree.n_nodes() as u64);
        drop(skeleton_span);

        // ------ Step 4: partition assignment (FFD packing). ------
        let pack_span = parent.child("pack");
        let t3 = Instant::now();
        let mut leaf_pid: HashMap<NodeId, PartitionId> = HashMap::new();
        let mut next_pid: PartitionId = 0;
        // For every node with children: pack its *leaf* children.
        for id in 0..tree.n_nodes() as NodeId {
            let node = tree.node(id);
            if node.children.is_empty() {
                continue;
            }
            let mut leaf_children: Vec<(NodeId, u64)> = node
                .children
                .values()
                .map(|&c| (c, tree.node(c)))
                .filter(|(_, n)| n.is_leaf())
                .map(|(c, n)| (c, n.count))
                .collect();
            if leaf_children.is_empty() {
                continue;
            }
            // Deterministic order before the stable FFD sort.
            leaf_children.sort_by_key(|&(c, _)| c);
            for bin in ffd_pack(leaf_children, capacity) {
                for leaf in bin {
                    leaf_pid.insert(leaf, next_pid);
                }
                next_pid += 1;
            }
        }
        // Synchronize pid lists up the ancestors.
        let mut node_pids: HashMap<NodeId, Vec<PartitionId>> = HashMap::new();
        for (&leaf, &pid) in &leaf_pid {
            let mut cur = Some(leaf);
            while let Some(id) = cur {
                node_pids.entry(id).or_default().push(pid);
                cur = tree.node(id).parent;
            }
        }
        for pids in node_pids.values_mut() {
            pids.sort_unstable();
            pids.dedup();
        }
        breakdown.packing = t3.elapsed();
        pack_span.add("partitions", next_pid as u64);
        drop(pack_span);

        Ok(TardisG {
            tree,
            leaf_pid,
            node_pids,
            n_partitions: next_pid as usize,
            converter,
            breakdown,
            sampled_records,
        })
    }

    /// Number of partitions the index routes into (at least 1 even for a
    /// degenerate sample — routing falls back to partition 0).
    pub fn n_partitions(&self) -> usize {
        self.n_partitions.max(1)
    }

    /// The skeleton tree (read-only).
    pub fn tree(&self) -> &SigTree<SigT> {
        &self.tree
    }

    /// The converter bound to this index's parameters.
    pub fn converter(&self) -> &Converter {
        &self.converter
    }

    /// Routes a full-resolution signature to its partition. Signatures
    /// missing from the sampled skeleton fall back to a deterministic
    /// partition under the deepest matching node ("least-loaded" is
    /// approximated by hashing into the node's id list, which both
    /// balances and stays deterministic).
    pub fn partition_of(&self, sig: &SigT) -> PartitionId {
        match self.tree.descend(sig) {
            Descend::Leaf(id) => match self.leaf_pid.get(&id) {
                Some(&pid) => pid,
                // Root acting as leaf (empty skeleton) or unassigned leaf.
                None => self.fallback_pid(id, sig),
            },
            Descend::NoChild(id) => self.fallback_pid(id, sig),
        }
    }

    fn fallback_pid(&self, node: NodeId, sig: &SigT) -> PartitionId {
        match self.node_pids.get(&node) {
            Some(pids) if !pids.is_empty() => {
                // Deterministic spread over the node's partitions.
                let mut h = 0xcbf29ce484222325u64;
                for &n in sig.nibbles() {
                    h ^= n as u64;
                    h = h.wrapping_mul(0x100000001B3);
                }
                pids[(h % pids.len() as u64) as usize]
            }
            _ => 0,
        }
    }

    /// The partition list of the *parent* of the node reached by `sig` —
    /// Algorithm 1's `fetchFromParent`: the sibling partitions used by
    /// Multi-Partitions Access. Includes the query's own partition.
    pub fn sibling_partitions(&self, sig: &SigT) -> Vec<PartitionId> {
        let reached = self.tree.descend(sig).node();
        let anchor = match self.tree.node(reached).parent {
            Some(parent) => parent,
            None => reached, // root
        };
        self.node_pids.get(&anchor).cloned().unwrap_or_default()
    }

    /// iSAX-T lower bound between a query PAA and each listed partition:
    /// the minimum `MINDIST` over the global leaves assigned to that
    /// partition (infinite for partitions with no assigned leaf, e.g.
    /// fallback-only targets). Multi-Partitions Access uses this to rank
    /// siblings by query proximity before truncating to `pth - 1`.
    ///
    /// # Errors
    /// Propagates representation errors from the MINDIST computation.
    pub fn partition_lower_bounds(
        &self,
        paa: &[f64],
        series_len: usize,
        pids: &[PartitionId],
    ) -> Result<Vec<f64>, CoreError> {
        let mut bounds = HashMap::with_capacity(pids.len());
        for &pid in pids {
            bounds.insert(pid, f64::INFINITY);
        }
        let mut scratch: Vec<u16> = Vec::new();
        for (&leaf, &pid) in &self.leaf_pid {
            let Some(slot) = bounds.get_mut(&pid) else {
                continue;
            };
            let d = tardis_isax::mindist_paa_sigt_scratch(
                paa,
                &self.tree.node(leaf).sig,
                series_len,
                &mut scratch,
            )?;
            if d < *slot {
                *slot = d;
            }
        }
        Ok(pids.iter().map(|pid| bounds[pid]).collect())
    }

    /// Routes a raw series (converted internally).
    ///
    /// # Errors
    /// Propagates conversion errors.
    pub fn partition_of_series(&self, ts: &tardis_ts::TimeSeries) -> Result<PartitionId, CoreError> {
        Ok(self.partition_of(&self.converter.sig_of(ts)?))
    }

    /// Estimated record count of each partition (from the scaled sampled
    /// statistics) — used by the Figure 17(c) partition-size-distribution
    /// metric.
    pub fn estimated_partition_sizes(&self) -> Vec<u64> {
        let mut sizes = vec![0u64; self.n_partitions()];
        for (&leaf, &pid) in &self.leaf_pid {
            sizes[pid as usize] += self.tree.node(leaf).count;
        }
        sizes
    }

    /// The partition assigned to the global leaf covering `sig`, if the
    /// descent ends at an assigned leaf (used by the exact-kNN extension
    /// to lower-bound partitions).
    pub fn leaf_partition(&self, sig: &SigT) -> Option<PartitionId> {
        match self.tree.descend(sig) {
            Descend::Leaf(id) => self.leaf_pid.get(&id).copied(),
            Descend::NoChild(_) => None,
        }
    }

    /// Serializes the global index: converter parameters, every non-root
    /// node's `(signature, count)`, and the leaf → partition map. The
    /// structure is fully reconstructible because signatures encode their
    /// own tree position.
    pub fn to_bytes(&self) -> Vec<u8> {
        use bytes::BufMut;
        let mut buf = bytes::BytesMut::new();
        buf.put_u16_le(self.converter.word_len() as u16);
        buf.put_u8(self.converter.bits());
        buf.put_u32_le(self.n_partitions as u32);
        buf.put_u64_le(self.sampled_records);
        buf.put_u64_le(self.tree.total_count());
        // Nodes sorted by layer then signature → valid insert_stat order.
        let mut nodes: Vec<(&SigT, u64)> = (1..self.tree.n_nodes() as NodeId)
            .map(|id| {
                let n = self.tree.node(id);
                (&n.sig, n.count)
            })
            .collect();
        nodes.sort_by(|a, b| a.0.bits().cmp(&b.0.bits()).then_with(|| a.0.cmp(b.0)));
        buf.put_u32_le(nodes.len() as u32);
        for (sig, count) in nodes {
            buf.put_u16_le(sig.nibbles().len() as u16);
            buf.put_slice(sig.nibbles());
            buf.put_u64_le(count);
        }
        // Leaf partition assignments, by signature.
        let mut leaves: Vec<(&SigT, PartitionId)> = self
            .leaf_pid
            .iter()
            .map(|(&id, &pid)| (&self.tree.node(id).sig, pid))
            .collect();
        leaves.sort_by(|a, b| a.0.cmp(b.0));
        buf.put_u32_le(leaves.len() as u32);
        for (sig, pid) in leaves {
            buf.put_u16_le(sig.nibbles().len() as u16);
            buf.put_slice(sig.nibbles());
            buf.put_u32_le(pid);
        }
        // Integrity checksum: semantic corruption (e.g. a flipped pid)
        // is otherwise undetectable by structural parsing alone.
        let checksum = tardis_bloom::fnv1a_64(&buf);
        buf.put_u64_le(checksum);
        buf.to_vec()
    }

    /// Reconstructs a global index from [`Self::to_bytes`] output.
    ///
    /// # Errors
    /// [`CoreError::Cluster`] with a codec context on any malformed input.
    pub fn from_bytes(bytes: &[u8]) -> Result<TardisG, CoreError> {
        use bytes::Buf;
        fn codec_err(context: &'static str) -> CoreError {
            CoreError::Cluster(tardis_cluster::ClusterError::Codec { context })
        }
        // Verify the trailing checksum before interpreting anything.
        if bytes.len() < 8 {
            return Err(codec_err("global image too short"));
        }
        let (payload, tail) = bytes.split_at(bytes.len() - 8);
        let stored = u64::from_le_bytes(tail.try_into().expect("8 bytes"));
        if tardis_bloom::fnv1a_64(payload) != stored {
            return Err(codec_err("global image checksum mismatch"));
        }
        let mut buf = payload;
        if buf.len() < 2 + 1 + 4 + 8 + 8 + 4 {
            return Err(codec_err("global header"));
        }
        let w = buf.get_u16_le() as usize;
        let bits = buf.get_u8();
        // Validate the header before handing it to constructors that
        // assert (corrupted images must error, not panic).
        if tardis_isax::paa::validate_word_len(w).is_err()
            || bits == 0
            || bits > tardis_isax::breakpoints::MAX_CARD_BITS
        {
            return Err(codec_err("invalid global header parameters"));
        }
        let n_partitions = buf.get_u32_le() as usize;
        let sampled_records = buf.get_u64_le();
        let root_count = buf.get_u64_le();
        let converter = Converter::with_params(w, bits);

        let mut tree: SigTree<SigT> = SigTree::new(SigTreeConfig::skeleton(w, bits));
        let n_nodes = buf.get_u32_le() as usize;
        for _ in 0..n_nodes {
            if buf.len() < 2 {
                return Err(codec_err("node header"));
            }
            let len = buf.get_u16_le() as usize;
            if buf.len() < len + 8 {
                return Err(codec_err("node body"));
            }
            let nibbles = buf[..len].to_vec();
            buf.advance(len);
            let count = buf.get_u64_le();
            let sig = SigT::from_nibbles(nibbles, w)
                .map_err(|_| codec_err("node signature"))?;
            tree.insert_stat(sig, count);
        }
        tree.set_root_count(root_count);

        let mut leaf_pid = HashMap::new();
        if buf.len() < 4 {
            return Err(codec_err("leaf table header"));
        }
        let n_leaves = buf.get_u32_le() as usize;
        for _ in 0..n_leaves {
            if buf.len() < 2 {
                return Err(codec_err("leaf header"));
            }
            let len = buf.get_u16_le() as usize;
            if buf.len() < len + 4 {
                return Err(codec_err("leaf body"));
            }
            let nibbles = buf[..len].to_vec();
            buf.advance(len);
            let pid = buf.get_u32_le();
            let sig = SigT::from_nibbles(nibbles, w)
                .map_err(|_| codec_err("leaf signature"))?;
            // Locate the node by walking the signature's planes.
            let mut cur = tree.root();
            for layer in 0..sig.bits() {
                let key = sig.plane_key(layer).expect("layer < bits");
                cur = *tree
                    .node(cur)
                    .children
                    .get(&key)
                    .ok_or_else(|| codec_err("leaf not in tree"))?;
            }
            leaf_pid.insert(cur, pid);
        }
        if !buf.is_empty() {
            return Err(codec_err("trailing bytes after global index"));
        }

        // Recompute ancestor pid lists.
        let mut node_pids: HashMap<NodeId, Vec<PartitionId>> = HashMap::new();
        for (&leaf, &pid) in &leaf_pid {
            let mut cur = Some(leaf);
            while let Some(id) = cur {
                node_pids.entry(id).or_default().push(pid);
                cur = tree.node(id).parent;
            }
        }
        for pids in node_pids.values_mut() {
            pids.sort_unstable();
            pids.dedup();
        }

        Ok(TardisG {
            tree,
            leaf_pid,
            node_pids,
            n_partitions,
            converter,
            breakdown: GlobalBuildBreakdown::default(),
            sampled_records,
        })
    }

    /// Approximate in-memory size of the whole global index in bytes
    /// (Figure 13a: TARDIS keeps the entire sigTree, trading size for
    /// routing speed).
    pub fn mem_bytes(&self) -> usize {
        self.tree.mem_bytes()
            + self.leaf_pid.len() * (std::mem::size_of::<(NodeId, PartitionId)>() + 8)
            + self
                .node_pids
                .values()
                .map(|v| v.len() * std::mem::size_of::<PartitionId>() + 24)
                .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tardis_cluster::{encode_records, ClusterConfig};
    use tardis_ts::TimeSeries;

    /// Deterministic pseudo-random-walk record.
    fn record(rid: u64, len: usize) -> Record {
        let mut x = rid.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut acc = 0.0f32;
        let mut v = Vec::with_capacity(len);
        for _ in 0..len {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            acc += ((x >> 40) as f32 / (1u32 << 24) as f32) - 0.5;
            v.push(acc);
        }
        tardis_ts::z_normalize_in_place(&mut v);
        Record::new(rid, TimeSeries::new(v))
    }

    fn write_dataset(cluster: &Cluster, n: u64, per_block: usize) {
        let blocks: Vec<Vec<u8>> = (0..n)
            .collect::<Vec<u64>>()
            .chunks(per_block)
            .map(|chunk| {
                let records: Vec<Record> = chunk.iter().map(|&rid| record(rid, 64)).collect();
                encode_records(&records)
            })
            .collect();
        cluster.dfs().write_blocks("data", blocks).unwrap();
    }

    fn test_cluster() -> Cluster {
        Cluster::new(ClusterConfig {
            n_workers: 4,
            ..ClusterConfig::default()
        })
        .unwrap()
    }

    fn small_config() -> TardisConfig {
        TardisConfig {
            g_max_size: 100,
            l_max_size: 20,
            sampling_fraction: 0.5,
            ..TardisConfig::default()
        }
    }

    #[test]
    fn build_produces_partitions() {
        let cluster = test_cluster();
        write_dataset(&cluster, 2000, 100);
        let g = TardisG::build(&cluster, "data", &small_config()).unwrap();
        assert!(g.n_partitions() >= 2, "got {}", g.n_partitions());
        assert!(g.sampled_records >= 900, "sampled {}", g.sampled_records);
        assert!(g.tree().n_nodes() > 1);
        assert!(g.mem_bytes() > 0);
    }

    #[test]
    fn breakdown_times_are_recorded() {
        let cluster = test_cluster();
        write_dataset(&cluster, 500, 50);
        let g = TardisG::build(&cluster, "data", &small_config()).unwrap();
        let b = g.breakdown;
        assert!(b.total() > Duration::ZERO);
        assert!(b.sampling > Duration::ZERO);
    }

    #[test]
    fn every_series_routes_to_a_valid_partition() {
        let cluster = test_cluster();
        write_dataset(&cluster, 1000, 100);
        let g = TardisG::build(&cluster, "data", &small_config()).unwrap();
        let n = g.n_partitions();
        // Route *all* records (including unsampled ones) successfully.
        for rid in 0..1000 {
            let pid = g.partition_of_series(&record(rid, 64).ts).unwrap();
            assert!((pid as usize) < n, "pid {pid} out of {n}");
        }
    }

    #[test]
    fn routing_is_deterministic() {
        let cluster = test_cluster();
        write_dataset(&cluster, 500, 50);
        let g = TardisG::build(&cluster, "data", &small_config()).unwrap();
        for rid in [0u64, 13, 99, 499] {
            let ts = record(rid, 64).ts;
            assert_eq!(
                g.partition_of_series(&ts).unwrap(),
                g.partition_of_series(&ts).unwrap()
            );
        }
    }

    #[test]
    fn same_build_same_seed_is_reproducible() {
        let config = small_config();
        let mk = || {
            let cluster = test_cluster();
            write_dataset(&cluster, 800, 80);
            let g = TardisG::build(&cluster, "data", &config).unwrap();
            let routes: Vec<PartitionId> = (0..100)
                .map(|rid| g.partition_of_series(&record(rid, 64).ts).unwrap())
                .collect();
            (g.n_partitions(), routes)
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn sibling_partitions_contain_own_partition() {
        let cluster = test_cluster();
        write_dataset(&cluster, 2000, 100);
        let g = TardisG::build(&cluster, "data", &small_config()).unwrap();
        let mut checked = 0;
        for rid in 0..50 {
            let ts = record(rid, 64).ts;
            let sig = g.converter().sig_of(&ts).unwrap();
            let pid = g.partition_of(&sig);
            let sibs = g.sibling_partitions(&sig);
            if !sibs.is_empty() {
                assert!(sibs.contains(&pid), "rid {rid}: {pid} not in {sibs:?}");
                checked += 1;
            }
        }
        assert!(checked > 0, "no routable queries checked");
    }

    #[test]
    fn estimated_sizes_cover_all_partitions() {
        let cluster = test_cluster();
        write_dataset(&cluster, 2000, 100);
        let g = TardisG::build(&cluster, "data", &small_config()).unwrap();
        let sizes = g.estimated_partition_sizes();
        assert_eq!(sizes.len(), g.n_partitions());
        assert!(sizes.iter().all(|&s| s > 0), "empty partition: {sizes:?}");
        let total: u64 = sizes.iter().sum();
        // Scaled estimate should be in the ballpark of the dataset size.
        assert!((1000..=4000).contains(&total), "total estimate {total}");
    }

    #[test]
    fn full_sampling_estimates_exact_total() {
        let cluster = test_cluster();
        write_dataset(&cluster, 600, 60);
        let config = TardisConfig {
            sampling_fraction: 1.0,
            g_max_size: 50,
            ..TardisConfig::default()
        };
        let g = TardisG::build(&cluster, "data", &config).unwrap();
        assert_eq!(g.sampled_records, 600);
        let total: u64 = g.estimated_partition_sizes().iter().sum();
        assert_eq!(total, 600);
    }

    #[test]
    fn bigger_gmax_means_fewer_partitions() {
        let cluster = test_cluster();
        write_dataset(&cluster, 2000, 100);
        let small = TardisG::build(
            &cluster,
            "data",
            &TardisConfig {
                g_max_size: 50,
                sampling_fraction: 1.0,
                ..TardisConfig::default()
            },
        )
        .unwrap();
        let large = TardisG::build(
            &cluster,
            "data",
            &TardisConfig {
                g_max_size: 1000,
                sampling_fraction: 1.0,
                ..TardisConfig::default()
            },
        )
        .unwrap();
        assert!(
            small.n_partitions() > large.n_partitions(),
            "{} vs {}",
            small.n_partitions(),
            large.n_partitions()
        );
    }

    #[test]
    fn invalid_config_rejected() {
        let cluster = test_cluster();
        write_dataset(&cluster, 10, 10);
        let bad = TardisConfig {
            word_len: 5,
            ..TardisConfig::default()
        };
        assert!(matches!(
            TardisG::build(&cluster, "data", &bad),
            Err(CoreError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn missing_dataset_errors() {
        let cluster = test_cluster();
        assert!(matches!(
            TardisG::build(&cluster, "nope", &small_config()),
            Err(CoreError::Cluster(_))
        ));
    }
}
