//! Property tests: iBT invariants under arbitrary insert sequences and
//! both split policies.

use proptest::prelude::*;
use tardis_baseline::{BEntry, Ibt, IbtConfig, SplitPolicy};
use tardis_isax::SaxWord;
use tardis_ts::{Record, TimeSeries};

fn entry_strategy() -> impl Strategy<Value = BEntry> {
    (prop::collection::vec(-3.0f32..3.0, 64), 0u64..1_000_000).prop_map(|(mut v, rid)| {
        tardis_ts::z_normalize_in_place(&mut v);
        let word = SaxWord::from_series(&v, 8, 9).unwrap();
        BEntry::new(word, Record::new(rid, TimeSeries::new(v)))
    })
}

fn policy_strategy() -> impl Strategy<Value = SplitPolicy> {
    prop_oneof![
        Just(SplitPolicy::RoundRobin),
        Just(SplitPolicy::Statistics)
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn invariants_hold_after_any_inserts(
        entries in prop::collection::vec(entry_strategy(), 1..150),
        threshold in 1usize..12,
        policy in policy_strategy(),
    ) {
        let mut tree = Ibt::new(IbtConfig {
            w: 8,
            max_bits: 9,
            threshold,
            policy,
        });
        for e in &entries {
            tree.insert(e.clone());
        }
        prop_assert!(tree.check_invariants().is_ok(), "{:?}", tree.check_invariants());
        prop_assert_eq!(tree.total_count(), entries.len() as u64);
        prop_assert_eq!(tree.subtree_items(tree.root()).len(), entries.len());
    }

    #[test]
    fn descend_reaches_node_containing_entry(
        entries in prop::collection::vec(entry_strategy(), 1..100),
        policy in policy_strategy(),
    ) {
        let mut tree = Ibt::new(IbtConfig {
            w: 8,
            max_bits: 9,
            threshold: 4,
            policy,
        });
        for e in &entries {
            tree.insert(e.clone());
        }
        for e in &entries {
            let node = tree.descend(&e.word);
            let found = tree
                .subtree_items(node)
                .iter()
                .any(|x| x.rid() == e.rid() && x.word == e.word);
            prop_assert!(found, "entry {} not under its descend node", e.rid());
        }
    }

    #[test]
    fn clustered_entries_are_complete(
        entries in prop::collection::vec(entry_strategy(), 1..120),
        policy in policy_strategy(),
    ) {
        let mut tree = Ibt::new(IbtConfig {
            w: 8,
            max_bits: 9,
            threshold: 6,
            policy,
        });
        for e in &entries {
            tree.insert(e.clone());
        }
        prop_assert_eq!(tree.clustered_entries().len(), entries.len());
    }

    #[test]
    fn target_node_holds_enough(
        entries in prop::collection::vec(entry_strategy(), 5..100),
        k in 1usize..30,
        policy in policy_strategy(),
    ) {
        let mut tree = Ibt::new(IbtConfig {
            w: 8,
            max_bits: 9,
            threshold: 5,
            policy,
        });
        for e in &entries {
            tree.insert(e.clone());
        }
        let target = tree.target_node(&entries[0].word, k);
        prop_assert!(
            tree.node(target).count >= k as u64 || target == tree.root()
        );
    }
}
