//! The DPiSAX global index: a sampled partition table (§II-D).
//!
//! The master samples signatures, builds an iBT over the sample whose
//! leaves have roughly the scaled partition capacity, and then keeps only
//! the leaves' iSAX words as a *partition table*. Routing a record scans
//! the table for the key that covers its full-resolution word — the
//! per-character masked matching whose cost the paper identifies as the
//! baseline's routing bottleneck ("high matching overhead"). A word not
//! covered by any table key (possible: the table comes from a sample)
//! falls back to the key with the minimum lower-bound distance, as in the
//! DPiSAX paper.

use crate::config::BaselineConfig;
use crate::error::BaselineError;
use crate::ibt::{BEntry, Ibt, IbtConfig};
use std::time::{Duration, Instant};
use tardis_cluster::{decode_records, Cluster};
use tardis_isax::{ISaxWord, SaxWord};
use tardis_ts::Record;

/// Partition id type (kept in sync with the TARDIS core).
pub type PartitionId = u32;

/// Wall-clock breakdown of the baseline's global construction
/// (Figure 11's baseline bars: sampling + building the index tree +
/// extracting the table).
#[derive(Debug, Clone, Copy, Default)]
pub struct BaselineGlobalBreakdown {
    /// Sampling and signature conversion.
    pub sampling: Duration,
    /// Building the iBT over the sampled signatures on the master.
    pub tree_build: Duration,
    /// Extracting the leaf table.
    pub table_extract: Duration,
}

impl BaselineGlobalBreakdown {
    /// Total global construction time.
    pub fn total(&self) -> Duration {
        self.sampling + self.tree_build + self.table_extract
    }
}

/// The partition table.
#[derive(Debug, Clone)]
pub struct DpisaxGlobal {
    /// Table keys: variable-cardinality iSAX words, one per partition.
    table: Vec<ISaxWord>,
    w: usize,
    bits: u8,
    /// Build breakdown (Figure 11).
    pub breakdown: BaselineGlobalBreakdown,
    /// Sampled records feeding the table.
    pub sampled_records: u64,
}

impl DpisaxGlobal {
    /// Builds the partition table from the dataset in `dataset_file`.
    ///
    /// # Errors
    /// Propagates configuration, DFS, and representation errors.
    pub fn build(
        cluster: &Cluster,
        dataset_file: &str,
        config: &BaselineConfig,
    ) -> Result<DpisaxGlobal, BaselineError> {
        config.validate()?;
        let mut breakdown = BaselineGlobalBreakdown::default();

        // Sampling: workers convert sampled blocks to signatures. DPiSAX
        // sends the sampled *signatures* to the master.
        let t0 = Instant::now();
        let block_ids =
            cluster
                .dfs()
                .sample_block_ids(dataset_file, config.sampling_fraction, config.seed)?;
        let w = config.word_len;
        let bits = config.initial_card_bits;
        let per_block: Vec<Result<Vec<SaxWord>, BaselineError>> =
            cluster.pool().par_map(block_ids, |id| {
                let bytes = cluster.dfs().read_block(&id)?;
                let records: Vec<Record> = decode_records(&bytes)?;
                cluster.metrics().record_task();
                records
                    .iter()
                    .map(|r| Ok(SaxWord::from_series(r.ts.values(), w, bits)?))
                    .collect()
            });
        let mut words = Vec::new();
        for block in per_block {
            words.extend(block?);
        }
        let sampled_records = words.len() as u64;
        breakdown.sampling = t0.elapsed();

        // Master builds an iBT over the sample; leaves sized so that the
        // scaled leaf ≈ one partition of g_max_size records.
        let t1 = Instant::now();
        let scaled_threshold =
            ((config.g_max_size as f64) * config.sampling_fraction).ceil().max(1.0) as usize;
        let mut tree = Ibt::new(IbtConfig {
            w,
            max_bits: bits,
            threshold: scaled_threshold,
            policy: config.split_policy,
        });
        for word in words {
            // The sample tree needs words only; carry an empty record.
            tree.insert(BEntry::new(word, Record::new(0, tardis_ts::TimeSeries::new(vec![]))));
        }
        breakdown.tree_build = t1.elapsed();

        // Extract the leaf table.
        let t2 = Instant::now();
        let mut table: Vec<ISaxWord> = tree
            .leaf_ids()
            .into_iter()
            .map(|id| tree.node(id).word.clone().expect("non-root leaf"))
            .collect();
        // Deterministic table order → deterministic pids.
        table.sort_by_key(|wd| {
            wd.syms()
                .iter()
                .map(|s| (s.bits, s.prefix))
                .collect::<Vec<_>>()
        });
        breakdown.table_extract = t2.elapsed();

        Ok(DpisaxGlobal {
            table,
            w,
            bits,
            breakdown,
            sampled_records,
        })
    }

    /// Number of partitions (table entries); at least 1.
    pub fn n_partitions(&self) -> usize {
        self.table.len().max(1)
    }

    /// The table keys.
    pub fn table(&self) -> &[ISaxWord] {
        &self.table
    }

    /// Word length.
    pub fn word_len(&self) -> usize {
        self.w
    }

    /// Initial cardinality bits.
    pub fn bits(&self) -> u8 {
        self.bits
    }

    /// Routes a full-resolution word: linear scan for the covering key
    /// (the costly matching), falling back to the minimum lower-bound
    /// distance key for uncovered words.
    pub fn partition_of(&self, word: &SaxWord) -> PartitionId {
        if self.table.is_empty() {
            return 0;
        }
        for (pid, key) in self.table.iter().enumerate() {
            if key.covers(word).unwrap_or(false) {
                return pid as PartitionId;
            }
        }
        // Fallback: nearest key by signature lower bound. Series length is
        // irrelevant for the argmin (a constant scale factor); use w.
        let mut best = (f64::INFINITY, 0 as PartitionId);
        for (pid, key) in self.table.iter().enumerate() {
            let d = key_distance(key, word, self.w);
            if d < best.0 {
                best = (d, pid as PartitionId);
            }
        }
        best.1
    }

    /// Routes a raw series.
    ///
    /// # Errors
    /// Propagates conversion errors.
    pub fn partition_of_series(
        &self,
        ts: &tardis_ts::TimeSeries,
    ) -> Result<PartitionId, BaselineError> {
        Ok(self.partition_of(&SaxWord::from_series(ts.values(), self.w, self.bits)?))
    }

    /// Semantic table size in bytes (Figure 13a: the baseline stores only
    /// the leaf table — 2 bytes per character plus the pid — so it is
    /// smaller than TARDIS's full sigTree).
    pub fn mem_bytes(&self) -> usize {
        self.table.len() * (2 * self.w + 4)
    }
}

/// Lower-bound distance between a variable-cardinality table key and a
/// full word. Unit scale: the `sqrt(n/w)` factor of a true MINDIST is
/// constant across keys, so it cannot change the argmin.
fn key_distance(key: &ISaxWord, word: &SaxWord, _w: usize) -> f64 {
    use tardis_isax::Region;
    let bits = word.bits();
    let sum_sq: f64 = key
        .syms()
        .iter()
        .zip(word.buckets())
        .map(|(sym, &b)| {
            let d = sym.region().dist(&Region::of_bucket(b, bits));
            d * d
        })
        .sum();
    sum_sq.sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tardis_cluster::{encode_records, ClusterConfig};
    use tardis_ts::TimeSeries;

    fn record(rid: u64) -> Record {
        let mut x = rid.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut acc = 0.0f32;
        let mut v = Vec::with_capacity(64);
        for _ in 0..64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            acc += ((x >> 40) as f32 / (1u32 << 24) as f32) - 0.5;
            v.push(acc);
        }
        tardis_ts::z_normalize_in_place(&mut v);
        Record::new(rid, TimeSeries::new(v))
    }

    fn cluster_with_data(n: u64) -> Cluster {
        let cluster = Cluster::new(ClusterConfig {
            n_workers: 4,
            ..ClusterConfig::default()
        })
        .unwrap();
        let blocks: Vec<Vec<u8>> = (0..n)
            .collect::<Vec<u64>>()
            .chunks(100)
            .map(|chunk| encode_records(&chunk.iter().map(|&r| record(r)).collect::<Vec<_>>()))
            .collect();
        cluster.dfs().write_blocks("data", blocks).unwrap();
        cluster
    }

    fn config() -> BaselineConfig {
        BaselineConfig {
            g_max_size: 150,
            sampling_fraction: 0.5,
            ..BaselineConfig::default()
        }
    }

    #[test]
    fn builds_a_table_with_multiple_partitions() {
        let cluster = cluster_with_data(1500);
        let g = DpisaxGlobal::build(&cluster, "data", &config()).unwrap();
        assert!(g.n_partitions() >= 2, "{}", g.n_partitions());
        assert!(g.sampled_records >= 700);
        assert!(g.breakdown.total() > Duration::ZERO);
        assert!(g.mem_bytes() > 0);
    }

    #[test]
    fn every_record_routes_within_range() {
        let cluster = cluster_with_data(1000);
        let g = DpisaxGlobal::build(&cluster, "data", &config()).unwrap();
        let n = g.n_partitions();
        for rid in 0..1000 {
            let pid = g.partition_of_series(&record(rid).ts).unwrap();
            assert!((pid as usize) < n);
        }
    }

    #[test]
    fn routing_is_deterministic() {
        let cluster = cluster_with_data(600);
        let g = DpisaxGlobal::build(&cluster, "data", &config()).unwrap();
        for rid in [0u64, 5, 599] {
            let ts = record(rid).ts;
            assert_eq!(
                g.partition_of_series(&ts).unwrap(),
                g.partition_of_series(&ts).unwrap()
            );
        }
    }

    #[test]
    fn covered_words_route_to_covering_key() {
        let cluster = cluster_with_data(800);
        let g = DpisaxGlobal::build(&cluster, "data", &config()).unwrap();
        let mut covered_checked = 0;
        for rid in 0..100 {
            let word = SaxWord::from_series(record(rid).ts.values(), 8, 9).unwrap();
            let pid = g.partition_of(&word);
            if g.table()[pid as usize].covers(&word).unwrap_or(false) {
                covered_checked += 1;
            }
        }
        assert!(covered_checked > 50, "only {covered_checked} covered");
    }

    #[test]
    fn table_keys_are_disjoint_on_sampled_data() {
        // Keys come from iBT leaves, so at most one key covers any word.
        let cluster = cluster_with_data(800);
        let g = DpisaxGlobal::build(&cluster, "data", &config()).unwrap();
        for rid in 0..200 {
            let word = SaxWord::from_series(record(rid).ts.values(), 8, 9).unwrap();
            let covering = g
                .table()
                .iter()
                .filter(|k| k.covers(&word).unwrap_or(false))
                .count();
            assert!(covering <= 1, "rid {rid} covered by {covering} keys");
        }
    }

    #[test]
    fn invalid_config_rejected() {
        let cluster = cluster_with_data(10);
        let bad = BaselineConfig {
            word_len: 7,
            ..BaselineConfig::default()
        };
        assert!(DpisaxGlobal::build(&cluster, "data", &bad).is_err());
    }
}
