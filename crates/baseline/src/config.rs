//! Baseline configuration (Table II defaults for DPiSAX).

use crate::error::BaselineError;
use crate::ibt::SplitPolicy;
use tardis_isax::breakpoints::MAX_CARD_BITS;

/// Configuration of the DPiSAX baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineConfig {
    /// Word length `w` (Table II: 8).
    pub word_len: usize,
    /// Initial cardinality bits; the baseline needs a *large* initial
    /// cardinality to guarantee splittability (Table II: 512 = 2^9).
    pub initial_card_bits: u8,
    /// Partition capacity in records (matches TARDIS's `G-MaxSize` for
    /// fair comparison).
    pub g_max_size: usize,
    /// Local leaf split threshold (Table II: 1,000).
    pub l_max_size: usize,
    /// Block-level sampling fraction for the global partition table.
    pub sampling_fraction: f64,
    /// Split policy for the local iBTs (the iSAX 2.0 statistics policy by
    /// default; round-robin available for the ablation).
    pub split_policy: SplitPolicy,
    /// Seed for sampling.
    pub seed: u64,
}

impl Default for BaselineConfig {
    fn default() -> Self {
        BaselineConfig {
            word_len: 8,
            initial_card_bits: MAX_CARD_BITS, // 2^9 = 512
            g_max_size: 10_000,
            l_max_size: 1_000,
            sampling_fraction: 0.10,
            split_policy: SplitPolicy::Statistics,
            seed: 0xD915_A0B5,
        }
    }
}

impl BaselineConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    /// [`BaselineError::InvalidConfig`] describing the first violation.
    pub fn validate(&self) -> Result<(), BaselineError> {
        if self.word_len == 0 || self.word_len > 32 || self.word_len % 4 != 0 {
            return Err(BaselineError::InvalidConfig {
                reason: "word_len must be a multiple of 4 in 4..=32".into(),
            });
        }
        if self.initial_card_bits == 0 || self.initial_card_bits > MAX_CARD_BITS {
            return Err(BaselineError::InvalidConfig {
                reason: format!("initial_card_bits must be in 1..={MAX_CARD_BITS}"),
            });
        }
        if self.g_max_size == 0 || self.l_max_size == 0 {
            return Err(BaselineError::InvalidConfig {
                reason: "split thresholds must be positive".into(),
            });
        }
        if !(self.sampling_fraction > 0.0 && self.sampling_fraction <= 1.0) {
            return Err(BaselineError::InvalidConfig {
                reason: "sampling_fraction must be in (0, 1]".into(),
            });
        }
        Ok(())
    }

    /// The initial cardinality `2^b` (512 by default).
    pub fn initial_cardinality(&self) -> u32 {
        1 << self.initial_card_bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_table2() {
        let c = BaselineConfig::default();
        c.validate().unwrap();
        assert_eq!(c.word_len, 8);
        assert_eq!(c.initial_cardinality(), 512);
        assert_eq!(c.l_max_size, 1000);
    }

    #[test]
    fn rejects_invalid() {
        assert!(BaselineConfig {
            word_len: 6,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(BaselineConfig {
            initial_card_bits: 0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(BaselineConfig {
            sampling_fraction: 0.0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(BaselineConfig {
            l_max_size: 0,
            ..Default::default()
        }
        .validate()
        .is_err());
    }
}
