//! The full DPiSAX baseline index: global table + shuffle + local iBTs,
//! clustered, on the shared cluster substrate.
//!
//! Differences from the TARDIS pipeline that the paper's experiments
//! exercise:
//!
//! * conversion at the *large initial cardinality* (512) instead of 64;
//! * routing through the partition table's per-character matching instead
//!   of a signature drop-right + tree descent;
//! * no Bloom filters;
//! * kNN limited to target-node access on the local iBT.

use crate::config::BaselineConfig;
use crate::error::BaselineError;
use crate::global::{DpisaxGlobal, PartitionId};
use crate::ibt::{BEntry, Ibt, IbtConfig};
use std::time::{Duration, Instant};
use tardis_cluster::{decode_records, encode_records, Broadcast, Cluster, Dataset};
use tardis_isax::SaxWord;
use tardis_ts::Record;

/// Records per persisted partition block.
const PARTITION_BLOCK_RECORDS: usize = 2048;

/// Per-partition metadata.
#[derive(Debug, Clone)]
pub struct BaselinePartitionMeta {
    /// Partition id.
    pub pid: PartitionId,
    /// Records stored.
    pub n_records: u64,
    /// DFS file of the partition.
    pub file: String,
    /// Structure-only local-index size in bytes.
    pub index_bytes: usize,
}

/// Build timings and sizes.
#[derive(Debug, Clone, Default)]
pub struct BaselineBuildReport {
    /// Global breakdown (sampling / tree build / table extract).
    pub global: crate::global::BaselineGlobalBreakdown,
    /// Read + convert time at the large initial cardinality (512) —
    /// the step Figure 10 attributes the baseline's cost to.
    pub read_convert: Duration,
    /// Table-lookup routing + shuffle time (the "high matching overhead"
    /// path).
    pub shuffle: Duration,
    /// Local iBT construction + persistence.
    pub local_build: Duration,
    /// Records indexed.
    pub n_records: u64,
    /// Partitions created.
    pub n_partitions: usize,
    /// Global table size in bytes.
    pub global_index_bytes: usize,
    /// Total local index bytes.
    pub local_index_bytes: usize,
}

impl BaselineBuildReport {
    /// End-to-end construction time.
    pub fn total_time(&self) -> Duration {
        self.global.total() + self.read_convert + self.shuffle + self.local_build
    }
}

/// The built baseline index.
pub struct DpisaxIndex {
    config: BaselineConfig,
    global: DpisaxGlobal,
    parts: Vec<BaselinePartitionMeta>,
}

impl DpisaxIndex {
    /// Builds the baseline index over the dataset in `dataset_file`.
    ///
    /// # Errors
    /// Propagates configuration, DFS, and representation errors.
    pub fn build(
        cluster: &Cluster,
        dataset_file: &str,
        config: &BaselineConfig,
    ) -> Result<(DpisaxIndex, BaselineBuildReport), BaselineError> {
        config.validate()?;
        let mut report = BaselineBuildReport::default();

        let global = DpisaxGlobal::build(cluster, dataset_file, config)?;
        report.global = global.breakdown;
        report.global_index_bytes = global.mem_bytes();
        let n_partitions = global.n_partitions();
        let partitioner = Broadcast::new(global, report.global_index_bytes, cluster.metrics());

        // Read + convert (at 512 cardinality) + table-route + shuffle.
        let t0 = Instant::now();
        let block_ids = cluster.dfs().list_blocks(dataset_file)?;
        let w = config.word_len;
        let bits = config.initial_card_bits;
        let per_block: Vec<Result<Vec<BEntry>, BaselineError>> =
            cluster.pool().par_map(block_ids, |id| {
                let bytes = cluster.dfs().read_block(&id)?;
                let records: Vec<Record> = decode_records(&bytes)?;
                cluster.metrics().record_task();
                records
                    .into_iter()
                    .map(|r| {
                        let word = SaxWord::from_series(r.ts.values(), w, bits)?;
                        Ok(BEntry::new(word, r))
                    })
                    .collect()
            });
        let mut partitions_in = Vec::with_capacity(per_block.len());
        let mut n_records = 0u64;
        for block in per_block {
            let entries = block?;
            n_records += entries.len() as u64;
            partitions_in.push(entries);
        }
        report.read_convert = t0.elapsed();
        let t_shuffle = Instant::now();
        let shuffled = Dataset::from_partitions(partitions_in).shuffle(
            cluster.pool(),
            cluster.metrics(),
            n_partitions,
            |e: &BEntry| partitioner.partition_of(&e.word) as usize,
        );
        report.shuffle = t_shuffle.elapsed();
        report.n_records = n_records;
        report.n_partitions = n_partitions;

        // Local iBTs + clustered persistence.
        let t1 = Instant::now();
        let inputs: Vec<(PartitionId, Vec<BEntry>)> = shuffled
            .into_partitions()
            .into_iter()
            .enumerate()
            .map(|(pid, entries)| (pid as PartitionId, entries))
            .collect();
        let built: Vec<Result<BaselinePartitionMeta, BaselineError>> =
            cluster.pool().par_map(inputs, |(pid, entries)| {
                cluster.metrics().record_task();
                build_partition(cluster, config, pid, entries)
            });
        let mut parts = Vec::with_capacity(built.len());
        for item in built {
            let meta = item?;
            report.local_index_bytes += meta.index_bytes;
            parts.push(meta);
        }
        report.local_build = t1.elapsed();

        let global = partitioner.value().clone();
        Ok((
            DpisaxIndex {
                config: config.clone(),
                global,
                parts,
            },
            report,
        ))
    }

    /// The configuration.
    pub fn config(&self) -> &BaselineConfig {
        &self.config
    }

    /// The global partition table.
    pub fn global(&self) -> &DpisaxGlobal {
        &self.global
    }

    /// Partition metadata, indexed by pid.
    pub fn partitions(&self) -> &[BaselinePartitionMeta] {
        &self.parts
    }

    /// Number of partitions.
    pub fn n_partitions(&self) -> usize {
        self.parts.len()
    }

    /// Loads a partition and rebuilds its local iBT.
    ///
    /// # Errors
    /// [`BaselineError::UnknownPartition`] or DFS/decoding errors.
    pub fn load_partition(&self, cluster: &Cluster, pid: PartitionId) -> Result<Ibt, BaselineError> {
        let meta = self
            .parts
            .get(pid as usize)
            .ok_or(BaselineError::UnknownPartition { pid })?;
        let mut tree = Ibt::new(IbtConfig {
            w: self.config.word_len,
            max_bits: self.config.initial_card_bits,
            threshold: self.config.l_max_size,
            policy: self.config.split_policy,
        });
        for id in cluster.dfs().list_blocks(&meta.file)? {
            let bytes = cluster.dfs().read_block(&id)?;
            for entry in decode_records::<BEntry>(&bytes)? {
                tree.insert(entry);
            }
        }
        Ok(tree)
    }
}

fn build_partition(
    cluster: &Cluster,
    config: &BaselineConfig,
    pid: PartitionId,
    entries: Vec<BEntry>,
) -> Result<BaselinePartitionMeta, BaselineError> {
    let part_file = format!("bpart-{pid:05}");
    let n_records = entries.len() as u64;
    let mut tree = Ibt::new(IbtConfig {
        w: config.word_len,
        max_bits: config.initial_card_bits,
        threshold: config.l_max_size,
        policy: config.split_policy,
    });
    for entry in entries {
        tree.insert(entry);
    }
    // Semantic index size: node structures plus one packed entry header
    // per record — the full-cardinality SAX word (w·9 bits, the large
    // initial cardinality the paper highlights) and the record id.
    let entry_bytes = (config.word_len * config.initial_card_bits as usize).div_ceil(8) + 8;
    let index_bytes = tree.mem_bytes() + n_records as usize * entry_bytes;
    cluster.dfs().delete_file(&part_file)?;
    // Clustered layout stores full entries (word + record), mirroring
    // TARDIS, so reloads skip the 512-cardinality reconversion.
    let ordered: Vec<BEntry> = tree.clustered_entries().into_iter().cloned().collect();
    for chunk in ordered.chunks(PARTITION_BLOCK_RECORDS) {
        cluster
            .dfs()
            .append_block(&part_file, &encode_records(chunk))?;
    }
    if ordered.is_empty() {
        cluster
            .dfs()
            .append_block(&part_file, &encode_records::<BEntry>(&[]))?;
    }
    Ok(BaselinePartitionMeta {
        pid,
        n_records,
        file: part_file,
        index_bytes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tardis_cluster::ClusterConfig;
    use tardis_ts::TimeSeries;

    fn record(rid: u64) -> Record {
        let mut x = rid.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut acc = 0.0f32;
        let mut v = Vec::with_capacity(64);
        for _ in 0..64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            acc += ((x >> 40) as f32 / (1u32 << 24) as f32) - 0.5;
            v.push(acc);
        }
        tardis_ts::z_normalize_in_place(&mut v);
        Record::new(rid, TimeSeries::new(v))
    }

    fn setup(n: u64) -> (Cluster, DpisaxIndex, BaselineBuildReport) {
        let cluster = Cluster::new(ClusterConfig {
            n_workers: 4,
            ..ClusterConfig::default()
        })
        .unwrap();
        let blocks: Vec<Vec<u8>> = (0..n)
            .collect::<Vec<u64>>()
            .chunks(100)
            .map(|chunk| encode_records(&chunk.iter().map(|&r| record(r)).collect::<Vec<_>>()))
            .collect();
        cluster.dfs().write_blocks("data", blocks).unwrap();
        let config = BaselineConfig {
            g_max_size: 200,
            l_max_size: 40,
            sampling_fraction: 0.5,
            ..BaselineConfig::default()
        };
        let (index, report) = DpisaxIndex::build(&cluster, "data", &config).unwrap();
        (cluster, index, report)
    }

    #[test]
    fn build_partitions_all_records() {
        let (_cluster, index, report) = setup(800);
        assert_eq!(report.n_records, 800);
        let stored: u64 = index.partitions().iter().map(|p| p.n_records).sum();
        assert_eq!(stored, 800, "every record lands in exactly one partition");
        assert!(report.total_time() > Duration::ZERO);
        assert!(report.global_index_bytes > 0);
    }

    #[test]
    fn load_partition_roundtrip() {
        let (cluster, index, _) = setup(500);
        let mut total = 0u64;
        for pid in 0..index.n_partitions() as PartitionId {
            let tree = index.load_partition(&cluster, pid).unwrap();
            tree.check_invariants().unwrap();
            total += tree.total_count();
        }
        assert_eq!(total, 500);
    }

    #[test]
    fn unknown_partition_errors() {
        let (cluster, index, _) = setup(100);
        assert!(matches!(
            index.load_partition(&cluster, 9999),
            Err(BaselineError::UnknownPartition { .. })
        ));
    }

    #[test]
    fn routing_agrees_with_storage() {
        // A record routes to the partition that actually holds it.
        let (cluster, index, _) = setup(400);
        for rid in (0..400).step_by(41) {
            let ts = record(rid).ts;
            let pid = index.global().partition_of_series(&ts).unwrap();
            let tree = index.load_partition(&cluster, pid).unwrap();
            let found = tree
                .subtree_items(tree.root())
                .iter()
                .any(|e| e.rid() == rid);
            assert!(found, "rid {rid} not in routed partition {pid}");
        }
    }
}
