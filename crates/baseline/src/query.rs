//! Baseline query processing: Exact-Match and kNN-Approximate (§VI-A:
//! "we extend DPiSAX to support clustered index, Exact-Match query and
//! kNN-Approximate query").
//!
//! The baseline's kNN is target-node access on the local iBT: route to
//! the one partition, descend to the deepest node holding ≥ k entries,
//! refine its candidates — the strategy whose accuracy Figure 15 reports
//! around a few percent recall at large k.

use crate::error::BaselineError;
use crate::index::DpisaxIndex;
use tardis_cluster::{Cluster, QueryProfile, Tracer};
use tardis_isax::SaxWord;
use tardis_ts::{squared_euclidean, RecordId, TimeSeries};

/// Outcome of a baseline exact-match query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaselineExactOutcome {
    /// Matching record ids (bitwise equality).
    pub matches: Vec<RecordId>,
    /// Partitions loaded (always 1: no Bloom filter to short-circuit).
    pub partitions_loaded: usize,
}

/// A baseline kNN answer.
#[derive(Debug, Clone)]
pub struct BaselineKnnAnswer {
    /// `(distance, rid)` pairs ascending, at most `k`.
    pub neighbors: Vec<(f64, RecordId)>,
    /// Partitions loaded.
    pub partitions_loaded: usize,
    /// Candidates refined.
    pub candidates_refined: usize,
}

/// Runs one baseline exact-match query: route via the partition table,
/// load the partition, descend the local iBT, compare bit-for-bit.
///
/// # Errors
/// Propagates conversion and DFS errors.
pub fn baseline_exact_match(
    index: &DpisaxIndex,
    cluster: &Cluster,
    query: &TimeSeries,
) -> Result<BaselineExactOutcome, BaselineError> {
    Ok(baseline_exact_match_profiled(index, cluster, query, &Tracer::disabled())?.0)
}

/// [`baseline_exact_match`] with a [`QueryProfile`] and spans
/// (`dpisax-exact` → `route` / `load` / `refine`) accumulated in
/// `tracer`. There is no `prune` phase: DPiSAX has no Bloom filter, so
/// every query pays the partition load.
///
/// # Errors
/// Same as [`baseline_exact_match`].
pub fn baseline_exact_match_profiled(
    index: &DpisaxIndex,
    cluster: &Cluster,
    query: &TimeSeries,
    tracer: &Tracer,
) -> Result<(BaselineExactOutcome, QueryProfile), BaselineError> {
    let root = tracer.root("dpisax-exact");
    let root_id = root.id();
    let route_span = root.child("route");
    let word = SaxWord::from_series(
        query.values(),
        index.config().word_len,
        index.config().initial_card_bits,
    )?;
    let pid = index.global().partition_of(&word);
    drop(route_span);
    let load_span = root.child("load");
    let tree = index.load_partition(cluster, pid)?;
    load_span.add("partitions_loaded", 1);
    drop(load_span);
    let refine_span = root.child("refine");
    let leaf = tree.descend(&word);
    let matches: Vec<RecordId> = tree
        .node(leaf)
        .items
        .iter()
        .filter(|e| e.record.ts.exact_eq(query))
        .map(|e| e.rid())
        .collect();
    refine_span.add("candidates_refined", matches.len() as u64);
    drop(refine_span);
    drop(root);
    let mut profile = QueryProfile {
        partitions_loaded: 1,
        partition_ids: vec![pid as u64],
        candidates_refined: matches.len() as u64,
        ..QueryProfile::default()
    };
    if let Some(id) = root_id {
        profile.spans = tracer.span_tree_under(id);
    }
    Ok((
        BaselineExactOutcome {
            matches,
            partitions_loaded: 1,
        },
        profile,
    ))
}

/// Runs one baseline kNN-approximate query (target-node access).
///
/// # Errors
/// Propagates conversion and DFS errors.
pub fn baseline_knn(
    index: &DpisaxIndex,
    cluster: &Cluster,
    query: &TimeSeries,
    k: usize,
) -> Result<BaselineKnnAnswer, BaselineError> {
    Ok(baseline_knn_profiled(index, cluster, query, k, &Tracer::disabled())?.0)
}

/// [`baseline_knn`] with a [`QueryProfile`] and spans (`dpisax-knn` →
/// `route` / `load` / `refine`) accumulated in `tracer`.
///
/// # Errors
/// Same as [`baseline_knn`].
pub fn baseline_knn_profiled(
    index: &DpisaxIndex,
    cluster: &Cluster,
    query: &TimeSeries,
    k: usize,
    tracer: &Tracer,
) -> Result<(BaselineKnnAnswer, QueryProfile), BaselineError> {
    if k == 0 {
        return Ok((
            BaselineKnnAnswer {
                neighbors: Vec::new(),
                partitions_loaded: 0,
                candidates_refined: 0,
            },
            QueryProfile::default(),
        ));
    }
    let root = tracer.root("dpisax-knn");
    let root_id = root.id();
    let route_span = root.child("route");
    let word = SaxWord::from_series(
        query.values(),
        index.config().word_len,
        index.config().initial_card_bits,
    )?;
    let pid = index.global().partition_of(&word);
    drop(route_span);
    let load_span = root.child("load");
    let tree = index.load_partition(cluster, pid)?;
    load_span.add("partitions_loaded", 1);
    drop(load_span);
    let refine_span = root.child("refine");
    let target = tree.target_node(&word, k);
    let mut neighbors: Vec<(f64, RecordId)> = tree
        .subtree_items(target)
        .iter()
        .map(|e| {
            (
                squared_euclidean(query.values(), e.record.ts.values()).sqrt(),
                e.rid(),
            )
        })
        .collect();
    let refined = neighbors.len();
    refine_span.add("candidates_refined", refined as u64);
    drop(refine_span);
    neighbors.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
    neighbors.truncate(k);
    drop(root);
    let mut profile = QueryProfile {
        partitions_loaded: 1,
        partition_ids: vec![pid as u64],
        candidates_refined: refined as u64,
        ..QueryProfile::default()
    };
    if let Some(id) = root_id {
        profile.spans = tracer.span_tree_under(id);
    }
    Ok((
        BaselineKnnAnswer {
            neighbors,
            partitions_loaded: 1,
            candidates_refined: refined,
        },
        profile,
    ))
}

/// Signature-only kNN: ranks the target node's candidates by the iSAX
/// lower-bound distance instead of the true Euclidean distance — the
/// original un-clustered DPiSAX behaviour the paper criticizes
/// ("answering queries based only on the iSAX representation without the
/// final refine phase further degrades the accuracy", §II-D). Returned
/// distances are the *estimates*, so they under-state the truth.
///
/// # Errors
/// Propagates conversion and DFS errors.
pub fn baseline_knn_sig_only(
    index: &DpisaxIndex,
    cluster: &Cluster,
    query: &TimeSeries,
    k: usize,
) -> Result<BaselineKnnAnswer, BaselineError> {
    Ok(baseline_knn_sig_only_profiled(index, cluster, query, k, &Tracer::disabled())?.0)
}

/// [`baseline_knn_sig_only`] with a [`QueryProfile`] and spans
/// (`dpisax-knn-sig` → `route` / `load` / `refine`) accumulated in
/// `tracer`. The refine span here covers lower-bound *estimation* only;
/// no true distances are computed, which is exactly the accuracy defect
/// the paper calls out.
///
/// # Errors
/// Same as [`baseline_knn_sig_only`].
pub fn baseline_knn_sig_only_profiled(
    index: &DpisaxIndex,
    cluster: &Cluster,
    query: &TimeSeries,
    k: usize,
    tracer: &Tracer,
) -> Result<(BaselineKnnAnswer, QueryProfile), BaselineError> {
    if k == 0 {
        return Ok((
            BaselineKnnAnswer {
                neighbors: Vec::new(),
                partitions_loaded: 0,
                candidates_refined: 0,
            },
            QueryProfile::default(),
        ));
    }
    let root = tracer.root("dpisax-knn-sig");
    let root_id = root.id();
    let route_span = root.child("route");
    let w = index.config().word_len;
    let bits = index.config().initial_card_bits;
    let word = SaxWord::from_series(query.values(), w, bits)?;
    let paa = tardis_isax::paa(query.values(), w)?;
    let n = query.len();
    let pid = index.global().partition_of(&word);
    drop(route_span);
    let load_span = root.child("load");
    let tree = index.load_partition(cluster, pid)?;
    load_span.add("partitions_loaded", 1);
    drop(load_span);
    let refine_span = root.child("refine");
    let target = tree.target_node(&word, k);
    let mut neighbors: Vec<(f64, RecordId)> = tree
        .subtree_items(target)
        .iter()
        .map(|e| {
            let est = tardis_isax::mindist_paa_sax(&paa, &e.word, n)
                .expect("word lengths match by construction");
            (est, e.rid())
        })
        .collect();
    let considered = neighbors.len();
    refine_span.add("candidates_estimated", considered as u64);
    drop(refine_span);
    neighbors.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
    neighbors.truncate(k);
    drop(root);
    let mut profile = QueryProfile {
        partitions_loaded: 1,
        partition_ids: vec![pid as u64],
        candidates_refined: considered as u64,
        ..QueryProfile::default()
    };
    if let Some(id) = root_id {
        profile.spans = tracer.span_tree_under(id);
    }
    Ok((
        BaselineKnnAnswer {
            neighbors,
            partitions_loaded: 1,
            candidates_refined: considered,
        },
        profile,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::BaselineConfig;
    use crate::index::DpisaxIndex;
    use tardis_cluster::{encode_records, ClusterConfig};
    use tardis_ts::Record;

    fn series(rid: u64) -> TimeSeries {
        let mut x = rid.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut acc = 0.0f32;
        let mut v = Vec::with_capacity(64);
        for _ in 0..64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            acc += ((x >> 40) as f32 / (1u32 << 24) as f32) - 0.5;
            v.push(acc);
        }
        tardis_ts::z_normalize_in_place(&mut v);
        TimeSeries::new(v)
    }

    fn setup(n: u64) -> (Cluster, DpisaxIndex) {
        let cluster = Cluster::new(ClusterConfig {
            n_workers: 4,
            ..ClusterConfig::default()
        })
        .unwrap();
        let blocks: Vec<Vec<u8>> = (0..n)
            .collect::<Vec<u64>>()
            .chunks(100)
            .map(|chunk| {
                encode_records(
                    &chunk
                        .iter()
                        .map(|&rid| Record::new(rid, series(rid)))
                        .collect::<Vec<_>>(),
                )
            })
            .collect();
        cluster.dfs().write_blocks("data", blocks).unwrap();
        let config = BaselineConfig {
            g_max_size: 200,
            l_max_size: 40,
            sampling_fraction: 0.5,
            ..BaselineConfig::default()
        };
        let (index, _) = DpisaxIndex::build(&cluster, "data", &config).unwrap();
        (cluster, index)
    }

    #[test]
    fn exact_match_finds_members() {
        let (cluster, index) = setup(600);
        for rid in (0..600).step_by(73) {
            let out = baseline_exact_match(&index, &cluster, &series(rid)).unwrap();
            assert_eq!(out.matches, vec![rid], "rid {rid}");
            assert_eq!(out.partitions_loaded, 1);
        }
    }

    #[test]
    fn exact_match_misses_absent_but_loads_partition() {
        let (cluster, index) = setup(400);
        let out = baseline_exact_match(&index, &cluster, &series(99_999)).unwrap();
        assert!(out.matches.is_empty());
        // No Bloom filter: the partition is always loaded.
        assert_eq!(out.partitions_loaded, 1);
    }

    #[test]
    fn knn_finds_self_first() {
        let (cluster, index) = setup(500);
        let ans = baseline_knn(&index, &cluster, &series(77), 5).unwrap();
        assert_eq!(ans.neighbors[0].1, 77);
        assert!(ans.neighbors[0].0 < 1e-6);
        assert_eq!(ans.partitions_loaded, 1);
    }

    #[test]
    fn knn_is_sorted_and_bounded() {
        let (cluster, index) = setup(500);
        let ans = baseline_knn(&index, &cluster, &series(3), 20).unwrap();
        assert!(ans.neighbors.len() <= 20);
        for w in ans.neighbors.windows(2) {
            assert!(w[0].0 <= w[1].0);
        }
    }

    #[test]
    fn knn_k_zero_is_empty() {
        let (cluster, index) = setup(200);
        let ans = baseline_knn(&index, &cluster, &series(1), 0).unwrap();
        assert!(ans.neighbors.is_empty());
        let sig = baseline_knn_sig_only(&index, &cluster, &series(1), 0).unwrap();
        assert!(sig.neighbors.is_empty());
    }

    #[test]
    fn profiled_baseline_queries_carry_phase_spans() {
        let (cluster, index) = setup(500);
        let tracer = Tracer::new();
        let (out, profile) =
            baseline_exact_match_profiled(&index, &cluster, &series(42), &tracer).unwrap();
        assert_eq!(out.matches, vec![42]);
        assert_eq!(profile.partitions_loaded, 1);
        let root = &profile.spans[0];
        assert_eq!(root.name, "dpisax-exact");
        for phase in ["route", "load", "refine"] {
            assert!(root.find(phase).is_some(), "missing {phase}");
        }
        // No prune span: the baseline has no Bloom filter.
        assert!(root.find("prune").is_none());
        let (ans, profile) =
            baseline_knn_profiled(&index, &cluster, &series(7), 5, &Tracer::new()).unwrap();
        assert_eq!(ans.neighbors[0].1, 7);
        assert_eq!(profile.candidates_refined, ans.candidates_refined as u64);
        assert_eq!(profile.spans[0].name, "dpisax-knn");
        let (ans, profile) =
            baseline_knn_sig_only_profiled(&index, &cluster, &series(7), 5, &Tracer::new())
                .unwrap();
        assert_eq!(profile.candidates_refined, ans.candidates_refined as u64);
        assert_eq!(
            profile.spans[0].find("refine").unwrap().counter("candidates_estimated"),
            Some(ans.candidates_refined as u64)
        );
    }

    #[test]
    fn sig_only_distances_under_state_truth() {
        // The sig-only answers report lower-bound estimates, which can
        // never exceed the refined distances at the same ranks.
        let (cluster, index) = setup(500);
        let q = series(42);
        let refined = baseline_knn(&index, &cluster, &q, 10).unwrap();
        let sig_only = baseline_knn_sig_only(&index, &cluster, &q, 10).unwrap();
        assert_eq!(sig_only.partitions_loaded, 1);
        // Same candidate pool: the estimates are ≤ the true distances.
        let best_est = sig_only.neighbors.first().map(|&(d, _)| d).unwrap_or(0.0);
        let best_true = refined.neighbors.first().map(|&(d, _)| d).unwrap_or(0.0);
        assert!(best_est <= best_true + 1e-9);
    }

    #[test]
    fn sig_only_recall_not_better_than_refined() {
        // §II-D: skipping the refine phase degrades accuracy. Compare the
        // two answer sets against the refined one as reference truth over
        // several queries; sig-only must not beat refined on average.
        let (cluster, index) = setup(600);
        let mut refined_hits = 0usize;
        let mut sig_hits = 0usize;
        for qrid in [1u64, 77, 200, 411, 599] {
            let q = series(qrid);
            let refined = baseline_knn(&index, &cluster, &q, 10).unwrap();
            let sig_only = baseline_knn_sig_only(&index, &cluster, &q, 10).unwrap();
            let truth: std::collections::HashSet<u64> =
                refined.neighbors.iter().map(|&(_, r)| r).collect();
            refined_hits += refined
                .neighbors
                .iter()
                .filter(|(_, r)| truth.contains(r))
                .count();
            sig_hits += sig_only
                .neighbors
                .iter()
                .filter(|(_, r)| truth.contains(r))
                .count();
        }
        assert!(sig_hits <= refined_hits);
    }
}
