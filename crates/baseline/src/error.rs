//! Error type for the baseline.

use std::fmt;
use tardis_cluster::ClusterError;
use tardis_isax::IsaxError;

/// Errors produced by the DPiSAX baseline.
#[derive(Debug)]
pub enum BaselineError {
    /// Invalid configuration value.
    InvalidConfig {
        /// What was wrong.
        reason: String,
    },
    /// Substrate failure.
    Cluster(ClusterError),
    /// Representation failure.
    Isax(IsaxError),
    /// A partition id is out of range.
    UnknownPartition {
        /// The offending partition id.
        pid: u32,
    },
}

impl fmt::Display for BaselineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BaselineError::InvalidConfig { reason } => {
                write!(f, "invalid baseline configuration: {reason}")
            }
            BaselineError::Cluster(e) => write!(f, "cluster error: {e}"),
            BaselineError::Isax(e) => write!(f, "representation error: {e}"),
            BaselineError::UnknownPartition { pid } => write!(f, "unknown partition id {pid}"),
        }
    }
}

impl std::error::Error for BaselineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BaselineError::Cluster(e) => Some(e),
            BaselineError::Isax(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ClusterError> for BaselineError {
    fn from(e: ClusterError) -> Self {
        BaselineError::Cluster(e)
    }
}

impl From<IsaxError> for BaselineError {
    fn from(e: IsaxError) -> Self {
        BaselineError::Isax(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(BaselineError::InvalidConfig {
            reason: "x".into()
        }
        .to_string()
        .contains('x'));
        assert!(BaselineError::UnknownPartition { pid: 3 }
            .to_string()
            .contains('3'));
        let e: BaselineError = IsaxError::InvalidWordLength { w: 3 }.into();
        assert!(e.to_string().contains("representation"));
    }
}
