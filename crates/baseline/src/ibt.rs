//! The iSAX Binary Tree (iBT) — §II-C of the paper.
//!
//! Structure: one root; a first level of up to `2^w` children, each
//! identified by the 1-bit-per-segment iSAX word; below the first level,
//! strictly binary splits, each promoting exactly one character (segment)
//! by one cardinality bit. The resulting character-level variable
//! cardinality is what the paper contrasts with TARDIS's word-level
//! scheme.
//!
//! Two split policies are implemented:
//!
//! * [`SplitPolicy::RoundRobin`] — the original iSAX policy, cycling
//!   through segments ("shown to perform excessive and unnecessary
//!   subdivision").
//! * [`SplitPolicy::Statistics`] — the iSAX 2.0 policy: pick the segment
//!   whose next-bit distribution over the leaf's entries is the most
//!   balanced, i.e. "having a high probability to equally split the leaf
//!   node".

use tardis_isax::{ISaxWord, SaxWord};
use tardis_ts::Record;

/// Index of a node within an [`Ibt`] arena.
pub type IbtNodeId = u32;

/// How to choose the character promoted at a split.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SplitPolicy {
    /// Cycle segments: parent's split segment + 1 (iSAX).
    RoundRobin,
    /// Most-balanced next-bit distribution (iSAX 2.0).
    Statistics,
}

/// An iBT leaf entry: a full-resolution SAX word plus the record.
#[derive(Debug, Clone, PartialEq)]
pub struct BEntry {
    /// SAX word at the initial cardinality (512 by default).
    pub word: SaxWord,
    /// The raw record.
    pub record: Record,
}

impl BEntry {
    /// Creates an entry.
    pub fn new(word: SaxWord, record: Record) -> BEntry {
        BEntry { word, record }
    }

    /// The record id.
    pub fn rid(&self) -> u64 {
        self.record.rid
    }
}

/// On-disk encoding of a clustered [`BEntry`]: the full-cardinality SAX
/// word (bits, word length, buckets) followed by the record — mirroring
/// TARDIS's clustered entry layout so partition reloads skip the costly
/// 512-cardinality reconversion.
impl tardis_cluster::Encode for BEntry {
    fn encode(&self, buf: &mut bytes::BytesMut) {
        use bytes::BufMut;
        buf.put_u8(self.word.bits());
        buf.put_u16_le(self.word.word_len() as u16);
        for &b in self.word.buckets() {
            buf.put_u16_le(b);
        }
        self.record.encode(buf);
    }

    fn encoded_len_hint(&self) -> usize {
        3 + self.word.word_len() * 2 + self.record.encoded_len_hint()
    }
}

impl tardis_cluster::Decode for BEntry {
    fn decode(buf: &mut &[u8]) -> Result<Self, tardis_cluster::ClusterError> {
        use bytes::Buf;
        let codec_err = |context: &'static str| tardis_cluster::ClusterError::Codec { context };
        if buf.len() < 3 {
            return Err(codec_err("bentry header"));
        }
        let bits = buf.get_u8();
        let w = buf.get_u16_le() as usize;
        if buf.len() < w * 2 {
            return Err(codec_err("bentry buckets"));
        }
        let mut buckets = Vec::with_capacity(w);
        for _ in 0..w {
            buckets.push(buf.get_u16_le());
        }
        let word =
            SaxWord::from_buckets(buckets, bits).map_err(|_| codec_err("bentry word"))?;
        let record = Record::decode(buf)?;
        Ok(BEntry { word, record })
    }
}

/// Configuration of an iBT.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IbtConfig {
    /// Word length `w`.
    pub w: usize,
    /// Initial (maximum) cardinality bits of the stored words.
    pub max_bits: u8,
    /// Leaf split threshold.
    pub threshold: usize,
    /// Split policy.
    pub policy: SplitPolicy,
}

/// One iBT node.
#[derive(Debug, Clone)]
pub struct IbtNode {
    /// The node's iSAX word (`None` for the root, which covers all).
    pub word: Option<ISaxWord>,
    /// Parent link (`None` for the root).
    pub parent: Option<IbtNodeId>,
    /// First-level children of the root, keyed by the packed 1-bit word.
    pub root_children: std::collections::HashMap<u32, IbtNodeId>,
    /// Binary children of an internal node (`[bit0, bit1]`).
    pub bin_children: [Option<IbtNodeId>; 2],
    /// The segment promoted when this node split (`None` until split, and
    /// always `None` for the root, which splits by the first-level key).
    pub split_seg: Option<usize>,
    /// Entries in the subtree.
    pub count: u64,
    /// Leaf payload.
    pub items: Vec<BEntry>,
}

impl IbtNode {
    fn new(word: Option<ISaxWord>, parent: Option<IbtNodeId>) -> IbtNode {
        IbtNode {
            word,
            parent,
            root_children: std::collections::HashMap::new(),
            bin_children: [None, None],
            split_seg: None,
            count: 0,
            items: Vec::new(),
        }
    }

    /// Whether the node currently stores entries.
    pub fn is_leaf(&self) -> bool {
        self.root_children.is_empty() && self.bin_children.iter().all(Option::is_none)
    }

    /// Depth measure: total bits of the word (0 for the root).
    pub fn total_bits(&self) -> u32 {
        self.word.as_ref().map(ISaxWord::total_bits).unwrap_or(0)
    }

    /// Semantic memory footprint of the node *structure* in bytes: the
    /// variable-cardinality word (2 bytes per character: prefix + bit
    /// count), child links, parent link, and counter — mirroring the
    /// sigTree accounting so Figure 13 compares like with like. Leaf item
    /// payloads are accounted separately by the index layer.
    pub fn mem_bytes(&self) -> usize {
        let word_bytes = self.word.as_ref().map(|w| 2 * w.word_len()).unwrap_or(0);
        let links = self.root_children.len() * 8
            + self.bin_children.iter().flatten().count() * 4
            + 4;
        word_bytes + links + 8
    }
}

/// Structural statistics of an iBT (for the sigTree-vs-iBT comparison).
#[derive(Debug, Clone, PartialEq)]
pub struct IbtStats {
    /// Total nodes including the root.
    pub n_nodes: usize,
    /// Internal (split) nodes, excluding the root.
    pub n_internal: usize,
    /// Leaf nodes.
    pub n_leaves: usize,
    /// Mean leaf depth in *edges* from the root.
    pub avg_leaf_depth: f64,
    /// Maximum leaf depth in edges.
    pub max_leaf_depth: u32,
    /// Mean entries per leaf.
    pub avg_leaf_size: f64,
    /// Structure size in bytes.
    pub mem_bytes: usize,
}

/// The iSAX Binary Tree.
#[derive(Debug, Clone)]
pub struct Ibt {
    nodes: Vec<IbtNode>,
    config: IbtConfig,
}

impl Ibt {
    /// Creates an empty tree.
    ///
    /// # Panics
    /// Panics on invalid word length or zero cardinality bits.
    pub fn new(config: IbtConfig) -> Ibt {
        tardis_isax::paa::validate_word_len(config.w).expect("invalid word length");
        assert!(config.max_bits >= 1, "max_bits must be at least 1");
        Ibt {
            nodes: vec![IbtNode::new(None, None)],
            config,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &IbtConfig {
        &self.config
    }

    /// The root id (always 0).
    pub fn root(&self) -> IbtNodeId {
        0
    }

    /// Borrow a node.
    pub fn node(&self, id: IbtNodeId) -> &IbtNode {
        &self.nodes[id as usize]
    }

    fn node_mut(&mut self, id: IbtNodeId) -> &mut IbtNode {
        &mut self.nodes[id as usize]
    }

    /// Total node count.
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Total entries.
    pub fn total_count(&self) -> u64 {
        self.nodes[0].count
    }

    /// Packs the 1-bit word of a full-resolution SAX word into the root
    /// child key.
    fn root_key(&self, word: &SaxWord) -> u32 {
        let shift = word.bits() - 1;
        word.buckets()
            .iter()
            .fold(0u32, |acc, &b| (acc << 1) | ((b >> shift) & 1) as u32)
    }

    /// The branch a full word takes below internal node `id` (which has
    /// split on `split_seg`).
    fn branch_of(&self, id: IbtNodeId, word: &SaxWord) -> usize {
        let node = self.node(id);
        let seg = node.split_seg.expect("internal node has split_seg");
        let node_word = node.word.as_ref().expect("non-root");
        let child_bits = node_word.syms()[seg].bits + 1;
        ((word.buckets()[seg] >> (word.bits() - child_bits)) & 1) as usize
    }

    /// Inserts an entry, splitting overfull leaves per the policy.
    ///
    /// # Panics
    /// Panics if the entry's word does not carry `max_bits` bits.
    pub fn insert(&mut self, entry: BEntry) {
        assert_eq!(
            entry.word.bits(),
            self.config.max_bits,
            "entry word must be at the initial cardinality"
        );
        let mut cur = self.root();
        loop {
            self.node_mut(cur).count += 1;
            let node = self.node(cur);
            if node.is_leaf() && cur != self.root() {
                break;
            }
            if cur == self.root() {
                // Root: first-level child by the packed 1-bit word; the
                // root never stores items itself once the tree is in use.
                let key = self.root_key(&entry.word);
                if let Some(&child) = self.node(cur).root_children.get(&key) {
                    cur = child;
                } else {
                    let word = ISaxWord::root_level(&entry.word);
                    let child = self.push_node(IbtNode::new(Some(word), Some(cur)));
                    self.node_mut(cur).root_children.insert(key, child);
                    cur = child;
                }
                continue;
            }
            // Internal: binary branch.
            let bit = self.branch_of(cur, &entry.word);
            if let Some(child) = self.node(cur).bin_children[bit] {
                cur = child;
            } else {
                let seg = self.node(cur).split_seg.expect("internal");
                let word = self
                    .node(cur)
                    .word
                    .as_ref()
                    .expect("non-root")
                    .promoted(seg, bit as u8);
                let child = self.push_node(IbtNode::new(Some(word), Some(cur)));
                self.node_mut(cur).bin_children[bit] = Some(child);
                cur = child;
            }
        }
        self.node_mut(cur).items.push(entry);
        self.maybe_split(cur);
    }

    fn push_node(&mut self, node: IbtNode) -> IbtNodeId {
        let id = self.nodes.len() as IbtNodeId;
        self.nodes.push(node);
        id
    }

    /// Picks the split segment for a leaf, or `None` when every character
    /// is already at the maximum cardinality.
    fn pick_split_seg(&self, leaf: IbtNodeId) -> Option<usize> {
        let node = self.node(leaf);
        let word = node.word.as_ref().expect("non-root leaf");
        let candidates: Vec<usize> = (0..self.config.w)
            .filter(|&s| word.syms()[s].bits < self.config.max_bits)
            .collect();
        if candidates.is_empty() {
            return None;
        }
        match self.config.policy {
            SplitPolicy::RoundRobin => {
                // Continue from the parent's split segment.
                let start = node
                    .parent
                    .and_then(|p| self.node(p).split_seg)
                    .map(|s| s + 1)
                    .unwrap_or(0);
                (0..self.config.w)
                    .map(|off| (start + off) % self.config.w)
                    .find(|s| candidates.contains(s))
            }
            SplitPolicy::Statistics => {
                // Most balanced next-bit distribution over the items.
                let full_bits = self.config.max_bits;
                candidates
                    .into_iter()
                    .map(|s| {
                        let child_bits = word.syms()[s].bits + 1;
                        let ones: usize = node
                            .items
                            .iter()
                            .filter(|e| {
                                (e.word.buckets()[s] >> (full_bits - child_bits)) & 1 == 1
                            })
                            .count();
                        let zeros = node.items.len() - ones;
                        let imbalance = zeros.abs_diff(ones);
                        (imbalance, s)
                    })
                    .min()
                    .map(|(_, s)| s)
            }
        }
    }

    fn maybe_split(&mut self, leaf: IbtNodeId) {
        let mut cur = leaf;
        loop {
            if self.node(cur).items.len() <= self.config.threshold || cur == self.root() {
                return;
            }
            let Some(seg) = self.pick_split_seg(cur) else {
                return; // every character exhausted; leaf grows unbounded
            };
            self.node_mut(cur).split_seg = Some(seg);
            let items = std::mem::take(&mut self.node_mut(cur).items);
            let mut hot: Option<IbtNodeId> = None;
            for entry in items {
                let bit = self.branch_of(cur, &entry.word);
                let child = match self.node(cur).bin_children[bit] {
                    Some(c) => c,
                    None => {
                        let word = self
                            .node(cur)
                            .word
                            .as_ref()
                            .expect("non-root")
                            .promoted(seg, bit as u8);
                        let c = self.push_node(IbtNode::new(Some(word), Some(cur)));
                        self.node_mut(cur).bin_children[bit] = Some(c);
                        c
                    }
                };
                let cnode = self.node_mut(child);
                cnode.count += 1;
                cnode.items.push(entry);
                if cnode.items.len() > self.config.threshold {
                    hot = Some(child);
                }
            }
            match hot {
                Some(c) => cur = c,
                None => return,
            }
        }
    }

    /// Descends along a full word to the deepest existing node; returns
    /// the root→stop path.
    pub fn descend_path(&self, word: &SaxWord) -> Vec<IbtNodeId> {
        let mut path = vec![self.root()];
        let mut cur = self.root();
        loop {
            let node = self.node(cur);
            if node.is_leaf() && cur != self.root() {
                return path;
            }
            let next = if cur == self.root() {
                let key = self.root_key(word);
                node.root_children.get(&key).copied()
            } else if node.split_seg.is_some() {
                node.bin_children[self.branch_of(cur, word)]
            } else {
                None
            };
            match next {
                Some(child) => {
                    path.push(child);
                    cur = child;
                }
                None => return path,
            }
        }
    }

    /// The deepest node reached by a full word.
    pub fn descend(&self, word: &SaxWord) -> IbtNodeId {
        *self.descend_path(word).last().expect("path non-empty")
    }

    /// The *target node* of a kNN query: deepest node on the path with at
    /// least `k` entries (root fallback).
    pub fn target_node(&self, word: &SaxWord, k: usize) -> IbtNodeId {
        self.descend_path(word)
            .into_iter()
            .rev()
            .find(|&id| self.node(id).count >= k as u64)
            .unwrap_or(self.root())
    }

    /// All entries in leaves under `node`.
    pub fn subtree_items(&self, node: IbtNodeId) -> Vec<&BEntry> {
        let mut out = Vec::new();
        let mut stack = vec![node];
        while let Some(id) = stack.pop() {
            let n = self.node(id);
            out.extend(n.items.iter());
            stack.extend(n.root_children.values().copied());
            stack.extend(n.bin_children.iter().flatten().copied());
        }
        out
    }

    /// Ids of all leaves in the tree.
    pub fn leaf_ids(&self) -> Vec<IbtNodeId> {
        (0..self.nodes.len() as IbtNodeId)
            .filter(|&id| self.nodes[id as usize].is_leaf() && id != 0)
            .collect()
    }

    /// Entries grouped leaf by leaf (clustered serialization order).
    pub fn clustered_entries(&self) -> Vec<&BEntry> {
        let mut out = Vec::with_capacity(self.total_count() as usize);
        for leaf in self.leaf_ids() {
            out.extend(self.node(leaf).items.iter());
        }
        out
    }

    /// Edge depth of a node (0 for the root).
    pub fn depth(&self, id: IbtNodeId) -> u32 {
        let mut d = 0;
        let mut cur = id;
        while let Some(p) = self.node(cur).parent {
            d += 1;
            cur = p;
        }
        d
    }

    /// Structural statistics.
    pub fn stats(&self) -> IbtStats {
        let mut n_internal = 0usize;
        let mut n_leaves = 0usize;
        let mut depth_sum = 0u64;
        let mut max_depth = 0u32;
        let mut leaf_entries = 0u64;
        for id in 1..self.nodes.len() as IbtNodeId {
            let node = self.node(id);
            if node.is_leaf() {
                n_leaves += 1;
                let d = self.depth(id);
                depth_sum += d as u64;
                max_depth = max_depth.max(d);
                leaf_entries += node.count;
            } else {
                n_internal += 1;
            }
        }
        IbtStats {
            n_nodes: self.nodes.len(),
            n_internal,
            n_leaves,
            avg_leaf_depth: if n_leaves == 0 {
                0.0
            } else {
                depth_sum as f64 / n_leaves as f64
            },
            max_leaf_depth: max_depth,
            avg_leaf_size: if n_leaves == 0 {
                0.0
            } else {
                leaf_entries as f64 / n_leaves as f64
            },
            mem_bytes: self.mem_bytes(),
        }
    }

    /// Approximate structure size in bytes.
    pub fn mem_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.nodes.iter().map(IbtNode::mem_bytes).sum::<usize>()
    }

    /// Verifies structural invariants (tests / debug).
    ///
    /// # Errors
    /// A description of the first violation.
    pub fn check_invariants(&self) -> Result<(), String> {
        for (idx, node) in self.nodes.iter().enumerate() {
            let id = idx as IbtNodeId;
            if id == 0 {
                if node.word.is_some() {
                    return Err("root carries a word".into());
                }
                continue;
            }
            let Some(p) = node.parent else {
                return Err(format!("non-root node {id} without parent"));
            };
            let parent = self.node(p);
            let linked = parent.root_children.values().any(|&c| c == id)
                || parent.bin_children.iter().flatten().any(|&c| c == id);
            if !linked {
                return Err(format!("node {id} not linked from parent {p}"));
            }
            if !node.is_leaf() {
                if !node.items.is_empty() {
                    return Err(format!("internal node {id} holds items"));
                }
                let child_sum: u64 = node
                    .bin_children
                    .iter()
                    .flatten()
                    .map(|&c| self.node(c).count)
                    .sum();
                if child_sum != node.count {
                    return Err(format!(
                        "node {id} count {} != children {child_sum}",
                        node.count
                    ));
                }
            } else if node.count != node.items.len() as u64 {
                return Err(format!("leaf {id} count mismatch"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tardis_ts::TimeSeries;

    fn word_of(rid: u64) -> (SaxWord, Record) {
        let mut x = rid.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut acc = 0.0f32;
        let mut v = Vec::with_capacity(64);
        for _ in 0..64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            acc += ((x >> 40) as f32 / (1u32 << 24) as f32) - 0.5;
            v.push(acc);
        }
        tardis_ts::z_normalize_in_place(&mut v);
        let word = SaxWord::from_series(&v, 8, 9).unwrap();
        (word, Record::new(rid, TimeSeries::new(v)))
    }

    fn entry(rid: u64) -> BEntry {
        let (word, record) = word_of(rid);
        BEntry::new(word, record)
    }

    fn tree(threshold: usize, policy: SplitPolicy) -> Ibt {
        Ibt::new(IbtConfig {
            w: 8,
            max_bits: 9,
            threshold,
            policy,
        })
    }

    #[test]
    fn inserts_and_counts() {
        let mut t = tree(10, SplitPolicy::Statistics);
        for rid in 0..100 {
            t.insert(entry(rid));
        }
        assert_eq!(t.total_count(), 100);
        t.check_invariants().unwrap();
        assert_eq!(t.subtree_items(t.root()).len(), 100);
    }

    #[test]
    fn first_level_uses_one_bit_words() {
        let mut t = tree(100, SplitPolicy::Statistics);
        for rid in 0..50 {
            t.insert(entry(rid));
        }
        for &child in t.node(t.root()).root_children.values() {
            let w = t.node(child).word.as_ref().unwrap();
            assert!(w.syms().iter().all(|s| s.bits == 1));
        }
    }

    #[test]
    fn splits_are_binary_below_first_level() {
        let mut t = tree(3, SplitPolicy::Statistics);
        for rid in 0..400 {
            t.insert(entry(rid));
        }
        t.check_invariants().unwrap();
        for id in 1..t.n_nodes() as IbtNodeId {
            let n = t.node(id);
            assert!(n.root_children.is_empty(), "non-root with root children");
            let n_children = n.bin_children.iter().flatten().count();
            assert!(n_children <= 2);
        }
    }

    #[test]
    fn descend_finds_inserted_entries() {
        let mut t = tree(4, SplitPolicy::Statistics);
        let entries: Vec<BEntry> = (0..150).map(entry).collect();
        for e in &entries {
            t.insert(e.clone());
        }
        for e in &entries {
            let leaf = t.descend(&e.word);
            assert!(
                t.node(leaf).items.iter().any(|x| x.rid() == e.rid()),
                "rid {} lost",
                e.rid()
            );
        }
    }

    #[test]
    fn round_robin_cycles_segments() {
        let mut t = tree(2, SplitPolicy::RoundRobin);
        for rid in 0..300 {
            t.insert(entry(rid));
        }
        t.check_invariants().unwrap();
        // Some internal nodes exist with varied split segments.
        let segs: std::collections::HashSet<usize> = (1..t.n_nodes() as IbtNodeId)
            .filter_map(|id| t.node(id).split_seg)
            .collect();
        assert!(segs.len() > 1, "round robin used one segment only: {segs:?}");
    }

    #[test]
    fn ibt_is_deeper_than_fanout_would_allow() {
        // The paper's compactness claim in reverse: with a binary fan-out
        // the leaf depth grows well beyond the sigTree's bound.
        let mut t = tree(2, SplitPolicy::Statistics);
        for rid in 0..2000 {
            t.insert(entry(rid));
        }
        let stats = t.stats();
        assert!(
            stats.max_leaf_depth > 3,
            "unexpectedly shallow: {}",
            stats.max_leaf_depth
        );
        assert!(stats.n_nodes > 1 + stats.n_leaves, "no internal nodes?");
    }

    #[test]
    fn target_node_has_enough_entries() {
        let mut t = tree(5, SplitPolicy::Statistics);
        for rid in 0..300 {
            t.insert(entry(rid));
        }
        let (q, _) = word_of(17);
        for k in [1usize, 10, 100] {
            let target = t.target_node(&q, k);
            assert!(t.node(target).count >= k as u64 || target == t.root());
        }
    }

    #[test]
    fn identical_words_do_not_split_forever() {
        let mut t = tree(2, SplitPolicy::Statistics);
        let e = entry(1);
        for _ in 0..50 {
            t.insert(e.clone());
        }
        t.check_invariants().unwrap();
        assert_eq!(t.total_count(), 50);
        // All 50 live in one leaf whose characters are exhausted.
        let leaf = t.descend(&e.word);
        assert_eq!(t.node(leaf).items.len(), 50);
    }

    #[test]
    fn clustered_entries_cover_everything() {
        let mut t = tree(4, SplitPolicy::Statistics);
        for rid in 0..120 {
            t.insert(entry(rid));
        }
        let clustered = t.clustered_entries();
        assert_eq!(clustered.len(), 120);
        let rids: std::collections::HashSet<u64> = clustered.iter().map(|e| e.rid()).collect();
        assert_eq!(rids.len(), 120);
    }

    #[test]
    fn stats_add_up() {
        let mut t = tree(3, SplitPolicy::Statistics);
        for rid in 0..200 {
            t.insert(entry(rid));
        }
        let s = t.stats();
        assert_eq!(s.n_nodes, 1 + s.n_internal + s.n_leaves);
        assert!(s.avg_leaf_depth >= 1.0);
        assert!(s.mem_bytes > 0);
    }

    #[test]
    #[should_panic(expected = "initial cardinality")]
    fn wrong_cardinality_rejected() {
        let mut t = tree(3, SplitPolicy::Statistics);
        let (word, record) = word_of(1);
        let shallow = word.reduce(4).unwrap();
        t.insert(BEntry::new(shallow, record));
    }
}
