#![warn(missing_docs)]

//! **tardis-baseline** — a from-scratch reimplementation of the DPiSAX
//! baseline the paper evaluates against (§II-C, §II-D, §VI-A: "we extend
//! DPiSAX to support clustered index, Exact-Match query and
//! kNN-Approximate query as the baseline of evaluation").
//!
//! Components:
//!
//! * [`ibt::Ibt`] — the iSAX Binary Tree: a first level of up to `2^w`
//!   children (1 bit per segment), binary splits below that, each split
//!   promoting exactly one character by one bit (character-level variable
//!   cardinality). Both the round-robin split policy of iSAX and the
//!   statistics-based policy of iSAX 2.0 are implemented.
//! * [`global::DpisaxGlobal`] — the sampled partition table: the master
//!   builds an iBT over sampled signatures, its leaves become the table
//!   keys; routing a record performs the per-character masked matching
//!   whose cost the paper highlights ("high matching overhead").
//! * [`index::DpisaxIndex`] — the full pipeline on the shared cluster
//!   substrate: sample → table → shuffle (table lookup per record) →
//!   local iBTs → clustered persistence. The baseline uses the large
//!   initial cardinality of 512 (Table II) required by its split
//!   mechanism.
//! * [`query`] — Exact-Match and kNN-Approximate (target-node access, the
//!   DPiSAX strategy) against the built index.

pub mod config;
pub mod error;
pub mod global;
pub mod ibt;
pub mod index;
pub mod query;

pub use config::BaselineConfig;
pub use error::BaselineError;
pub use global::DpisaxGlobal;
pub use ibt::{BEntry, Ibt, IbtConfig, IbtStats, SplitPolicy};
pub use index::{BaselineBuildReport, DpisaxIndex};
pub use query::{
    baseline_exact_match, baseline_exact_match_profiled, baseline_knn, baseline_knn_profiled,
    baseline_knn_sig_only, baseline_knn_sig_only_profiled, BaselineExactOutcome,
    BaselineKnnAnswer,
};
