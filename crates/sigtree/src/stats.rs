//! Structural statistics of a sigTree — the quantities behind the paper's
//! compactness claims (fewer internal nodes, shorter leaf depth than the
//! binary iBT; §III-B "Benefits") and the index-size figures (Figure 13).

use crate::node::NodeKind;
use crate::tree::{HasSig, SigTree};

/// Structural summary of a tree.
#[derive(Debug, Clone, PartialEq)]
pub struct TreeStats {
    /// Total nodes including the root.
    pub n_nodes: usize,
    /// Internal (non-root, non-leaf) nodes.
    pub n_internal: usize,
    /// Leaf nodes.
    pub n_leaves: usize,
    /// Entries accounted for at the root.
    pub total_count: u64,
    /// Per-layer leaf counts, index = layer.
    pub leaf_depths: Vec<usize>,
    /// Mean leaf depth (0 when there are no leaves).
    pub avg_leaf_depth: f64,
    /// Maximum leaf depth.
    pub max_leaf_depth: u8,
    /// Mean number of entries per leaf (0 when there are no leaves).
    pub avg_leaf_size: f64,
    /// Structure size in bytes.
    pub mem_bytes: usize,
}

impl TreeStats {
    /// Computes statistics for a tree.
    pub fn compute<I: HasSig>(tree: &SigTree<I>) -> TreeStats {
        let mut n_internal = 0usize;
        let mut n_leaves = 0usize;
        let mut leaf_depths = Vec::new();
        let mut depth_sum = 0u64;
        let mut max_depth = 0u8;
        let mut leaf_entries = 0u64;
        for id in 0..tree.n_nodes() as u32 {
            let node = tree.node(id);
            match node.kind() {
                NodeKind::Root => {}
                NodeKind::Internal => n_internal += 1,
                NodeKind::Leaf => {
                    n_leaves += 1;
                    let d = node.layer();
                    if leaf_depths.len() <= d as usize {
                        leaf_depths.resize(d as usize + 1, 0);
                    }
                    leaf_depths[d as usize] += 1;
                    depth_sum += d as u64;
                    max_depth = max_depth.max(d);
                    leaf_entries += node.count;
                }
            }
        }
        TreeStats {
            n_nodes: tree.n_nodes(),
            n_internal,
            n_leaves,
            total_count: tree.total_count(),
            avg_leaf_depth: if n_leaves == 0 {
                0.0
            } else {
                depth_sum as f64 / n_leaves as f64
            },
            max_leaf_depth: max_depth,
            avg_leaf_size: if n_leaves == 0 {
                0.0
            } else {
                leaf_entries as f64 / n_leaves as f64
            },
            leaf_depths,
            mem_bytes: tree.mem_bytes(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::SigTreeConfig;
    use tardis_isax::{SaxWord, SigT};

    fn sig_from_values(values: &[f32]) -> SigT {
        SigT::from_sax(&SaxWord::from_series(values, 8, 6).unwrap())
    }

    fn walk(seed: u64) -> Vec<f32> {
        let mut x = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut acc = 0.0f32;
        let mut v = Vec::with_capacity(64);
        for _ in 0..64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            acc += ((x >> 40) as f32 / (1u32 << 24) as f32) - 0.5;
            v.push(acc);
        }
        tardis_ts::z_normalize_in_place(&mut v);
        v
    }

    #[test]
    fn stats_of_empty_tree() {
        let t: SigTree<SigT> = SigTree::new(SigTreeConfig::storing(8, 6, 4));
        let s = t.stats();
        assert_eq!(s.n_nodes, 1);
        assert_eq!(s.n_leaves, 0, "root alone is not counted as a leaf");
        assert_eq!(s.n_internal, 0);
        assert_eq!(s.avg_leaf_depth, 0.0);
    }

    #[test]
    fn stats_add_up() {
        let mut t: SigTree<SigT> = SigTree::new(SigTreeConfig::storing(8, 6, 3));
        for s in 0..200 {
            t.insert(sig_from_values(&walk(s)));
        }
        let s = t.stats();
        assert_eq!(s.n_nodes, 1 + s.n_internal + s.n_leaves);
        assert_eq!(s.total_count, 200);
        assert_eq!(s.leaf_depths.iter().sum::<usize>(), s.n_leaves);
        assert!(s.max_leaf_depth <= 6);
        assert!(s.avg_leaf_depth > 0.0);
        assert!(s.avg_leaf_size > 0.0);
        assert!(s.mem_bytes > 0);
    }

    #[test]
    fn avg_leaf_depth_below_max() {
        let mut t: SigTree<SigT> = SigTree::new(SigTreeConfig::storing(8, 6, 2));
        for s in 0..500 {
            t.insert(sig_from_values(&walk(s)));
        }
        let s = t.stats();
        assert!(s.avg_leaf_depth <= s.max_leaf_depth as f64);
    }
}
