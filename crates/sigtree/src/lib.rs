#![warn(missing_docs)]

//! The **sigTree**: a hierarchical K-ary tree over iSAX-T signatures
//! (§III-B of the paper).
//!
//! Each node carries an iSAX-T signature prefix; a node at layer `l`
//! covers every time series whose signature starts with that prefix of
//! `l` cardinality bits. A node has at most `2^w` children (one extra bit
//! across all `w` segments). Three node classes exist:
//!
//! * **root** — empty signature, covers the whole space;
//! * **internal** — promoted from a leaf when the leaf exceeds the split
//!   threshold; splitting adds one cardinality bit to *every* segment
//!   (word-level split), redistributing entries over ≤ `2^w` children;
//! * **leaf** — stores entries (what an entry is depends on the index:
//!   Tardis-L leaves hold records, Tardis-G leaves hold partition info).
//!
//! Nodes are doubly linked (parent and children), so sibling sets can be
//! enumerated from any node — the Multi-Partitions Access query strategy
//! relies on that (§V-B).
//!
//! The tree is an arena ([`SigTree`]) generic over the leaf item type,
//! supporting both construction modes used by the paper:
//! entry-at-a-time insertion with automatic splitting (Tardis-L, §IV-C)
//! and layer-by-layer skeleton building from `(signature, frequency)`
//! statistics (Tardis-G, §IV-B).

pub mod node;
pub mod stats;
pub mod tree;

pub use node::{Node, NodeId, NodeKind};
pub use stats::TreeStats;
pub use tree::{Descend, HasSig, SigTree, SigTreeConfig};
