//! sigTree nodes.

use std::collections::BTreeMap;
use tardis_isax::SigT;

/// Index of a node within a [`crate::SigTree`] arena.
pub type NodeId = u32;

/// Classification of a node (§III-B's three node classes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeKind {
    /// The entry point; empty signature; covers the whole space.
    Root,
    /// A split point; holds no entries itself.
    Internal,
    /// A storage node at the bottom.
    Leaf,
}

/// One node of a sigTree.
///
/// `I` is the leaf item type: time-series entries for local indices,
/// partition descriptors for the global index, `()` for pure skeletons.
#[derive(Debug, Clone)]
pub struct Node<I> {
    /// The iSAX-T signature prefix this node covers (empty for the root).
    pub sig: SigT,
    /// Parent link (None for the root) — the "doubly linked" upward edge.
    pub parent: Option<NodeId>,
    /// Children keyed by the packed bit-plane that extends `sig` by one
    /// cardinality bit ([`SigT::plane_key`] at this node's layer).
    ///
    /// Ordered (`BTreeMap`), so every tree walk enumerates children in
    /// key order: two deserializations of the same partition — or the
    /// sequential and shared-scan-batch query paths — visit candidates
    /// in the same order, which keeps refine/early-abandon accounting
    /// and kNN tie-breaking bit-identical across loads.
    pub children: BTreeMap<u32, NodeId>,
    /// Number of time series in this subtree (for skeleton trees, the
    /// sampled frequency).
    pub count: u64,
    /// Leaf payload; always empty on root/internal nodes.
    pub items: Vec<I>,
}

impl<I> Node<I> {
    /// Creates a fresh leaf node.
    pub fn new_leaf(sig: SigT, parent: Option<NodeId>) -> Node<I> {
        Node {
            sig,
            parent,
            children: BTreeMap::new(),
            count: 0,
            items: Vec::new(),
        }
    }

    /// The node's classification.
    pub fn kind(&self) -> NodeKind {
        if self.parent.is_none() {
            NodeKind::Root
        } else if self.children.is_empty() {
            NodeKind::Leaf
        } else {
            NodeKind::Internal
        }
    }

    /// Tree layer = number of cardinality bits of the signature.
    pub fn layer(&self) -> u8 {
        self.sig.bits()
    }

    /// Whether this node stores entries (leaf, or a childless root of an
    /// empty tree).
    pub fn is_leaf(&self) -> bool {
        self.children.is_empty()
    }

    /// Semantic memory footprint of the node *structure* in bytes: the
    /// packed signature (2 signature letters per byte), one child link
    /// (key + id) per child, the parent link, and the counter. Container
    /// over-allocation is deliberately not counted so that index-size
    /// comparisons (Figure 13) reflect what a serialized index would
    /// occupy rather than Rust allocator behaviour. Leaf item payloads
    /// are accounted separately by the index layer.
    pub fn mem_bytes(&self) -> usize {
        let sig_bytes = self.sig.len().div_ceil(2);
        let link_bytes = self.children.len() * 8 + 4;
        sig_bytes + link_bytes + 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_leaf_shape() {
        let n: Node<u32> = Node::new_leaf(SigT::root(8).unwrap(), None);
        assert_eq!(n.kind(), NodeKind::Root);
        assert!(n.is_leaf());
        assert_eq!(n.layer(), 0);
        assert_eq!(n.count, 0);
    }

    #[test]
    fn kind_follows_links() {
        let mut n: Node<u32> = Node::new_leaf(SigT::root(8).unwrap(), Some(0));
        assert_eq!(n.kind(), NodeKind::Leaf);
        n.children.insert(0, 5);
        assert_eq!(n.kind(), NodeKind::Internal);
        assert!(!n.is_leaf());
    }

    #[test]
    fn mem_bytes_counts_structure() {
        let mut n: Node<u64> = Node::new_leaf(SigT::root(8).unwrap(), None);
        let bare = n.mem_bytes();
        assert!(bare > 0);
        // Adding a child link grows the semantic size.
        n.children.insert(0, 1);
        assert!(n.mem_bytes() > bare);
    }
}
