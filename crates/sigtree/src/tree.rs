//! The sigTree arena and its two construction modes.

use crate::node::{Node, NodeId, NodeKind};
use tardis_isax::SigT;

/// Items storable in sigTree leaves must expose their full-resolution
/// iSAX-T signature so the tree can route and split them.
pub trait HasSig {
    /// The item's signature at the tree's initial (maximum) cardinality.
    fn sig(&self) -> &SigT;
}

impl HasSig for SigT {
    fn sig(&self) -> &SigT {
        self
    }
}

impl<A> HasSig for (SigT, A) {
    fn sig(&self) -> &SigT {
        &self.0
    }
}

/// Configuration of a sigTree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SigTreeConfig {
    /// Word length `w` (segments per series); fan-out is at most `2^w`.
    pub w: usize,
    /// Initial cardinality bits `b` — the maximum tree depth. Entries
    /// carry signatures of exactly this many bits.
    pub max_bits: u8,
    /// Split threshold: a leaf exceeding this many entries is promoted to
    /// an internal node (unless already at `max_bits`). `None` disables
    /// splitting (skeleton mode).
    pub split_threshold: Option<usize>,
}

impl SigTreeConfig {
    /// Entry-storing configuration (Tardis-L style).
    pub fn storing(w: usize, max_bits: u8, split_threshold: usize) -> SigTreeConfig {
        SigTreeConfig {
            w,
            max_bits,
            split_threshold: Some(split_threshold),
        }
    }

    /// Skeleton configuration (Tardis-G style — no automatic splits).
    pub fn skeleton(w: usize, max_bits: u8) -> SigTreeConfig {
        SigTreeConfig {
            w,
            max_bits,
            split_threshold: None,
        }
    }
}

/// Result of descending the tree along a signature (§III-B Example 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Descend {
    /// Reached a leaf that covers the signature.
    Leaf(NodeId),
    /// Stopped at an internal node that has no child on the signature's
    /// path (possible in skeleton trees built from samples).
    NoChild(NodeId),
}

impl Descend {
    /// The node where descent stopped, whichever case.
    pub fn node(&self) -> NodeId {
        match *self {
            Descend::Leaf(id) | Descend::NoChild(id) => id,
        }
    }
}

/// A sigTree arena.
///
/// ```
/// use tardis_isax::{SaxWord, SigT};
/// use tardis_sigtree::{Descend, SigTree, SigTreeConfig};
///
/// let mut tree: SigTree<SigT> = SigTree::new(SigTreeConfig::storing(8, 6, 4));
/// let sig = SigT::from_sax(
///     &SaxWord::from_buckets(vec![5, 12, 63, 0, 31, 31, 40, 7], 6).unwrap(),
/// );
/// tree.insert(sig.clone());
/// assert_eq!(tree.total_count(), 1);
/// match tree.descend(&sig) {
///     Descend::Leaf(leaf) => assert!(tree.node(leaf).items.contains(&sig)),
///     Descend::NoChild(_) => unreachable!("inserted signatures are reachable"),
/// }
/// ```
#[derive(Debug, Clone)]
pub struct SigTree<I> {
    nodes: Vec<Node<I>>,
    config: SigTreeConfig,
}

impl<I: HasSig> SigTree<I> {
    /// Creates an empty tree with a root node.
    ///
    /// # Panics
    /// Panics on an invalid word length (must be a positive multiple of 4,
    /// at most 32) or `max_bits == 0`.
    pub fn new(config: SigTreeConfig) -> SigTree<I> {
        tardis_isax::paa::validate_word_len(config.w).expect("invalid word length");
        assert!(config.max_bits >= 1, "max_bits must be at least 1");
        let root = Node::new_leaf(SigT::root(config.w).expect("validated"), None);
        SigTree {
            nodes: vec![root],
            config,
        }
    }

    /// The tree configuration.
    pub fn config(&self) -> &SigTreeConfig {
        &self.config
    }

    /// The root node id (always 0).
    pub fn root(&self) -> NodeId {
        0
    }

    /// Borrow a node.
    ///
    /// # Panics
    /// Panics on an unknown id.
    pub fn node(&self, id: NodeId) -> &Node<I> {
        &self.nodes[id as usize]
    }

    fn node_mut(&mut self, id: NodeId) -> &mut Node<I> {
        &mut self.nodes[id as usize]
    }

    /// Total number of nodes (including the root).
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Total number of entries the root accounts for.
    pub fn total_count(&self) -> u64 {
        self.nodes[0].count
    }

    /// Iterator over all node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len() as NodeId).filter(move |_| true)
    }

    /// Ids of all leaf nodes.
    pub fn leaf_ids(&self) -> Vec<NodeId> {
        (0..self.nodes.len() as NodeId)
            .filter(|&id| self.nodes[id as usize].is_leaf())
            .collect()
    }

    /// Sibling nodes: the parent's other children (empty for the root).
    pub fn siblings(&self, id: NodeId) -> Vec<NodeId> {
        match self.node(id).parent {
            None => Vec::new(),
            Some(p) => self
                .node(p)
                .children
                .values()
                .copied()
                .filter(|&c| c != id)
                .collect(),
        }
    }

    /// Descends from the root along `sig`'s bit-planes as deep as possible.
    ///
    /// # Panics
    /// Debug-asserts that `sig` carries enough planes for the descent
    /// (entries use `max_bits`-bit signatures).
    pub fn descend(&self, sig: &SigT) -> Descend {
        let mut cur = self.root();
        loop {
            let node = self.node(cur);
            if node.is_leaf() {
                return Descend::Leaf(cur);
            }
            let layer = node.layer();
            match sig.plane_key(layer) {
                Some(key) => match node.children.get(&key) {
                    Some(&child) => cur = child,
                    None => return Descend::NoChild(cur),
                },
                // Signature shallower than the tree here: treat like a
                // missing child (callers decide the fallback).
                None => return Descend::NoChild(cur),
            }
        }
    }

    /// The full root→stop path of a descent (inclusive on both ends).
    pub fn descend_path(&self, sig: &SigT) -> Vec<NodeId> {
        let mut path = vec![self.root()];
        let mut cur = self.root();
        loop {
            let node = self.node(cur);
            if node.is_leaf() {
                return path;
            }
            match sig
                .plane_key(node.layer())
                .and_then(|key| node.children.get(&key).copied())
            {
                Some(child) => {
                    path.push(child);
                    cur = child;
                }
                None => return path,
            }
        }
    }

    /// The *target node* of a kNN query (§V-B): the deepest node on the
    /// signature's path whose subtree holds at least `k` entries. Falls
    /// back to the root when even the root holds fewer.
    pub fn target_node(&self, sig: &SigT, k: usize) -> NodeId {
        self.descend_path(sig)
            .into_iter()
            .rev()
            .find(|&id| self.node(id).count >= k as u64)
            .unwrap_or(self.root())
    }

    /// Inserts an entry (Tardis-L mode): descends to a leaf — creating a
    /// new leaf child under an internal node when the path is missing —
    /// places the item, bumps counts along the path, and splits the leaf
    /// if it exceeds the threshold and is not yet at `max_bits`.
    ///
    /// # Panics
    /// Panics if the item's signature has fewer than `max_bits` planes.
    pub fn insert(&mut self, item: I) {
        assert!(
            item.sig().bits() >= self.config.max_bits,
            "entry signature shallower than the tree's initial cardinality"
        );
        let mut cur = self.root();
        loop {
            self.node_mut(cur).count += 1;
            if self.node(cur).is_leaf() {
                break;
            }
            let layer = self.node(cur).layer();
            let key = item
                .sig()
                .plane_key(layer)
                .expect("checked: signature deep enough");
            if let Some(&child) = self.node(cur).children.get(&key) {
                cur = child;
            } else {
                // New branch below an internal node.
                let child_sig = self.node(cur).sig.child(key);
                let child = self.push_node(Node::new_leaf(child_sig, Some(cur)));
                self.node_mut(cur).children.insert(key, child);
                cur = child;
            }
        }
        self.node_mut(cur).items.push(item);
        self.maybe_split(cur);
    }

    fn push_node(&mut self, node: Node<I>) -> NodeId {
        let id = self.nodes.len() as NodeId;
        self.nodes.push(node);
        id
    }

    /// Splits `leaf` if it exceeds the threshold; recursion handles the
    /// rare case where all entries fall into one child that still exceeds
    /// the threshold.
    fn maybe_split(&mut self, leaf: NodeId) {
        let Some(threshold) = self.config.split_threshold else {
            return;
        };
        // Iterate: a split may leave one child still overfull (all items
        // share the next plane), which then splits in turn.
        let mut cur = leaf;
        loop {
            let node = self.node(cur);
            if node.items.len() <= threshold || node.layer() >= self.config.max_bits {
                return;
            }
            let layer = node.layer();
            let items = std::mem::take(&mut self.node_mut(cur).items);
            // Redistribute by the next bit-plane; ≤ 2^w children.
            let mut hot_child: Option<NodeId> = None;
            for item in items {
                let key = item
                    .sig()
                    .plane_key(layer)
                    .expect("entries are max_bits deep");
                let child = match self.node(cur).children.get(&key) {
                    Some(&c) => c,
                    None => {
                        let child_sig = self.node(cur).sig.child(key);
                        let c = self.push_node(Node::new_leaf(child_sig, Some(cur)));
                        self.node_mut(cur).children.insert(key, c);
                        c
                    }
                };
                let cnode = self.node_mut(child);
                cnode.count += 1;
                cnode.items.push(item);
                if cnode.items.len() > threshold {
                    hot_child = Some(child);
                }
            }
            match hot_child {
                Some(c) => cur = c,
                None => return,
            }
        }
    }

    /// Skeleton insertion (Tardis-G mode): places a node with a known
    /// subtree frequency at layer `sig.bits()`. Ancestors must already
    /// exist (the paper inserts statistics layer by layer in ascending
    /// order); the root's count is *not* recomputed — callers set it from
    /// the layer-1 sums via [`Self::set_root_count`].
    ///
    /// # Panics
    /// Panics if an ancestor on the path is missing or if a node with the
    /// same signature was already inserted.
    pub fn insert_stat(&mut self, sig: SigT, count: u64) {
        assert!(
            sig.bits() >= 1 && sig.bits() <= self.config.max_bits,
            "stat node layer out of range"
        );
        let parent_layer = sig.bits() - 1;
        // Walk to the parent prefix.
        let mut cur = self.root();
        for layer in 0..parent_layer {
            let key = sig.plane_key(layer).expect("layer < bits");
            cur = *self
                .node(cur)
                .children
                .get(&key)
                .expect("ancestor missing: stats must be inserted layer by layer");
        }
        let key = sig.plane_key(parent_layer).expect("last plane");
        assert!(
            !self.node(cur).children.contains_key(&key),
            "duplicate stat node {sig}"
        );
        let mut node = Node::new_leaf(sig, Some(cur));
        node.count = count;
        let id = self.push_node(node);
        self.node_mut(cur).children.insert(key, id);
    }

    /// Sets the root's total count (skeleton mode).
    pub fn set_root_count(&mut self, count: u64) {
        self.node_mut(0).count = count;
    }

    /// All items stored in leaves under `node`, depth-first.
    pub fn subtree_items(&self, node: NodeId) -> Vec<&I> {
        let mut out = Vec::new();
        let mut stack = vec![node];
        while let Some(id) = stack.pop() {
            let n = self.node(id);
            out.extend(n.items.iter());
            stack.extend(n.children.values().copied());
        }
        out
    }

    /// All leaf ids under `node` (including `node` itself if a leaf).
    pub fn subtree_leaves(&self, node: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        let mut stack = vec![node];
        while let Some(id) = stack.pop() {
            let n = self.node(id);
            if n.is_leaf() {
                out.push(id);
            } else {
                stack.extend(n.children.values().copied());
            }
        }
        out
    }

    /// Visits every node depth-first, pruning subtrees for which `keep`
    /// returns false; calls `visit` on each kept node. This is the
    /// lower-bound pruning walk of One/Multi-Partition Access (§V-B).
    pub fn prune_walk<'a, K, V>(&'a self, mut keep: K, mut visit: V)
    where
        K: FnMut(&'a Node<I>) -> bool,
        V: FnMut(NodeId, &'a Node<I>),
    {
        let mut stack = vec![self.root()];
        while let Some(id) = stack.pop() {
            let n = self.node(id);
            if !keep(n) {
                continue;
            }
            visit(id, n);
            stack.extend(n.children.values().copied());
        }
    }

    /// Approximate index size in bytes (structure only, excluding item
    /// heap payloads — matching the paper's "local index which excludes
    /// indexed data", Figure 13).
    pub fn mem_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.nodes.iter().map(Node::mem_bytes).sum::<usize>()
    }

    /// Structural statistics (node/leaf counts, depth histogram).
    pub fn stats(&self) -> crate::stats::TreeStats {
        crate::stats::TreeStats::compute(self)
    }

    /// Verifies structural invariants; used by tests and debug assertions.
    /// Returns a description of the first violation, if any.
    pub fn check_invariants(&self) -> Result<(), String> {
        for (idx, node) in self.nodes.iter().enumerate() {
            let id = idx as NodeId;
            // Parent/child link symmetry.
            if let Some(p) = node.parent {
                let parent = self.node(p);
                if !parent.children.values().any(|&c| c == id) {
                    return Err(format!("node {id} not registered in parent {p}"));
                }
                if node.sig.bits() != parent.sig.bits() + 1 {
                    return Err(format!("node {id} not one layer below parent"));
                }
                if !parent.sig.is_prefix_of(&node.sig) {
                    return Err(format!("node {id} signature not extending parent"));
                }
            } else if id != 0 {
                return Err(format!("non-root node {id} has no parent"));
            }
            // Internal nodes hold no items; counts add up.
            if !node.children.is_empty() {
                if !node.items.is_empty() {
                    return Err(format!("internal node {id} holds items"));
                }
                let child_sum: u64 = node.children.values().map(|&c| self.node(c).count).sum();
                if child_sum != node.count {
                    return Err(format!(
                        "node {id} count {} != children sum {child_sum}",
                        node.count
                    ));
                }
            }
            // Leaves in storing mode: count equals item count.
            if node.children.is_empty()
                && self.config.split_threshold.is_some()
                && node.count != node.items.len() as u64
            {
                return Err(format!(
                    "leaf {id} count {} != items {}",
                    node.count,
                    node.items.len()
                ));
            }
            if node.layer() > self.config.max_bits {
                return Err(format!("node {id} deeper than max_bits"));
            }
        }
        Ok(())
    }
}

/// Convenience: kind of a node by id.
impl<I: HasSig> SigTree<I> {
    /// The classification of node `id`.
    pub fn kind(&self, id: NodeId) -> NodeKind {
        self.node(id).kind()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tardis_isax::SaxWord;
    use tardis_ts::z_normalize_in_place;

    /// Builds the iSAX-T signature of a deterministic pseudo-random walk.
    fn sig_of_series(seed: u64, w: usize, bits: u8) -> SigT {
        let mut x = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut acc = 0.0f32;
        let mut v = Vec::with_capacity(64);
        for _ in 0..64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            acc += ((x >> 40) as f32 / (1u32 << 24) as f32) - 0.5;
            v.push(acc);
        }
        z_normalize_in_place(&mut v);
        SigT::from_sax(&SaxWord::from_series(&v, w, bits).unwrap())
    }

    fn storing_tree(threshold: usize) -> SigTree<SigT> {
        SigTree::new(SigTreeConfig::storing(8, 6, threshold))
    }

    #[test]
    fn empty_tree_has_root_leaf() {
        let t = storing_tree(4);
        assert_eq!(t.n_nodes(), 1);
        assert_eq!(t.kind(t.root()), NodeKind::Root);
        assert!(t.node(t.root()).is_leaf());
        assert_eq!(t.total_count(), 0);
    }

    #[test]
    fn insert_without_split_stays_in_root() {
        let mut t = storing_tree(10);
        for seed in 0..5 {
            t.insert(sig_of_series(seed, 8, 6));
        }
        assert_eq!(t.n_nodes(), 1);
        assert_eq!(t.total_count(), 5);
        assert_eq!(t.node(t.root()).items.len(), 5);
        t.check_invariants().unwrap();
    }

    #[test]
    fn insert_beyond_threshold_splits() {
        let mut t = storing_tree(4);
        for seed in 0..50 {
            t.insert(sig_of_series(seed, 8, 6));
        }
        assert!(t.n_nodes() > 1, "tree should have split");
        assert_eq!(t.total_count(), 50);
        t.check_invariants().unwrap();
        // All items still present.
        assert_eq!(t.subtree_items(t.root()).len(), 50);
    }

    #[test]
    fn split_respects_fanout_bound() {
        let mut t = storing_tree(2);
        for seed in 0..300 {
            t.insert(sig_of_series(seed, 8, 6));
        }
        t.check_invariants().unwrap();
        for id in 0..t.n_nodes() as NodeId {
            assert!(t.node(id).children.len() <= 256, "fan-out exceeds 2^8");
        }
    }

    #[test]
    fn leaf_at_max_depth_grows_unbounded() {
        // Identical signatures cannot be separated; the leaf at max depth
        // absorbs them all without splitting.
        let mut t = storing_tree(2);
        let sig = sig_of_series(1, 8, 6);
        for _ in 0..20 {
            t.insert(sig.clone());
        }
        t.check_invariants().unwrap();
        let d = t.descend(&sig);
        let leaf = match d {
            Descend::Leaf(id) => id,
            _ => panic!("expected leaf"),
        };
        assert_eq!(t.node(leaf).items.len(), 20);
        assert!(t.node(leaf).layer() <= 6);
    }

    #[test]
    fn descend_finds_inserted_leaf() {
        let mut t = storing_tree(3);
        let sigs: Vec<SigT> = (0..40).map(|s| sig_of_series(s, 8, 6)).collect();
        for s in &sigs {
            t.insert(s.clone());
        }
        for s in &sigs {
            match t.descend(s) {
                Descend::Leaf(id) => {
                    assert!(t.node(id).sig.is_prefix_of(s));
                    assert!(t
                        .node(id)
                        .items
                        .iter()
                        .any(|item| item == s));
                }
                Descend::NoChild(_) => panic!("inserted signature must reach a leaf"),
            }
        }
    }

    #[test]
    fn descend_path_starts_at_root_and_is_chained() {
        let mut t = storing_tree(2);
        for s in 0..100 {
            t.insert(sig_of_series(s, 8, 6));
        }
        let q = sig_of_series(3, 8, 6);
        let path = t.descend_path(&q);
        assert_eq!(path[0], t.root());
        for w in path.windows(2) {
            assert_eq!(t.node(w[1]).parent, Some(w[0]));
        }
    }

    #[test]
    fn target_node_selects_deepest_with_k() {
        let mut t = storing_tree(2);
        for s in 0..100 {
            t.insert(sig_of_series(s, 8, 6));
        }
        let q = sig_of_series(7, 8, 6);
        // k=1: deepest node on the path (its leaf) qualifies.
        let t1 = t.target_node(&q, 1);
        let path = t.descend_path(&q);
        assert_eq!(t1, *path.last().unwrap());
        // k = everything: only the root qualifies.
        assert_eq!(t.target_node(&q, 100), t.root());
        // k bigger than the dataset: root fallback.
        assert_eq!(t.target_node(&q, 1000), t.root());
        // Monotonicity: larger k climbs toward the root.
        let mut prev_layer = u8::MAX;
        for k in [1usize, 5, 20, 50, 100] {
            let layer = t.node(t.target_node(&q, k)).layer();
            assert!(layer <= prev_layer, "k={k} went deeper");
            prev_layer = layer;
        }
        // Target node always holds at least k (or is the root).
        for k in [1usize, 3, 10, 60] {
            let tn = t.target_node(&q, k);
            assert!(t.node(tn).count >= k as u64 || tn == t.root());
        }
    }

    #[test]
    fn siblings_via_parent() {
        let mut t = storing_tree(1);
        for s in 0..60 {
            t.insert(sig_of_series(s, 8, 6));
        }
        // Find an internal node with several children.
        let internal = (0..t.n_nodes() as NodeId)
            .find(|&id| t.node(id).children.len() >= 2)
            .expect("some split happened");
        let children: Vec<NodeId> = t.node(internal).children.values().copied().collect();
        let sibs = t.siblings(children[0]);
        assert_eq!(sibs.len(), children.len() - 1);
        assert!(!sibs.contains(&children[0]));
        assert!(t.siblings(t.root()).is_empty());
    }

    #[test]
    fn skeleton_insertion_layer_by_layer() {
        let mut t: SigTree<SigT> = SigTree::new(SigTreeConfig::skeleton(8, 6));
        let sig = sig_of_series(5, 8, 6);
        let l1 = sig.drop_right(1).unwrap();
        let l2 = sig.drop_right(2).unwrap();
        t.insert_stat(l1.clone(), 100);
        t.insert_stat(l2.clone(), 60);
        t.set_root_count(100);
        assert_eq!(t.n_nodes(), 3);
        match t.descend(&sig) {
            Descend::Leaf(id) => assert_eq!(t.node(id).sig, l2),
            _ => panic!("expected leaf"),
        }
        // A signature diverging at layer 2 stops at the layer-1 node.
        let mut other = None;
        for s in 0..100 {
            let cand = sig_of_series(s, 8, 6);
            if cand.drop_right(1).unwrap() == l1 && cand.drop_right(2).unwrap() != l2 {
                other = Some(cand);
                break;
            }
        }
        if let Some(o) = other {
            match t.descend(&o) {
                Descend::NoChild(id) => assert_eq!(t.node(id).sig, l1),
                Descend::Leaf(_) => panic!("should not reach a leaf"),
            }
        }
    }

    #[test]
    #[should_panic(expected = "ancestor missing")]
    fn skeleton_requires_ancestors() {
        let mut t: SigTree<SigT> = SigTree::new(SigTreeConfig::skeleton(8, 6));
        let sig = sig_of_series(5, 8, 6);
        t.insert_stat(sig.drop_right(2).unwrap(), 10);
    }

    #[test]
    #[should_panic(expected = "duplicate stat node")]
    fn skeleton_rejects_duplicates() {
        let mut t: SigTree<SigT> = SigTree::new(SigTreeConfig::skeleton(8, 6));
        let sig = sig_of_series(5, 8, 6).drop_right(1).unwrap();
        t.insert_stat(sig.clone(), 10);
        t.insert_stat(sig, 20);
    }

    #[test]
    fn subtree_leaves_and_items_agree() {
        let mut t = storing_tree(3);
        for s in 0..80 {
            t.insert(sig_of_series(s, 8, 6));
        }
        let leaves = t.subtree_leaves(t.root());
        let by_leaves: usize = leaves.iter().map(|&l| t.node(l).items.len()).sum();
        assert_eq!(by_leaves, 80);
        assert_eq!(t.subtree_items(t.root()).len(), 80);
        assert_eq!(t.leaf_ids().len(), leaves.len());
    }

    #[test]
    fn prune_walk_visits_kept_subtrees_only() {
        let mut t = storing_tree(2);
        for s in 0..60 {
            t.insert(sig_of_series(s, 8, 6));
        }
        // Keep everything: visits all nodes.
        let mut all = 0;
        t.prune_walk(|_| true, |_, _| all += 1);
        assert_eq!(all, t.n_nodes());
        // Keep only the root: visits exactly 1.
        let mut one = 0;
        let mut first = true;
        t.prune_walk(
            |_| {
                let keep = first;
                first = false;
                keep
            },
            |_, _| one += 1,
        );
        assert_eq!(one, 1);
    }

    #[test]
    fn insert_rejects_shallow_signature() {
        let mut t = storing_tree(2);
        let shallow = sig_of_series(1, 8, 3);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            t.insert(shallow);
        }));
        assert!(result.is_err());
    }

    #[test]
    fn compactness_vs_depth() {
        // The sigTree claim: depth stays ≤ max_bits even for large inserts,
        // thanks to 2^w fan-out.
        let mut t = storing_tree(8);
        for s in 0..2000 {
            t.insert(sig_of_series(s, 8, 6));
        }
        t.check_invariants().unwrap();
        let max_layer = (0..t.n_nodes() as NodeId)
            .map(|id| t.node(id).layer())
            .max()
            .unwrap();
        assert!(max_layer <= 6);
    }

    #[test]
    fn mem_bytes_grows_with_inserts() {
        let mut t = storing_tree(2);
        let before = t.mem_bytes();
        for s in 0..100 {
            t.insert(sig_of_series(s, 8, 6));
        }
        assert!(t.mem_bytes() > before);
    }
}
