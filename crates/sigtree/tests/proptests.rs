//! Property-based tests: sigTree invariants under arbitrary insert
//! sequences.

use proptest::prelude::*;
use tardis_isax::{SaxWord, SigT};
use tardis_sigtree::{Descend, SigTree, SigTreeConfig};
use tardis_ts::z_normalize_in_place;

fn sig_strategy() -> impl Strategy<Value = SigT> {
    prop::collection::vec(-3.0f32..3.0, 64).prop_map(|mut v| {
        z_normalize_in_place(&mut v);
        SigT::from_sax(&SaxWord::from_series(&v, 8, 6).unwrap())
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn invariants_hold_after_any_inserts(
        sigs in prop::collection::vec(sig_strategy(), 1..200),
        threshold in 1usize..10,
    ) {
        let mut tree: SigTree<SigT> = SigTree::new(SigTreeConfig::storing(8, 6, threshold));
        for s in &sigs {
            tree.insert(s.clone());
        }
        prop_assert!(tree.check_invariants().is_ok(), "{:?}", tree.check_invariants());
        prop_assert_eq!(tree.total_count(), sigs.len() as u64);
        prop_assert_eq!(tree.subtree_items(tree.root()).len(), sigs.len());
    }

    #[test]
    fn every_inserted_sig_is_findable(
        sigs in prop::collection::vec(sig_strategy(), 1..100),
    ) {
        let mut tree: SigTree<SigT> = SigTree::new(SigTreeConfig::storing(8, 6, 3));
        for s in &sigs {
            tree.insert(s.clone());
        }
        for s in &sigs {
            match tree.descend(s) {
                Descend::Leaf(id) => {
                    prop_assert!(tree.node(id).items.iter().any(|i| i == s));
                }
                Descend::NoChild(_) => prop_assert!(false, "lost signature"),
            }
        }
    }

    #[test]
    fn leaf_sizes_respect_threshold_or_max_depth(
        sigs in prop::collection::vec(sig_strategy(), 1..150),
        threshold in 1usize..8,
    ) {
        let mut tree: SigTree<SigT> = SigTree::new(SigTreeConfig::storing(8, 6, threshold));
        for s in &sigs {
            tree.insert(s.clone());
        }
        for id in tree.leaf_ids() {
            let n = tree.node(id);
            // A leaf may exceed the threshold only when it cannot split
            // further (already at maximum cardinality).
            prop_assert!(
                n.items.len() <= threshold || n.layer() == 6,
                "leaf layer {} size {}",
                n.layer(),
                n.items.len()
            );
        }
    }

    #[test]
    fn insertion_order_does_not_change_leaf_assignment(
        sigs in prop::collection::vec(sig_strategy(), 2..60),
    ) {
        let build = |order: &[SigT]| {
            let mut tree: SigTree<SigT> = SigTree::new(SigTreeConfig::storing(8, 6, 2));
            for s in order {
                tree.insert(s.clone());
            }
            // Canonical view: sorted (leaf signature, sorted leaf items).
            let mut view: Vec<(String, Vec<String>)> = tree
                .leaf_ids()
                .into_iter()
                .map(|id| {
                    let n = tree.node(id);
                    let mut items: Vec<String> =
                        n.items.iter().map(|s| s.to_hex()).collect();
                    items.sort();
                    (n.sig.to_hex(), items)
                })
                .collect();
            view.sort();
            view
        };
        let forward = build(&sigs);
        let mut reversed = sigs.clone();
        reversed.reverse();
        let backward = build(&reversed);
        prop_assert_eq!(forward, backward);
    }

    #[test]
    fn target_node_count_is_sufficient(
        sigs in prop::collection::vec(sig_strategy(), 10..100),
        k in 1usize..20,
    ) {
        let mut tree: SigTree<SigT> = SigTree::new(SigTreeConfig::storing(8, 6, 3));
        for s in &sigs {
            tree.insert(s.clone());
        }
        let q = &sigs[0];
        let target = tree.target_node(q, k);
        let node = tree.node(target);
        prop_assert!(node.count >= k as u64 || target == tree.root());
    }
}
