//! Dataset distribution profiling — Figure 9 support.
//!
//! The paper motivates its dataset choices by "a wide range of skewness
//! with respect to the values' occurrence frequencies". This module pools
//! values from a sample of records and summarizes the distribution:
//! histogram over the z-normalized range, plus moments and skewness.

use crate::generator::SeriesGen;
use tardis_ts::{Histogram, SummaryStats};

/// A value-distribution profile of a dataset sample.
#[derive(Debug, Clone)]
pub struct DatasetProfile {
    /// Dataset name.
    pub name: String,
    /// Records sampled.
    pub n_records: u64,
    /// Series length.
    pub series_len: usize,
    /// Moments over all pooled values.
    pub stats: SummaryStats,
    /// Histogram over `[-4, 4)` (z-normalized values) with 64 bins.
    pub histogram: Histogram,
}

impl DatasetProfile {
    /// Population skewness of the pooled values — the Figure 9 axis.
    pub fn skewness(&self) -> f64 {
        self.stats.skewness()
    }

    /// Peak bin frequency — how concentrated the distribution is.
    pub fn peak_frequency(&self) -> f64 {
        self.histogram
            .frequencies()
            .into_iter()
            .fold(0.0, f64::max)
    }
}

/// Profiles the first `n_records` records of a generator.
///
/// # Panics
/// Panics if `n_records == 0`.
pub fn profile_dataset(gen: &dyn SeriesGen, n_records: u64) -> DatasetProfile {
    assert!(n_records > 0, "need at least one record");
    let mut stats = SummaryStats::new();
    let mut histogram = Histogram::new(-4.0, 4.0, 64);
    for rid in 0..n_records {
        let ts = gen.series(rid);
        for &v in ts.values() {
            stats.push(v as f64);
            histogram.push(v as f64);
        }
    }
    DatasetProfile {
        name: gen.name().to_string(),
        n_records,
        series_len: gen.series_len(),
        stats,
        histogram,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DnaLike, NoaaLike, RandomWalk, TexmexLike};

    #[test]
    fn profile_counts_everything() {
        let g = RandomWalk::with_len(1, 32);
        let p = profile_dataset(&g, 10);
        assert_eq!(p.stats.count(), 320);
        assert_eq!(p.histogram.total(), 320);
        assert_eq!(p.series_len, 32);
        assert_eq!(p.name, "randomwalk");
    }

    #[test]
    fn znormalized_profiles_center_near_zero() {
        let g = RandomWalk::with_len(1, 64);
        let p = profile_dataset(&g, 50);
        assert!(p.stats.mean().abs() < 0.05);
        assert!((p.stats.std_dev() - 1.0).abs() < 0.05);
    }

    #[test]
    fn datasets_cover_a_range_of_skewness() {
        // The Figure 9 claim at small scale: the four families do not all
        // share one skewness value.
        let skews = [
            profile_dataset(&RandomWalk::with_len(1, 64), 60).skewness(),
            profile_dataset(&TexmexLike::new(1), 60).skewness(),
            profile_dataset(&DnaLike::new(1), 60).skewness(),
            profile_dataset(&NoaaLike::new(1), 60).skewness(),
        ];
        let min = skews.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = skews.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(max - min > 0.05, "skewness range too narrow: {skews:?}");
    }

    #[test]
    fn peak_frequency_is_a_probability() {
        let p = profile_dataset(&NoaaLike::new(2), 20);
        let peak = p.peak_frequency();
        assert!((0.0..=1.0).contains(&peak));
        assert!(peak > 0.0);
    }
}
