//! Writing generated datasets into the cluster DFS.
//!
//! Datasets are stored as blocks of encoded records — the layout the
//! paper's pipelines consume (block-level sampling, block-parallel
//! conversion). Block generation is parallel across the worker pool and
//! deterministic: block `b` holds records `[b·per_block, …)`.

use crate::generator::SeriesGen;
use tardis_cluster::{encode_records, Cluster, ClusterError};
use tardis_ts::Record;

/// Where and how a dataset was laid out on the DFS.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DatasetLayout {
    /// DFS file name holding the blocks.
    pub file: String,
    /// Total records written.
    pub n_records: u64,
    /// Records per block (last block may be smaller).
    pub records_per_block: usize,
    /// Number of blocks written.
    pub n_blocks: usize,
}

impl DatasetLayout {
    /// The record-id range stored in block `index`.
    pub fn block_range(&self, index: u32) -> std::ops::Range<u64> {
        let start = index as u64 * self.records_per_block as u64;
        let end = (start + self.records_per_block as u64).min(self.n_records);
        start..end
    }
}

/// Generates `n_records` records from `gen` and writes them to the DFS
/// file `name` in blocks of `records_per_block`.
///
/// # Panics
/// Panics if `records_per_block == 0` or `n_records == 0`.
///
/// # Errors
/// Propagates DFS write errors.
pub fn write_dataset(
    cluster: &Cluster,
    name: &str,
    gen: &dyn SeriesGen,
    n_records: u64,
    records_per_block: usize,
) -> Result<DatasetLayout, ClusterError> {
    assert!(records_per_block > 0, "records_per_block must be positive");
    assert!(n_records > 0, "dataset must be non-empty");
    let n_blocks = (n_records as usize).div_ceil(records_per_block);
    // Generate blocks in parallel, then append sequentially in block order
    // (DFS appends are ordered; generation dominates the cost).
    let blocks: Vec<Vec<u8>> = cluster.pool().par_tasks(n_blocks, |b| {
        let start = b as u64 * records_per_block as u64;
        let end = (start + records_per_block as u64).min(n_records);
        let records: Vec<Record> = (start..end).map(|rid| gen.record(rid)).collect();
        cluster.metrics().record_task();
        encode_records(&records)
    });
    cluster.dfs().write_blocks(name, blocks)?;
    Ok(DatasetLayout {
        file: name.to_string(),
        n_records,
        records_per_block,
        n_blocks,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random_walk::RandomWalk;
    use tardis_cluster::{decode_records, ClusterConfig};

    fn cluster() -> Cluster {
        Cluster::new(ClusterConfig {
            n_workers: 4,
            ..ClusterConfig::default()
        })
        .unwrap()
    }

    #[test]
    fn writes_expected_block_count() {
        let c = cluster();
        let g = RandomWalk::with_len(1, 32);
        let layout = write_dataset(&c, "rw", &g, 25, 10).unwrap();
        assert_eq!(layout.n_blocks, 3);
        assert_eq!(c.dfs().list_blocks("rw").unwrap().len(), 3);
    }

    #[test]
    fn blocks_hold_correct_records() {
        let c = cluster();
        let g = RandomWalk::with_len(2, 16);
        let layout = write_dataset(&c, "rw", &g, 23, 10).unwrap();
        for id in c.dfs().list_blocks("rw").unwrap() {
            let bytes = c.dfs().read_block(&id).unwrap();
            let records: Vec<Record> = decode_records(&bytes).unwrap();
            let range = layout.block_range(id.index);
            assert_eq!(records.len() as u64, range.end - range.start);
            for (r, rid) in records.iter().zip(range) {
                assert_eq!(r.rid, rid);
                assert!(r.ts.exact_eq(&g.series(rid)), "rid {rid} regenerable");
            }
        }
    }

    #[test]
    fn block_range_clamps_last_block() {
        let layout = DatasetLayout {
            file: "f".into(),
            n_records: 25,
            records_per_block: 10,
            n_blocks: 3,
        };
        assert_eq!(layout.block_range(0), 0..10);
        assert_eq!(layout.block_range(2), 20..25);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_dataset_rejected() {
        let c = cluster();
        let g = RandomWalk::with_len(1, 16);
        let _ = write_dataset(&c, "rw", &g, 0, 10);
    }
}
