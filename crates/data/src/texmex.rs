//! Synthetic analogue of the Texmex SIFT corpus (§VI-A).
//!
//! The real dataset contains one billion 128-dimensional SIFT descriptors:
//! non-negative gradient-histogram vectors with strong cluster structure
//! (images of similar scenes produce similar descriptors). This generator
//! reproduces those properties: each vector is a cluster template (one of
//! `n_clusters` per-dimension intensity profiles) plus positive
//! multiplicative noise, truncated at zero, and finally z-normalized as
//! the paper does for every dataset. The zero-truncation concentrates
//! probability mass at the low end, yielding the right-skewed value
//! distribution visible in Figure 9's Texmex panel.

use crate::generator::{normal_pair, rng_for_record, SeriesGen};
use rand::Rng;
use tardis_ts::{RecordId, TimeSeries};

/// Texmex-like SIFT-descriptor generator (length 128).
#[derive(Debug, Clone)]
pub struct TexmexLike {
    seed: u64,
    len: usize,
    n_clusters: usize,
}

impl TexmexLike {
    /// Creates a generator with the paper's vector length (128) and a
    /// default of 64 latent clusters.
    pub fn new(seed: u64) -> TexmexLike {
        TexmexLike {
            seed,
            len: 128,
            n_clusters: 64,
        }
    }

    /// Overrides the number of latent clusters (more clusters = flatter
    /// signature distribution).
    ///
    /// # Panics
    /// Panics if `n_clusters == 0`.
    pub fn with_clusters(seed: u64, n_clusters: usize) -> TexmexLike {
        assert!(n_clusters > 0, "need at least one cluster");
        TexmexLike {
            seed,
            len: 128,
            n_clusters,
        }
    }

    /// The cluster template for cluster `c`: a smooth positive intensity
    /// profile derived deterministically from the dataset seed.
    fn template(&self, c: usize, dim: usize) -> f64 {
        // Sum of a few seeded sinusoids, shifted positive — mimics the
        // banded structure of gradient histograms.
        let mut x = self
            .seed
            .wrapping_mul(0xA24BAED4963EE407)
            .wrapping_add(c as u64);
        x = (x ^ (x >> 29)).wrapping_mul(0xBF58476D1CE4E5B9);
        let phase = (x % 1024) as f64 / 1024.0 * std::f64::consts::TAU;
        let freq1 = 1.0 + ((x >> 10) % 4) as f64;
        let freq2 = 3.0 + ((x >> 13) % 5) as f64;
        let t = dim as f64 / self.len as f64 * std::f64::consts::TAU;
        2.0 + (freq1 * t + phase).sin() + 0.5 * (freq2 * t + 2.0 * phase).cos()
    }
}

impl SeriesGen for TexmexLike {
    fn series_len(&self) -> usize {
        self.len
    }

    fn name(&self) -> &str {
        "texmex"
    }

    fn series(&self, rid: RecordId) -> TimeSeries {
        let mut rng = rng_for_record(self.seed, rid);
        let cluster = rng.gen_range(0..self.n_clusters);
        let mut values = Vec::with_capacity(self.len);
        let mut i = 0;
        while i < self.len {
            let (n1, n2) = normal_pair(&mut rng);
            for n in [n1, n2] {
                if i >= self.len {
                    break;
                }
                let base = self.template(cluster, i);
                // Positive noise with occasional spikes, clipped at zero —
                // SIFT bins are non-negative and heavy-tailed.
                let v = (base * (1.0 + 0.45 * n)).max(0.0);
                values.push(v as f32);
                i += 1;
            }
        }
        tardis_ts::z_normalize_in_place(&mut values);
        TimeSeries::new(values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::SeriesGen;

    #[test]
    fn shape_and_normalization() {
        let g = TexmexLike::new(1);
        let ts = g.series(0);
        assert_eq!(ts.len(), 128);
        let (mean, std) = tardis_ts::znorm_params(ts.values());
        assert!(mean.abs() < 1e-5);
        assert!((std - 1.0).abs() < 1e-4);
    }

    #[test]
    fn deterministic() {
        let g = TexmexLike::new(3);
        assert!(g.series(11).exact_eq(&g.series(11)));
    }

    #[test]
    fn cluster_structure_exists() {
        // Vectors from the same cluster are closer than vectors from
        // different clusters, on average. With 4 clusters, same-cluster
        // pairs are frequent among a small sample.
        let g = TexmexLike::with_clusters(5, 4);
        let series: Vec<_> = (0..40).map(|rid| g.series(rid)).collect();
        let mut dists = Vec::new();
        for i in 0..series.len() {
            for j in (i + 1)..series.len() {
                dists.push(
                    tardis_ts::squared_euclidean(series[i].values(), series[j].values()).sqrt(),
                );
            }
        }
        dists.sort_by(|a, b| a.partial_cmp(b).unwrap());
        // Bimodal structure: the closest decile is much closer than the
        // median pair.
        let low = dists[dists.len() / 10];
        let mid = dists[dists.len() / 2];
        assert!(low < 0.8 * mid, "no cluster structure: {low} vs {mid}");
    }

    #[test]
    fn distribution_is_skewed() {
        // Pool values from several vectors; skewness should be clearly
        // non-zero (right tail from the spiky bins before normalization
        // becomes a left/right asymmetry after z-norm).
        let g = TexmexLike::new(7);
        let mut pooled = Vec::new();
        for rid in 0..50 {
            pooled.extend_from_slice(g.series(rid).values());
        }
        let skew = tardis_ts::skewness(&pooled);
        assert!(skew.abs() > 0.1, "skewness {skew}");
    }
}
