//! The RandomWalk benchmark generator.
//!
//! "This dataset is generated for 1 billion time series with 256 points"
//! (§VI-A); the generation procedure is the one used across the iSAX
//! literature: each series is the cumulative sum of independent standard
//! Gaussian steps, then z-normalized.

use crate::generator::{fill_normal, rng_for_record, SeriesGen};
use tardis_ts::{RecordId, TimeSeries};

/// RandomWalk dataset generator (default length 256).
#[derive(Debug, Clone)]
pub struct RandomWalk {
    seed: u64,
    len: usize,
}

impl RandomWalk {
    /// Creates a generator with the paper's series length (256).
    pub fn new(seed: u64) -> RandomWalk {
        RandomWalk { seed, len: 256 }
    }

    /// Creates a generator with a custom series length.
    ///
    /// # Panics
    /// Panics if `len == 0`.
    pub fn with_len(seed: u64, len: usize) -> RandomWalk {
        assert!(len > 0, "series length must be positive");
        RandomWalk { seed, len }
    }
}

impl SeriesGen for RandomWalk {
    fn series_len(&self) -> usize {
        self.len
    }

    fn name(&self) -> &str {
        "randomwalk"
    }

    fn series(&self, rid: RecordId) -> TimeSeries {
        let mut rng = rng_for_record(self.seed, rid);
        let mut steps = vec![0.0f64; self.len];
        fill_normal(&mut rng, &mut steps);
        let mut acc = 0.0f64;
        let mut values = Vec::with_capacity(self.len);
        for s in steps {
            acc += s;
            values.push(acc as f32);
        }
        tardis_ts::z_normalize_in_place(&mut values);
        TimeSeries::new(values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_shape() {
        let g = RandomWalk::new(1);
        let ts = g.series(0);
        assert_eq!(ts.len(), 256);
        let (mean, std) = tardis_ts::znorm_params(ts.values());
        assert!(mean.abs() < 1e-5);
        assert!((std - 1.0).abs() < 1e-5);
    }

    #[test]
    fn deterministic_per_rid() {
        let g = RandomWalk::new(9);
        assert!(g.series(5).exact_eq(&g.series(5)));
        assert!(!g.series(5).exact_eq(&g.series(6)));
    }

    #[test]
    fn seeds_decorrelate_datasets() {
        let a = RandomWalk::new(1).series(0);
        let b = RandomWalk::new(2).series(0);
        assert!(!a.exact_eq(&b));
    }

    #[test]
    fn custom_length() {
        let g = RandomWalk::with_len(1, 64);
        assert_eq!(g.series_len(), 64);
        assert_eq!(g.series(3).len(), 64);
    }

    #[test]
    fn successive_values_are_autocorrelated() {
        // Walks move smoothly: adjacent differences are much smaller than
        // the overall range.
        let ts = RandomWalk::new(4).series(17);
        let v = ts.values();
        let max_jump = v
            .windows(2)
            .map(|w| (w[1] - w[0]).abs())
            .fold(0.0f32, f32::max);
        let range = v.iter().fold(f32::MIN, |a, &b| a.max(b))
            - v.iter().fold(f32::MAX, |a, &b| a.min(b));
        assert!(max_jump < range / 2.0, "jump {max_jump} vs range {range}");
    }

    #[test]
    #[should_panic(expected = "length must be positive")]
    fn zero_length_rejected() {
        RandomWalk::with_len(1, 0);
    }
}
