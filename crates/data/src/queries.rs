//! Query workload generation.
//!
//! The exact-match evaluation (§VI-C1) uses 100 queries per run, "50%
//! randomly selected from the dataset while the other 50% are guaranteed
//! to not exist". kNN evaluations use randomly selected dataset members
//! as queries. Absent queries are drawn from the same generator family at
//! record ids beyond the dataset size, so they follow the data
//! distribution without (bit-exactly) colliding with any stored series.

use crate::generator::SeriesGen;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use tardis_ts::TimeSeries;

/// Whether a query series is a dataset member.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryKind {
    /// Copied from a stored record (exact match must find it).
    Existing {
        /// The record it was copied from.
        rid: u64,
    },
    /// Generated outside the stored id range (exact match must miss).
    Absent,
}

/// A generated query workload.
#[derive(Debug, Clone)]
pub struct QueryWorkload {
    /// The query series, z-normalized like the data.
    pub queries: Vec<(TimeSeries, QueryKind)>,
}

impl QueryWorkload {
    /// Builds a mixed workload of `n` queries: `n/2` existing (sampled
    /// uniformly from `[0, dataset_size)`) and `n − n/2` absent, shuffled
    /// deterministically.
    ///
    /// # Panics
    /// Panics if `dataset_size == 0` or `n == 0`.
    pub fn mixed(gen: &dyn SeriesGen, dataset_size: u64, n: usize, seed: u64) -> QueryWorkload {
        assert!(dataset_size > 0, "dataset must be non-empty");
        assert!(n > 0, "workload must be non-empty");
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x51AB_F00D);
        let n_existing = n / 2;
        let mut queries = Vec::with_capacity(n);
        for _ in 0..n_existing {
            let rid = rng.gen_range(0..dataset_size);
            queries.push((gen.series(rid), QueryKind::Existing { rid }));
        }
        for i in 0..(n - n_existing) {
            // Ids beyond the dataset: same distribution, not stored.
            let rid = dataset_size + seed % 1000 + i as u64;
            queries.push((gen.series(rid), QueryKind::Absent));
        }
        // Deterministic shuffle so existing/absent interleave.
        for i in (1..queries.len()).rev() {
            let j = rng.gen_range(0..=i);
            queries.swap(i, j);
        }
        QueryWorkload { queries }
    }

    /// Builds a kNN workload of `n` queries, all sampled from the dataset
    /// (the paper's kNN queries are dataset members).
    ///
    /// # Panics
    /// Panics if `dataset_size == 0` or `n == 0`.
    pub fn existing(gen: &dyn SeriesGen, dataset_size: u64, n: usize, seed: u64) -> QueryWorkload {
        assert!(dataset_size > 0, "dataset must be non-empty");
        assert!(n > 0, "workload must be non-empty");
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xE81D_CAFE);
        let queries = (0..n)
            .map(|_| {
                let rid = rng.gen_range(0..dataset_size);
                (gen.series(rid), QueryKind::Existing { rid })
            })
            .collect();
        QueryWorkload { queries }
    }

    /// Number of queries.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// Whether the workload is empty (never true for constructed ones).
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// Count of existing-kind queries.
    pub fn n_existing(&self) -> usize {
        self.queries
            .iter()
            .filter(|(_, k)| matches!(k, QueryKind::Existing { .. }))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random_walk::RandomWalk;

    #[test]
    fn mixed_is_half_and_half() {
        let g = RandomWalk::with_len(1, 32);
        let w = QueryWorkload::mixed(&g, 1000, 100, 7);
        assert_eq!(w.len(), 100);
        assert_eq!(w.n_existing(), 50);
    }

    #[test]
    fn mixed_existing_queries_match_their_records() {
        let g = RandomWalk::with_len(1, 32);
        let w = QueryWorkload::mixed(&g, 50, 20, 3);
        for (ts, kind) in &w.queries {
            if let QueryKind::Existing { rid } = kind {
                assert!(ts.exact_eq(&g.series(*rid)));
                assert!(*rid < 50);
            }
        }
    }

    #[test]
    fn absent_queries_are_outside_dataset() {
        let g = RandomWalk::with_len(1, 32);
        let w = QueryWorkload::mixed(&g, 10, 10, 3);
        for (ts, kind) in &w.queries {
            if matches!(kind, QueryKind::Absent) {
                // Not bit-equal to any stored record.
                for rid in 0..10 {
                    assert!(!ts.exact_eq(&g.series(rid)));
                }
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let g = RandomWalk::with_len(1, 32);
        let a = QueryWorkload::mixed(&g, 100, 10, 5);
        let b = QueryWorkload::mixed(&g, 100, 10, 5);
        for (x, y) in a.queries.iter().zip(&b.queries) {
            assert!(x.0.exact_eq(&y.0));
            assert_eq!(x.1, y.1);
        }
    }

    #[test]
    fn existing_workload_is_all_members() {
        let g = RandomWalk::with_len(1, 32);
        let w = QueryWorkload::existing(&g, 100, 30, 5);
        assert_eq!(w.n_existing(), 30);
    }

    #[test]
    fn odd_count_splits_rounding_down_existing() {
        let g = RandomWalk::with_len(1, 32);
        let w = QueryWorkload::mixed(&g, 100, 9, 5);
        assert_eq!(w.n_existing(), 4);
        assert_eq!(w.len(), 9);
    }
}
