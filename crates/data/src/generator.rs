//! The generator trait and shared random-number plumbing.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use tardis_ts::{Record, RecordId, TimeSeries};

/// A deterministic per-record series generator.
///
/// Implementations derive every record purely from `(dataset_seed, rid)`;
/// two calls with the same rid always return the identical series, which
/// lets the evaluation regenerate arbitrary records without storing the
/// dataset twice.
pub trait SeriesGen: Send + Sync {
    /// Length of every generated series.
    fn series_len(&self) -> usize;

    /// Short dataset name (used for DFS file names and report rows).
    fn name(&self) -> &str;

    /// Generates the (z-normalized) series of record `rid`.
    fn series(&self, rid: RecordId) -> TimeSeries;

    /// Generates the full record.
    fn record(&self, rid: RecordId) -> Record {
        Record::new(rid, self.series(rid))
    }
}

/// Derives an independent RNG stream for one record of one dataset.
pub fn rng_for_record(dataset_seed: u64, rid: RecordId) -> SmallRng {
    // splitmix-style avalanche over (seed, rid) to decorrelate streams.
    let mut x = dataset_seed ^ rid.wrapping_mul(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^= x >> 31;
    SmallRng::seed_from_u64(x)
}

/// One Box–Muller draw: two independent standard-normal samples.
pub fn normal_pair(rng: &mut impl Rng) -> (f64, f64) {
    // Guard against ln(0).
    let u1: f64 = loop {
        let u: f64 = rng.gen();
        if u > 1e-300 {
            break u;
        }
    };
    let u2: f64 = rng.gen();
    let r = (-2.0 * u1.ln()).sqrt();
    let theta = 2.0 * std::f64::consts::PI * u2;
    (r * theta.cos(), r * theta.sin())
}

/// Fills `out` with standard-normal samples.
pub fn fill_normal(rng: &mut impl Rng, out: &mut [f64]) {
    let mut i = 0;
    while i + 1 < out.len() {
        let (a, b) = normal_pair(rng);
        out[i] = a;
        out[i + 1] = b;
        i += 2;
    }
    if i < out.len() {
        out[i] = normal_pair(rng).0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_streams_are_deterministic() {
        let mut a = rng_for_record(1, 42);
        let mut b = rng_for_record(1, 42);
        for _ in 0..10 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn record_streams_differ_across_rids_and_seeds() {
        let mut a = rng_for_record(1, 42);
        let mut b = rng_for_record(1, 43);
        let mut c = rng_for_record(2, 42);
        let x = a.gen::<u64>();
        assert_ne!(x, b.gen::<u64>());
        assert_ne!(x, c.gen::<u64>());
    }

    #[test]
    fn normal_samples_have_unit_moments() {
        let mut rng = rng_for_record(7, 0);
        let mut buf = vec![0.0f64; 20_000];
        fill_normal(&mut rng, &mut buf);
        let n = buf.len() as f64;
        let mean = buf.iter().sum::<f64>() / n;
        let var = buf.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn fill_normal_handles_odd_lengths() {
        let mut rng = rng_for_record(7, 1);
        let mut buf = vec![0.0f64; 7];
        fill_normal(&mut rng, &mut buf);
        assert!(buf.iter().all(|v| v.is_finite()));
        // Last element was written.
        assert!(buf[6] != 0.0 || buf.iter().any(|&v| v != 0.0));
    }
}
