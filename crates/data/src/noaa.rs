//! Synthetic analogue of the NOAA station-temperature dataset (§VI-A).
//!
//! The real dataset extracts the temperature feature from ~20,000 global
//! stations (1901–present) into 200 million series of length 64. Station
//! temperature data is strongly structured: a seasonal cycle, a
//! station-specific baseline (latitude/altitude), and autocorrelated
//! day-to-day noise. The global mixture of station baselines produces the
//! heavily skewed, multi-modal value distribution of Figure 9's NOAA panel.
//!
//! Each record here is one station-window: baseline + seasonal sinusoid +
//! AR(1) noise, z-normalized.

use crate::generator::{normal_pair, rng_for_record, SeriesGen};
use rand::Rng;
use tardis_ts::{RecordId, TimeSeries};

/// NOAA-like station-temperature generator (length 64).
#[derive(Debug, Clone)]
pub struct NoaaLike {
    seed: u64,
    len: usize,
    n_stations: u64,
}

impl NoaaLike {
    /// Creates a generator with the paper's series length (64) and 20,000
    /// synthetic stations (the NOAA network size).
    pub fn new(seed: u64) -> NoaaLike {
        NoaaLike {
            seed,
            len: 64,
            n_stations: 20_000,
        }
    }

    /// Overrides the number of stations (fewer stations = stronger
    /// clustering of identical signatures).
    ///
    /// # Panics
    /// Panics if `n_stations == 0`.
    pub fn with_stations(seed: u64, n_stations: u64) -> NoaaLike {
        assert!(n_stations > 0, "need at least one station");
        NoaaLike {
            seed,
            len: 64,
            n_stations,
        }
    }

    /// Station climate parameters: (baseline °C, seasonal amplitude,
    /// noise persistence).
    fn station_params(&self, station: u64) -> (f64, f64, f64) {
        let mut x = self
            .seed
            .wrapping_mul(0xD6E8FEB86659FD93)
            .wrapping_add(station);
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        x ^= x >> 27;
        // Latitude-like skew: most stations temperate, a tail of polar and
        // tropical ones (squared uniform pushes mass to one side).
        let u = (x % 100_000) as f64 / 100_000.0;
        let baseline = 25.0 - 45.0 * u * u;
        let amplitude = 2.0 + 18.0 * u; // bigger swings at high latitude
        let persistence = 0.7;
        (baseline, amplitude, persistence)
    }
}

impl SeriesGen for NoaaLike {
    fn series_len(&self) -> usize {
        self.len
    }

    fn name(&self) -> &str {
        "noaa"
    }

    fn series(&self, rid: RecordId) -> TimeSeries {
        let mut rng = rng_for_record(self.seed, rid);
        let station = rng.gen_range(0..self.n_stations);
        let (baseline, amplitude, persistence) = self.station_params(station);
        let phase: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
        let mut ar = 0.0f64;
        let mut values = Vec::with_capacity(self.len);
        for t in 0..self.len {
            let season =
                amplitude * (std::f64::consts::TAU * t as f64 / self.len as f64 + phase).sin();
            let (shock, _) = normal_pair(&mut rng);
            ar = persistence * ar + 1.5 * shock;
            values.push((baseline + season + ar) as f32);
        }
        tardis_ts::z_normalize_in_place(&mut values);
        TimeSeries::new(values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_and_normalization() {
        let g = NoaaLike::new(1);
        let ts = g.series(0);
        assert_eq!(ts.len(), 64);
        let (mean, std) = tardis_ts::znorm_params(ts.values());
        assert!(mean.abs() < 1e-5);
        assert!((std - 1.0).abs() < 1e-4);
    }

    #[test]
    fn deterministic() {
        let g = NoaaLike::new(5);
        assert!(g.series(3).exact_eq(&g.series(3)));
    }

    #[test]
    fn seasonal_cycle_dominates() {
        // Autocorrelation at small lags should be strongly positive.
        let g = NoaaLike::new(2);
        let ts = g.series(8);
        let v = ts.values();
        let n = v.len();
        let lag = 2;
        let mut corr = 0.0f64;
        for i in 0..n - lag {
            corr += v[i] as f64 * v[i + lag] as f64;
        }
        corr /= (n - lag) as f64;
        assert!(corr > 0.3, "lag-2 autocorrelation {corr}");
    }

    #[test]
    fn station_mixture_produces_variety() {
        let g = NoaaLike::with_stations(3, 50);
        let a = g.series(0);
        let b = g.series(1);
        assert!(!a.exact_eq(&b));
    }

    #[test]
    #[should_panic(expected = "at least one station")]
    fn zero_stations_rejected() {
        NoaaLike::with_stations(1, 0);
    }
}
