//! Synthetic analogue of the UCSC human-genome dataset (§VI-A).
//!
//! The paper converts DNA assemblies to time series by the standard
//! technique used in iSAX 2.0: walk the base sequence and move a cumulative
//! counter by a fixed per-base delta, then cut windows of length 192.
//! Real genomes are highly repetitive and compositionally biased, which is
//! what produces the distinctive value-frequency skew in Figure 9.
//!
//! This generator synthesizes a genome-like base stream per record from a
//! first-order Markov chain with strong self-transition bias (homopolymer
//! runs / repeats) and a GC-content offset, applies the standard base
//! deltas, and z-normalizes the window.

use crate::generator::{rng_for_record, SeriesGen};
use rand::Rng;
use tardis_ts::{RecordId, TimeSeries};

/// Per-base walk deltas for A, C, G, T (the iSAX 2.0 convention of
/// up/down moves: purines up, pyrimidines down, with unequal magnitudes).
const DELTAS: [f64; 4] = [2.0, -1.0, 1.0, -2.0];

/// DNA-like dataset generator (length 192).
#[derive(Debug, Clone)]
pub struct DnaLike {
    seed: u64,
    len: usize,
    /// Probability of repeating the previous base (homopolymer bias).
    repeat_bias: f64,
}

impl DnaLike {
    /// Creates a generator with the paper's window length (192) and a
    /// realistic repeat bias.
    pub fn new(seed: u64) -> DnaLike {
        DnaLike {
            seed,
            len: 192,
            repeat_bias: 0.55,
        }
    }

    /// Overrides the repeat bias in `[0, 1)` (higher = more repetitive
    /// genome = more skew).
    ///
    /// # Panics
    /// Panics unless `0 <= repeat_bias < 1`.
    pub fn with_repeat_bias(seed: u64, repeat_bias: f64) -> DnaLike {
        assert!(
            (0.0..1.0).contains(&repeat_bias),
            "repeat bias must be in [0, 1)"
        );
        DnaLike {
            seed,
            len: 192,
            repeat_bias,
        }
    }
}

impl SeriesGen for DnaLike {
    fn series_len(&self) -> usize {
        self.len
    }

    fn name(&self) -> &str {
        "dna"
    }

    fn series(&self, rid: RecordId) -> TimeSeries {
        let mut rng = rng_for_record(self.seed, rid);
        // Region-specific GC bias: some windows come from GC-rich regions.
        let gc_rich = rng.gen_bool(0.3);
        let mut base = rng.gen_range(0usize..4);
        let mut acc = 0.0f64;
        let mut values = Vec::with_capacity(self.len);
        for _ in 0..self.len {
            if !rng.gen_bool(self.repeat_bias) {
                // Fresh draw, biased toward C/G in GC-rich regions.
                base = if gc_rich && rng.gen_bool(0.6) {
                    if rng.gen_bool(0.5) {
                        1
                    } else {
                        2
                    }
                } else {
                    rng.gen_range(0usize..4)
                };
            }
            acc += DELTAS[base];
            values.push(acc as f32);
        }
        tardis_ts::z_normalize_in_place(&mut values);
        TimeSeries::new(values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_and_normalization() {
        let g = DnaLike::new(1);
        let ts = g.series(0);
        assert_eq!(ts.len(), 192);
        let (mean, std) = tardis_ts::znorm_params(ts.values());
        assert!(mean.abs() < 1e-5);
        assert!((std - 1.0).abs() < 1e-4);
    }

    #[test]
    fn deterministic() {
        let g = DnaLike::new(2);
        assert!(g.series(9).exact_eq(&g.series(9)));
        assert!(!g.series(9).exact_eq(&g.series(10)));
    }

    #[test]
    fn repeat_bias_creates_runs() {
        // With high repeat bias, the walk has long monotone runs: the
        // number of direction changes is far below a fair coin's.
        let g = DnaLike::with_repeat_bias(3, 0.9);
        let ts = g.series(0);
        let diffs: Vec<f32> = ts.values().windows(2).map(|w| w[1] - w[0]).collect();
        let changes = diffs
            .windows(2)
            .filter(|w| (w[0] > 0.0) != (w[1] > 0.0))
            .count();
        assert!(changes < diffs.len() / 3, "changes {changes}");
    }

    #[test]
    #[should_panic(expected = "repeat bias")]
    fn invalid_bias_rejected() {
        DnaLike::with_repeat_bias(1, 1.0);
    }
}
