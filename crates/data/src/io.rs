//! Plain-text import/export of series collections.
//!
//! Real deployments index their own data, not generators. This module
//! reads and writes the de-facto interchange format of the time-series
//! indexing literature (the UCR-archive style): one series per line,
//! values separated by whitespace, commas, or tabs. Loaded collections
//! implement [`SeriesGen`] (record id = line number), so everything that
//! works with generated datasets — `write_dataset`, query workloads,
//! profiling — works with imported data too.

use crate::generator::SeriesGen;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;
use tardis_ts::{RecordId, TimeSeries};

/// Errors from text import.
#[derive(Debug)]
pub enum ImportError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A token failed to parse as `f32`.
    BadValue {
        /// 1-based line number.
        line: usize,
        /// The offending token.
        token: String,
    },
    /// A line's length differs from the first line's.
    RaggedLine {
        /// 1-based line number.
        line: usize,
        /// Values found.
        found: usize,
        /// Values expected (from the first line).
        expected: usize,
    },
    /// The file holds no series.
    Empty,
}

impl std::fmt::Display for ImportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ImportError::Io(e) => write!(f, "I/O error: {e}"),
            ImportError::BadValue { line, token } => {
                write!(f, "line {line}: cannot parse '{token}' as a number")
            }
            ImportError::RaggedLine {
                line,
                found,
                expected,
            } => write!(
                f,
                "line {line}: {found} values but the first series has {expected}"
            ),
            ImportError::Empty => write!(f, "no series found"),
        }
    }
}

impl std::error::Error for ImportError {}

impl From<std::io::Error> for ImportError {
    fn from(e: std::io::Error) -> Self {
        ImportError::Io(e)
    }
}

/// A series collection held in memory, typically loaded from a file.
/// Implements [`SeriesGen`] with record id = position.
#[derive(Debug, Clone)]
pub struct InMemoryDataset {
    name: String,
    series: Vec<TimeSeries>,
}

impl InMemoryDataset {
    /// Wraps owned series (all must share one length).
    ///
    /// # Panics
    /// Panics if `series` is empty or lengths differ.
    pub fn new(name: impl Into<String>, series: Vec<TimeSeries>) -> InMemoryDataset {
        assert!(!series.is_empty(), "dataset must be non-empty");
        let len = series[0].len();
        assert!(
            series.iter().all(|s| s.len() == len),
            "all series must share one length"
        );
        InMemoryDataset {
            name: name.into(),
            series,
        }
    }

    /// Number of series.
    pub fn len(&self) -> usize {
        self.series.len()
    }

    /// Whether the collection is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.series.is_empty()
    }

    /// Borrowed access to the series.
    pub fn series_slice(&self) -> &[TimeSeries] {
        &self.series
    }
}

impl SeriesGen for InMemoryDataset {
    fn series_len(&self) -> usize {
        self.series[0].len()
    }

    fn name(&self) -> &str {
        &self.name
    }

    /// Returns the series at `rid % len` — wrapping keeps the trait's
    /// total contract (query-workload helpers probe beyond the dataset
    /// for "absent" queries, which a finite collection cannot produce;
    /// for imported data use explicit query files instead).
    fn series(&self, rid: RecordId) -> TimeSeries {
        self.series[(rid % self.series.len() as u64) as usize].clone()
    }
}

/// Reads a whitespace/comma/tab-separated series file. Empty lines and
/// lines starting with `#` are skipped. Set `z_normalize` to normalize
/// each series on load (what every paper dataset does).
///
/// # Errors
/// [`ImportError`] on I/O failure, a malformed number, ragged rows, or an
/// empty file.
pub fn read_series_file(
    path: &Path,
    z_normalize: bool,
) -> Result<InMemoryDataset, ImportError> {
    let reader = BufReader::new(std::fs::File::open(path)?);
    let mut series: Vec<TimeSeries> = Vec::new();
    let mut expected: Option<usize> = None;
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut values = Vec::new();
        for token in trimmed.split(|c: char| c.is_whitespace() || c == ',') {
            if token.is_empty() {
                continue;
            }
            let v: f32 = token.parse().map_err(|_| ImportError::BadValue {
                line: idx + 1,
                token: token.to_string(),
            })?;
            values.push(v);
        }
        if values.is_empty() {
            continue;
        }
        match expected {
            None => expected = Some(values.len()),
            Some(e) if e != values.len() => {
                return Err(ImportError::RaggedLine {
                    line: idx + 1,
                    found: values.len(),
                    expected: e,
                })
            }
            _ => {}
        }
        if z_normalize {
            tardis_ts::z_normalize_in_place(&mut values);
        }
        series.push(TimeSeries::new(values));
    }
    if series.is_empty() {
        return Err(ImportError::Empty);
    }
    let name = path
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("imported")
        .to_string();
    Ok(InMemoryDataset::new(name, series))
}

/// Writes series as whitespace-separated lines (the format
/// [`read_series_file`] reads back).
///
/// # Errors
/// Propagates I/O errors.
pub fn write_series_file<'a>(
    path: &Path,
    series: impl IntoIterator<Item = &'a TimeSeries>,
) -> Result<(), std::io::Error> {
    let mut out = BufWriter::new(std::fs::File::create(path)?);
    for ts in series {
        let mut first = true;
        for v in ts.values() {
            if !first {
                write!(out, " ")?;
            }
            write!(out, "{v}")?;
            first = false;
        }
        writeln!(out)?;
    }
    out.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random_walk::RandomWalk;

    fn temp_path(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("tardis-io-{tag}-{}.txt", std::process::id()))
    }

    #[test]
    fn roundtrip_through_file() {
        let gen = RandomWalk::with_len(1, 16);
        let series: Vec<TimeSeries> = (0..5).map(|rid| gen.series(rid)).collect();
        let path = temp_path("roundtrip");
        write_series_file(&path, &series).unwrap();
        let loaded = read_series_file(&path, false).unwrap();
        assert_eq!(loaded.len(), 5);
        assert_eq!(loaded.series_len(), 16);
        for (a, b) in loaded.series_slice().iter().zip(&series) {
            for (x, y) in a.values().iter().zip(b.values()) {
                assert!((x - y).abs() < 1e-6);
            }
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn reads_csv_commas_comments_and_blanks() {
        let path = temp_path("csv");
        std::fs::write(&path, "# header comment\n1.0,2.0,3.0\n\n4.0,5.0,6.0\n").unwrap();
        let loaded = read_series_file(&path, false).unwrap();
        assert_eq!(loaded.len(), 2);
        assert_eq!(loaded.series(1).values(), &[4.0, 5.0, 6.0]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn z_normalizes_on_request() {
        let path = temp_path("znorm");
        std::fs::write(&path, "10 20 30 40\n").unwrap();
        let loaded = read_series_file(&path, true).unwrap();
        let (mean, std) = tardis_ts::znorm_params(loaded.series(0).values());
        assert!(mean.abs() < 1e-6);
        assert!((std - 1.0).abs() < 1e-6);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn rejects_bad_values_and_ragged_rows() {
        let path = temp_path("bad");
        std::fs::write(&path, "1 2 x\n").unwrap();
        assert!(matches!(
            read_series_file(&path, false),
            Err(ImportError::BadValue { line: 1, .. })
        ));
        std::fs::write(&path, "1 2 3\n4 5\n").unwrap();
        assert!(matches!(
            read_series_file(&path, false),
            Err(ImportError::RaggedLine {
                line: 2,
                found: 2,
                expected: 3
            })
        ));
        std::fs::write(&path, "# only comments\n").unwrap();
        assert!(matches!(
            read_series_file(&path, false),
            Err(ImportError::Empty)
        ));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn in_memory_dataset_wraps_rid() {
        let gen = RandomWalk::with_len(2, 8);
        let ds = InMemoryDataset::new("d", (0..3).map(|rid| gen.series(rid)).collect());
        assert!(ds.series(0).exact_eq(&ds.series(3)));
        assert_eq!(ds.name(), "d");
        assert!(!ds.is_empty());
    }

    #[test]
    #[should_panic(expected = "share one length")]
    fn mixed_lengths_rejected() {
        InMemoryDataset::new(
            "bad",
            vec![TimeSeries::new(vec![1.0]), TimeSeries::new(vec![1.0, 2.0])],
        );
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = read_series_file(Path::new("/nonexistent/nope.txt"), false).unwrap_err();
        assert!(matches!(err, ImportError::Io(_)));
        assert!(err.to_string().contains("I/O"));
    }
}
