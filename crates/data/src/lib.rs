#![warn(missing_docs)]

//! Dataset generators and query workloads for the TARDIS evaluation
//! (§VI-A of the paper).
//!
//! Four dataset families are provided, matching the paper's choices in
//! series length and in the *skewness of value-occurrence frequencies*
//! (Figure 9) — the property that drives index shape:
//!
//! * [`RandomWalk`] — the standard time-series indexing benchmark, length
//!   256; generated exactly as in the original iSAX papers (cumulative sum
//!   of unit Gaussian steps, z-normalized). Fully faithful.
//! * [`TexmexLike`] — a synthetic analogue of the Texmex SIFT corpus:
//!   length-128 non-negative gradient-histogram-style vectors drawn from a
//!   mixture of clusters. (The 1-billion-vector corpus itself is not
//!   redistributable at this scale; see DESIGN.md.)
//! * [`DnaLike`] — a synthetic analogue of the UCSC human-genome dataset:
//!   length-192 windows of a cumulative walk over a low-entropy,
//!   repeat-biased base sequence, the standard DNA→time-series conversion.
//! * [`NoaaLike`] — a synthetic analogue of the NOAA station-temperature
//!   dataset: length-64 seasonal series with station-specific baselines
//!   and autocorrelated noise, producing the strongly skewed value
//!   distribution of weather data.
//!
//! Every generator is deterministic per `(dataset seed, record id)`, so
//! datasets of any size stream without being materialized, and any record
//! can be regenerated on demand (used for ground-truth checks).

pub mod dna;
pub mod generator;
pub mod io;
pub mod loader;
pub mod noaa;
pub mod profile;
pub mod queries;
pub mod random_walk;
pub mod texmex;

pub use dna::DnaLike;
pub use generator::{normal_pair, rng_for_record, SeriesGen};
pub use io::{read_series_file, write_series_file, ImportError, InMemoryDataset};
pub use loader::{write_dataset, DatasetLayout};
pub use noaa::NoaaLike;
pub use profile::{profile_dataset, DatasetProfile};
pub use queries::{QueryKind, QueryWorkload};
pub use random_walk::RandomWalk;
pub use texmex::TexmexLike;
