//! Image-descriptor similarity search: TARDIS vs the DPiSAX baseline.
//!
//! The paper's Texmex corpus is one billion SIFT descriptors; similarity
//! search over descriptors powers near-duplicate image detection. This
//! example indexes a Texmex-like corpus with *both* systems on the same
//! cluster substrate and compares construction cost and kNN accuracy —
//! a miniature of the paper's headline comparison.
//!
//! Run with:
//! ```sh
//! cargo run --release --example image_search
//! ```

use tardis::prelude::*;

fn main() {
    let cluster = Cluster::new(ClusterConfig::default()).expect("cluster");

    // 15,000 SIFT-like descriptors of length 128 from 48 latent clusters.
    let gen = TexmexLike::with_clusters(21, 48);
    let n: u64 = 15_000;
    write_dataset(&cluster, "texmex", &gen, n, 1_000).expect("write dataset");

    // --- TARDIS (initial cardinality 64) ---
    let t_config = TardisConfig {
        g_max_size: 2_000,
        l_max_size: 200,
        pth: 8,
        ..TardisConfig::default()
    };
    let (tardis_idx, t_report) = TardisIndex::build(&cluster, "texmex", &t_config).expect("tardis");
    println!(
        "TARDIS  : built in {:?} ({} partitions, global index {:.1} KB)",
        t_report.total_time(),
        t_report.n_partitions,
        t_report.global_index_bytes as f64 / 1024.0
    );

    // --- DPiSAX baseline (initial cardinality 512) ---
    let b_config = BaselineConfig {
        g_max_size: 2_000,
        l_max_size: 200,
        ..BaselineConfig::default()
    };
    let (baseline_idx, b_report) =
        DpisaxIndex::build(&cluster, "texmex", &b_config).expect("baseline");
    println!(
        "Baseline: built in {:?} ({} partitions, partition table {:.1} KB)",
        b_report.total_time(),
        b_report.n_partitions,
        b_report.global_index_bytes as f64 / 1024.0
    );
    println!(
        "construction speedup: {:.2}x\n",
        b_report.total_time().as_secs_f64() / t_report.total_time().as_secs_f64()
    );

    // --- Accuracy shoot-out: k = 100 over 10 member queries. ---
    let workload = QueryWorkload::existing(&gen, n, 10, 31);
    let k = 100;
    let mut rows: Vec<(String, f64, f64)> = Vec::new();
    let mut base = (0.0f64, 0.0f64);
    for (q, _) in &workload.queries {
        let truth = ground_truth_knn(&cluster, "texmex", q, k).expect("truth");
        let b = baseline_knn(&baseline_idx, &cluster, q, k).expect("baseline knn");
        base.0 += recall(&b.neighbors, &truth);
        base.1 += error_ratio(&b.neighbors, &truth);
    }
    rows.push((
        "DPiSAX baseline".into(),
        base.0 / workload.len() as f64,
        base.1 / workload.len() as f64,
    ));
    for strategy in KnnStrategy::ALL {
        let mut acc = (0.0f64, 0.0f64);
        for (q, _) in &workload.queries {
            let truth = ground_truth_knn(&cluster, "texmex", q, k).expect("truth");
            let ans = knn_approximate(&tardis_idx, &cluster, q, k, strategy).expect("knn");
            acc.0 += recall(&ans.neighbors, &truth);
            acc.1 += error_ratio(&ans.neighbors, &truth);
        }
        rows.push((
            format!("TARDIS {}", strategy.name()),
            acc.0 / workload.len() as f64,
            acc.1 / workload.len() as f64,
        ));
    }

    println!("k = {k} accuracy over {} queries:", workload.len());
    println!("  {:<38} {:>8} {:>12}", "system", "recall", "error ratio");
    for (name, r, er) in rows {
        println!("  {:<38} {:>7.1}% {:>12.3}", name, r * 100.0, er);
    }
}
