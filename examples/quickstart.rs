//! Quickstart: build a TARDIS index over a RandomWalk dataset, run an
//! exact-match query and a kNN-approximate query, and print what
//! happened.
//!
//! Run with:
//! ```sh
//! cargo run --release --example quickstart
//! ```

use tardis::prelude::*;

fn main() {
    // 1. A simulated cluster: worker pool + block DFS in a temp dir.
    let cluster = Cluster::new(ClusterConfig::default()).expect("cluster");
    println!(
        "cluster up: {} workers, DFS at {}",
        cluster.pool().n_workers(),
        cluster.dfs().root().display()
    );

    // 2. Generate and store 20,000 RandomWalk series of length 256 (the
    //    paper's benchmark generator at laptop scale).
    let gen = RandomWalk::new(7);
    let n: u64 = 20_000;
    let layout = write_dataset(&cluster, "randomwalk", &gen, n, 1_000).expect("write dataset");
    println!(
        "dataset: {} series x {} points in {} blocks",
        layout.n_records,
        gen.series_len(),
        layout.n_blocks
    );

    // 3. Build the index (Table II defaults; partition capacity scaled to
    //    the dataset).
    let config = TardisConfig {
        g_max_size: 2_000,
        l_max_size: 200,
        ..TardisConfig::default()
    };
    let (index, report) = TardisIndex::build(&cluster, "randomwalk", &config).expect("build");
    println!(
        "index built in {:?}: {} partitions, global {:.1} KB, locals {:.1} KB, blooms {:.1} KB",
        report.total_time(),
        report.n_partitions,
        report.global_index_bytes as f64 / 1024.0,
        report.local_index_bytes as f64 / 1024.0,
        report.bloom_bytes as f64 / 1024.0,
    );

    // 4. Exact-match: one stored series, one absent series.
    let member = gen.series(123);
    let hit = exact_match(&index, &cluster, &member, true).expect("query");
    println!("exact match for record 123 -> rids {:?}", hit.matches);

    let absent = gen.series(n + 5); // same distribution, never stored
    let miss = exact_match(&index, &cluster, &absent, true).expect("query");
    println!(
        "exact match for an absent series -> {} matches (bloom rejected: {}, partitions loaded: {})",
        miss.matches.len(),
        miss.bloom_rejected,
        miss.partitions_loaded
    );

    // 5. Approximate 10-NN with each strategy; compare against the exact
    //    answer computed by brute force.
    let query = gen.series(4_321);
    let truth = ground_truth_knn(&cluster, "randomwalk", &query, 10).expect("ground truth");
    println!("\n10-NN for record 4321 (ground truth dist range {:.3}..{:.3}):",
        truth.first().map(|n| n.distance).unwrap_or(0.0),
        truth.last().map(|n| n.distance).unwrap_or(0.0));
    for strategy in KnnStrategy::ALL {
        let ans = knn_approximate(&index, &cluster, &query, 10, strategy).expect("knn");
        let r = recall(&ans.neighbors, &truth);
        let er = error_ratio(&ans.neighbors, &truth);
        println!(
            "  {:<24} recall {:>5.1}%  error ratio {:.3}  partitions loaded {}",
            strategy.name(),
            r * 100.0,
            er,
            ans.partitions_loaded
        );
    }

    // 6. Cluster-level I/O accounting for the whole session.
    let m = cluster.metrics().snapshot();
    println!(
        "\nI/O totals: {} blocks read ({:.1} MB), {} blocks written, {} records shuffled",
        m.blocks_read,
        m.bytes_read as f64 / (1024.0 * 1024.0),
        m.blocks_written,
        m.shuffled_records
    );
}
