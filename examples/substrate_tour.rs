//! A tour of the distributed-runtime substrate on its own: the block DFS,
//! map-reduce datasets, shuffle, broadcast, and metrics — the pieces the
//! paper expresses its pipelines in (§IV, Figure 8), usable as a small
//! data-processing library in their own right.
//!
//! The job here is the first step of the TARDIS global index build,
//! written out by hand: sample blocks → convert to signatures →
//! reduce to (signature, frequency) pairs.
//!
//! Run with:
//! ```sh
//! cargo run --release --example substrate_tour
//! ```

use tardis::cluster::{decode_records, Broadcast, Dataset};
use tardis::core::Converter;
use tardis::isax::SigT;
use tardis::prelude::*;

fn main() {
    let cluster = Cluster::new(ClusterConfig::default()).expect("cluster");

    // Store a dataset as DFS blocks.
    let gen = RandomWalk::with_len(5, 64);
    write_dataset(&cluster, "walks", &gen, 50_000, 2_000).expect("write");
    println!(
        "stored {} blocks at {}",
        cluster.dfs().list_blocks("walks").unwrap().len(),
        cluster.dfs().root().display()
    );

    // Block-level sampling: pick 10% of the blocks, deterministically.
    let sampled = cluster
        .dfs()
        .sample_block_ids("walks", 0.10, 42)
        .expect("sample");
    println!("sampled {} blocks (10%)", sampled.len());

    // Broadcast the conversion parameters (as the pipeline broadcasts the
    // partitioner).
    let converter = Broadcast::unmetered(Converter::with_params(8, 6));

    // Map phase: blocks → (signature, 1) pairs, in parallel.
    let pairs: Vec<(SigT, u64)> = cluster
        .pool()
        .par_map(sampled, |id| {
            let bytes = cluster.dfs().read_block(&id).expect("read");
            let records: Vec<Record> = decode_records(&bytes).expect("decode");
            records
                .iter()
                .map(|r| (converter.sig_of(&r.ts).expect("convert"), 1u64))
                .collect::<Vec<_>>()
        })
        .into_iter()
        .flatten()
        .collect();
    println!("mapped {} sampled records to signatures", pairs.len());

    // Reduce phase: aggregate frequencies by signature.
    let freqs: Vec<(SigT, u64)> = Dataset::from_items(pairs, cluster.pool().n_workers())
        .reduce_by_key(cluster.pool(), cluster.metrics(), 4, |a, b| *a += b)
        .collect();

    let mut top: Vec<(SigT, u64)> = freqs;
    top.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    println!("\ndistinct signatures: {}", top.len());
    println!("hottest signatures (these drive the partitioning):");
    for (sig, freq) in top.iter().take(8) {
        println!("  {:>12}  x{freq}", sig.to_hex());
    }

    // Everything the job did, as counters.
    let m = cluster.metrics().snapshot();
    println!(
        "\nmetrics: {} blocks read ({} KB), {} records shuffled, {} tasks",
        m.blocks_read,
        m.bytes_read / 1024,
        m.shuffled_records,
        m.tasks_run
    );
}
