//! Persistence + exact search: build an index once, save its manifest,
//! reopen it in a "second session", and run a provably exact kNN query
//! with lower-bound partition pruning — two extensions beyond the paper
//! that a production deployment needs.
//!
//! Run with:
//! ```sh
//! cargo run --release --example persistent_index
//! ```

use tardis::core::query::exact_knn::exact_knn;
use tardis::prelude::*;

fn main() {
    // Use a named directory so the "second session" can find the data.
    let root = std::env::temp_dir().join("tardis-persistent-example");
    let _ = std::fs::remove_dir_all(&root);
    let gen = RandomWalk::with_len(13, 128);
    let n: u64 = 25_000;

    // ---- Session 1: ingest, build, save, drop everything. ----
    {
        let cluster = Cluster::at_dir(&root, ClusterConfig::default()).expect("cluster");
        write_dataset(&cluster, "walks", &gen, n, 1_000).expect("write");
        let config = TardisConfig {
            g_max_size: 2_500,
            l_max_size: 200,
            ..TardisConfig::default()
        };
        let (index, report) = TardisIndex::build(&cluster, "walks", &config).expect("build");
        index.save(&cluster, "walks-index").expect("save");
        println!(
            "session 1: built {} partitions in {:?} and saved the manifest",
            report.n_partitions,
            report.total_time()
        );
    } // index dropped, cluster handle dropped — only files remain

    // ---- Session 2: reopen and query without rebuilding. ----
    let cluster = Cluster::at_dir(&root, ClusterConfig::default()).expect("cluster");
    let t0 = std::time::Instant::now();
    let index = TardisIndex::open(&cluster, "walks-index").expect("open");
    println!(
        "session 2: reopened {} partitions in {:?} (vs a full rebuild)",
        index.n_partitions(),
        t0.elapsed()
    );

    let query = gen.series(4_242);

    // Approximate answer (the paper's fastest-useful strategy)…
    let approx =
        knn_approximate(&index, &cluster, &query, 10, KnnStrategy::OnePartition).expect("knn");
    // …and the exact answer with partition pruning.
    let exact = exact_knn(&index, &cluster, &query, 10).expect("exact knn");
    // Verified against brute force over every block:
    let truth = ground_truth_knn(&cluster, "walks", &query, 10).expect("truth");

    println!(
        "\nexact 10-NN: {} partition loads over {} partitions ({} pruned by lower bounds)",
        exact.partitions_loaded,
        index.n_partitions(),
        exact.partitions_pruned
    );
    println!("rank | approx (1-partition)      | exact            | brute force");
    for (i, (e, t)) in exact.neighbors.iter().zip(&truth).enumerate() {
        let a = approx
            .neighbors
            .get(i)
            .map(|(d, r)| format!("rid {r:>6} d {d:.4}"))
            .unwrap_or_default();
        println!(
            "{:>4} | {:<25} | rid {:>6} d {:.4} | rid {:>6} d {:.4}",
            i + 1,
            a,
            e.rid,
            e.distance,
            t.rid,
            t.distance
        );
        assert!((e.distance - t.distance).abs() < 1e-9, "exact ≠ brute force");
    }
    println!("\nexact answers match brute force at every rank ✓");

    let _ = std::fs::remove_dir_all(&root);
}
