//! Sensor-analytics scenario: approximate kNN over station weather data.
//!
//! The paper's NOAA dataset motivates this workload: given one station's
//! temperature window, find the k most similar windows network-wide —
//! the primitive behind climate-analog search, anomaly triage, and
//! station quality control. Exact kNN over the whole network is a full
//! scan; TARDIS answers approximately from a few partitions.
//!
//! Run with:
//! ```sh
//! cargo run --release --example seismic_knn
//! ```

use tardis::prelude::*;

fn main() {
    let cluster = Cluster::new(ClusterConfig::default()).expect("cluster");

    // A NOAA-like network: 30,000 windows of length 64 from 2,000
    // synthetic stations (seasonal cycle + station baseline + AR noise).
    let gen = NoaaLike::with_stations(11, 2_000);
    let n: u64 = 30_000;
    write_dataset(&cluster, "noaa", &gen, n, 1_500).expect("write dataset");

    let config = TardisConfig {
        g_max_size: 3_000,
        l_max_size: 250,
        pth: 8,
        ..TardisConfig::default()
    };
    let (index, report) = TardisIndex::build(&cluster, "noaa", &config).expect("build");
    println!(
        "indexed {} windows into {} partitions in {:?}",
        report.n_records, report.n_partitions, report.total_time()
    );

    // Evaluate 10 queries at k = 50 with all three strategies against the
    // exact answer, reproducing the paper's accuracy ordering.
    let workload = QueryWorkload::existing(&gen, n, 10, 99);
    let k = 50;
    let mut sums = [(0.0f64, 0.0f64); 3];
    for (q, _) in &workload.queries {
        let truth = ground_truth_knn(&cluster, "noaa", q, k).expect("truth");
        for (i, strategy) in KnnStrategy::ALL.iter().enumerate() {
            let ans = knn_approximate(&index, &cluster, q, k, *strategy).expect("knn");
            sums[i].0 += recall(&ans.neighbors, &truth);
            sums[i].1 += error_ratio(&ans.neighbors, &truth);
        }
    }
    println!("\nmean over {} queries, k = {k}:", workload.len());
    for (i, strategy) in KnnStrategy::ALL.iter().enumerate() {
        println!(
            "  {:<24} recall {:>5.1}%  error ratio {:.3}",
            strategy.name(),
            sums[i].0 / workload.len() as f64 * 100.0,
            sums[i].1 / workload.len() as f64
        );
    }

    // Show one concrete analog search: the nearest non-self neighbors.
    let q = gen.series(17);
    let ans =
        knn_approximate(&index, &cluster, &q, 6, KnnStrategy::MultiPartition).expect("knn");
    println!("\nclosest analogs of window 17:");
    for (d, rid) in ans.neighbors.iter().filter(|(_, rid)| *rid != 17) {
        println!("  window {rid:>6}  distance {d:.4}");
    }
}
