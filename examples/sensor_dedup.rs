//! Exact-match deduplication scenario over genome-style sequence data.
//!
//! A pipeline ingesting sequence windows (the paper's DNA dataset is
//! length-192 windows of converted genome assemblies) wants to know, per
//! incoming window, whether the identical window was already archived —
//! an exact-match query. The partition Bloom filters make the common
//! "never seen before" case cheap: no partition is loaded at all.
//!
//! Run with:
//! ```sh
//! cargo run --release --example sensor_dedup
//! ```

use tardis::prelude::*;

fn main() {
    let cluster = Cluster::new(ClusterConfig::default()).expect("cluster");

    // Archive: 20,000 DNA-like windows of length 192.
    let gen = DnaLike::new(3);
    let n: u64 = 20_000;
    write_dataset(&cluster, "dna", &gen, n, 1_000).expect("write dataset");

    let config = TardisConfig {
        g_max_size: 2_500,
        l_max_size: 200,
        ..TardisConfig::default()
    };
    let (index, _report) = TardisIndex::build(&cluster, "dna", &config).expect("build");

    // Incoming batch: the paper's exact-match workload shape — half
    // duplicates of archived windows, half fresh material (§VI-C1).
    let workload = QueryWorkload::mixed(&gen, n, 100, 5);
    println!(
        "screening {} incoming windows ({} true duplicates)…\n",
        workload.len(),
        workload.n_existing()
    );

    let run = |use_bloom: bool| {
        let before = cluster.metrics().snapshot();
        let t0 = std::time::Instant::now();
        let mut dupes = 0usize;
        let mut bloom_skips = 0usize;
        let mut loads = 0usize;
        let mut correct = 0usize;
        for (q, kind) in &workload.queries {
            let out = exact_match(&index, &cluster, q, use_bloom).expect("query");
            let is_dup = !out.matches.is_empty();
            dupes += is_dup as usize;
            bloom_skips += out.bloom_rejected as usize;
            loads += out.partitions_loaded;
            let expected = matches!(kind, QueryKind::Existing { .. });
            correct += (is_dup == expected) as usize;
        }
        let elapsed = t0.elapsed();
        let delta = cluster.metrics().snapshot().delta_since(&before);
        (dupes, bloom_skips, loads, correct, elapsed, delta)
    };

    let (d1, s1, l1, c1, t1, m1) = run(true);
    println!("with Bloom filters   (Tardis-BF):");
    println!("  duplicates found {d1}, correct verdicts {c1}/100");
    println!("  partition loads {l1} (bloom skipped {s1}), {} blocks read, {t1:?} total", m1.blocks_read);

    let (d2, s2, l2, c2, t2, m2) = run(false);
    println!("\nwithout Bloom filters (Tardis-NoBF):");
    println!("  duplicates found {d2}, correct verdicts {c2}/100");
    println!("  partition loads {l2} (bloom skipped {s2}), {} blocks read, {t2:?} total", m2.blocks_read);

    assert_eq!(d1, d2, "Bloom filter never changes answers");
    println!(
        "\nsame verdicts either way; the filter avoided {} partition loads.",
        l2 - l1
    );
}
